//! # rtx-transducer — abstract relational transducers
//!
//! The machine model of the paper (Section 2.1, with the Section 3
//! proviso): a deterministic data-centric agent specified by queries
//! `Q_snd^R` (per message relation), `Q_ins^R` / `Q_del^R` (per memory
//! relation) and `Q_out`, over the combined schema
//! `S_in ∪ {Id, All} ∪ S_msg ∪ S_mem`.
//!
//! The local language is pluggable ([`rtx_query::Query`] objects), so
//! FO-, UCQ¬-, (nonrecursive-)Datalog-, while- and abstract transducers
//! are all built with the same [`TransducerBuilder`].
//!
//! Syntactic classification — *oblivious*, *inflationary*, *monotone* —
//! lives in [`Classification`]; network execution lives in `rtx-net`.

#![warn(missing_docs)]

mod builder;
mod classify;
mod schema;
mod transducer;

pub use builder::TransducerBuilder;
pub use classify::{Classification, SystemUsage};
pub use schema::{system_schema, TransducerSchema, SYS_ALL, SYS_ID};
pub use transducer::{StepResult, Transducer};

//! # rtx-transducer — abstract relational transducers
//!
//! The machine model of the paper (Section 2.1, with the Section 3
//! proviso): a deterministic data-centric agent specified by queries
//! `Q_snd^R` (per message relation), `Q_ins^R` / `Q_del^R` (per memory
//! relation) and `Q_out`, over the combined schema
//! `S_in ∪ {Id, All} ∪ S_msg ∪ S_mem`.
//!
//! The local language is pluggable ([`rtx_query::Query`] objects), so
//! FO-, UCQ¬-, (nonrecursive-)Datalog-, while- and abstract transducers
//! are all built with the same [`TransducerBuilder`].
//!
//! Syntactic classification — *oblivious*, *inflationary*, *monotone* —
//! lives in [`Classification`]; network execution lives in `rtx-net`.
//!
//! A [`Transducer`] is immutable after construction and `Send + Sync`
//! (its queries are `Arc<dyn Query + Send + Sync>` and all query-plan
//! caches are thread-safe), so one instance is shared by reference by
//! every node of a network simulation, including across the worker
//! shards of `rtx-net`'s sharded executor. No per-node clones are ever
//! needed.

#![warn(missing_docs)]

mod builder;
mod classify;
mod schema;
mod transducer;

pub use builder::TransducerBuilder;
pub use classify::{Classification, SystemUsage};
pub use schema::{system_schema, TransducerSchema, SYS_ALL, SYS_ID};
pub use transducer::{StepResult, Transducer};

/// Shared owning handle to a transducer, for callers that need to keep
/// one alive beyond a borrow (e.g. a long-lived scheduler or service).
/// The executors in `rtx-net` themselves only need `&Transducer` —
/// sharding works by borrowing, not by cloning handles.
pub type TransducerRef = std::sync::Arc<Transducer>;

// The sharded network runtime hands `&Transducer` to worker threads;
// this is the compile-time guarantee that makes that sound.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Transducer>();
    assert_send_sync::<TransducerRef>();
};

//! Transducer schemas.
//!
//! A transducer schema is a tuple `(S_in, S_sys, S_msg, S_mem, k)` of four
//! disjoint database schemas and an output arity (paper, Section 2.1).
//! Following the paper's proviso (Section 3), the system schema is fixed
//! to the two unary relations `Id` and `All`.

use rtx_relational::{Instance, RelError, RelName, Schema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Name of the system relation holding the node's own identifier.
pub const SYS_ID: &str = "Id";
/// Name of the system relation holding all node identifiers.
pub const SYS_ALL: &str = "All";

/// The fixed system schema `{Id/1, All/1}`.
pub fn system_schema() -> Schema {
    Schema::new().with(SYS_ID, 1).with(SYS_ALL, 1)
}

/// A transducer schema `(S_in, S_sys, S_msg, S_mem, k)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransducerSchema {
    input: Schema,
    message: Schema,
    memory: Schema,
    output_arity: usize,
}

impl TransducerSchema {
    /// Build and validate: the four schemas (input, system, message,
    /// memory) must be pairwise disjoint.
    pub fn new(
        input: Schema,
        message: Schema,
        memory: Schema,
        output_arity: usize,
    ) -> Result<Self, RelError> {
        let sys = system_schema();
        // pairwise disjointness, system included
        let parts: [(&str, &Schema); 4] = [
            ("input", &input),
            ("system", &sys),
            ("message", &message),
            ("memory", &memory),
        ];
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                for (name, _) in parts[i].1.iter() {
                    if parts[j].1.contains(name) {
                        return Err(RelError::NotDisjoint { rel: name.clone() });
                    }
                }
            }
        }
        Ok(TransducerSchema {
            input,
            message,
            memory,
            output_arity,
        })
    }

    /// The input schema `S_in`.
    pub fn input(&self) -> &Schema {
        &self.input
    }

    /// The message schema `S_msg`.
    pub fn message(&self) -> &Schema {
        &self.message
    }

    /// The memory schema `S_mem`.
    pub fn memory(&self) -> &Schema {
        &self.memory
    }

    /// The output arity `k`.
    pub fn output_arity(&self) -> usize {
        self.output_arity
    }

    /// The state schema `S_in ∪ S_sys ∪ S_mem` — what a node stores
    /// between transitions.
    pub fn state_schema(&self) -> Schema {
        self.input
            .disjoint_union(&system_schema())
            .and_then(|s| s.disjoint_union(&self.memory))
            .expect("validated disjoint at construction")
    }

    /// The combined schema `S_in ∪ S_sys ∪ S_msg ∪ S_mem` — what the
    /// transducer's queries see (`I' = I ∪ I_rcv`).
    pub fn combined_schema(&self) -> Schema {
        self.state_schema()
            .disjoint_union(&self.message)
            .expect("validated disjoint at construction")
    }

    /// Build the initial state of a node: its local input fragment, `Id`
    /// and `All` filled in, memory empty (paper, Section 4: initial
    /// configurations have empty memory and empty buffers).
    pub fn initial_state(
        &self,
        local_input: &Instance,
        me: &Value,
        all_nodes: &BTreeSet<Value>,
    ) -> Result<Instance, RelError> {
        let mut state = local_input.widen(self.state_schema())?;
        state.insert_fact(rtx_relational::Fact::new(
            RelName::new(SYS_ID),
            rtx_relational::Tuple::new(vec![*me]),
        ))?;
        for v in all_nodes {
            state.insert_fact(rtx_relational::Fact::new(
                RelName::new(SYS_ALL),
                rtx_relational::Tuple::new(vec![*v]),
            ))?;
        }
        Ok(state)
    }
}

impl fmt::Display for TransducerSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(in: {}, sys: {}, msg: {}, mem: {}, k={})",
            self.input,
            system_schema(),
            self.message,
            self.memory,
            self.output_arity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::fact;

    fn sch() -> TransducerSchema {
        TransducerSchema::new(
            Schema::new().with("R", 2),
            Schema::new().with("M", 2),
            Schema::new().with("T", 2),
            1,
        )
        .unwrap()
    }

    #[test]
    fn disjointness_enforced() {
        // input and memory share a name
        assert!(TransducerSchema::new(
            Schema::new().with("R", 2),
            Schema::new(),
            Schema::new().with("R", 2),
            0,
        )
        .is_err());
        // clash with the system schema
        assert!(TransducerSchema::new(
            Schema::new().with(SYS_ID, 1),
            Schema::new(),
            Schema::new(),
            0,
        )
        .is_err());
        assert!(TransducerSchema::new(
            Schema::new(),
            Schema::new().with(SYS_ALL, 1),
            Schema::new(),
            0,
        )
        .is_err());
    }

    #[test]
    fn state_and_combined_schemas() {
        let s = sch();
        let st = s.state_schema();
        assert!(st.contains(&"R".into()));
        assert!(st.contains(&SYS_ID.into()));
        assert!(st.contains(&SYS_ALL.into()));
        assert!(st.contains(&"T".into()));
        assert!(!st.contains(&"M".into()));
        let c = s.combined_schema();
        assert!(c.contains(&"M".into()));
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn initial_state_fills_system_relations() {
        let s = sch();
        let input =
            Instance::from_facts(Schema::new().with("R", 2), vec![fact!("R", 1, 2)]).unwrap();
        let nodes: BTreeSet<Value> = [Value::sym("a"), Value::sym("b")].into_iter().collect();
        let st = s.initial_state(&input, &Value::sym("a"), &nodes).unwrap();
        assert!(st.contains_fact(&fact!("Id", "a")));
        assert!(st.contains_fact(&fact!("All", "a")));
        assert!(st.contains_fact(&fact!("All", "b")));
        assert!(st.contains_fact(&fact!("R", 1, 2)));
        assert!(st.relation(&"T".into()).unwrap().is_empty());
    }

    #[test]
    fn display_shows_structure() {
        let s = sch();
        let d = format!("{s}");
        assert!(d.contains("k=1"));
        assert!(d.contains("Id/1"));
    }
}

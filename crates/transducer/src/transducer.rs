//! The abstract relational transducer and its deterministic local
//! transition (paper, Section 2.1).

use crate::schema::TransducerSchema;
use rtx_query::{EvalError, Query, QueryRef};
use rtx_relational::{Instance, RelName, Relation};
use std::collections::BTreeMap;
use std::fmt;

/// An abstract relational transducer: a collection of queries
/// `{Q_snd^R | R ∈ S_msg} ∪ {Q_ins^R, Q_del^R | R ∈ S_mem} ∪ {Q_out}`
/// over the combined schema.
pub struct Transducer {
    schema: TransducerSchema,
    snd: BTreeMap<RelName, QueryRef>,
    ins: BTreeMap<RelName, QueryRef>,
    del: BTreeMap<RelName, QueryRef>,
    out: QueryRef,
    /// Optional label for diagnostics.
    name: String,
}

/// The result of one local transition `I, I_rcv --Jout--> J, J_snd`.
#[derive(Clone, Debug)]
pub struct StepResult {
    /// The successor state `J` (input and system relations unchanged,
    /// memory updated).
    pub new_state: Instance,
    /// The sent message instance `J_snd`.
    pub sent: Instance,
    /// The output tuples `J_out` (outputs are cumulative and can never be
    /// retracted).
    pub output: Relation,
}

impl StepResult {
    /// Did the transition change nothing observable (memory unchanged, no
    /// sends, no output)? Used for heartbeat-fixpoint detection.
    pub fn is_noop(&self, old_state: &Instance) -> bool {
        self.sent.is_empty() && self.output.is_empty() && &self.new_state == old_state
    }
}

impl Transducer {
    pub(crate) fn from_parts(
        schema: TransducerSchema,
        snd: BTreeMap<RelName, QueryRef>,
        ins: BTreeMap<RelName, QueryRef>,
        del: BTreeMap<RelName, QueryRef>,
        out: QueryRef,
        name: String,
    ) -> Self {
        Transducer {
            schema,
            snd,
            ins,
            del,
            out,
            name,
        }
    }

    /// The transducer schema.
    pub fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The send query for a message relation.
    pub fn snd_query(&self, rel: &RelName) -> Option<&QueryRef> {
        self.snd.get(rel)
    }

    /// The insertion query for a memory relation.
    pub fn ins_query(&self, rel: &RelName) -> Option<&QueryRef> {
        self.ins.get(rel)
    }

    /// The deletion query for a memory relation.
    pub fn del_query(&self, rel: &RelName) -> Option<&QueryRef> {
        self.del.get(rel)
    }

    /// The output query.
    pub fn out_query(&self) -> &QueryRef {
        &self.out
    }

    /// All queries with role labels, in a deterministic order.
    pub fn queries(&self) -> impl Iterator<Item = (String, &QueryRef)> {
        self.snd
            .iter()
            .map(|(r, q)| (format!("snd[{r}]"), q))
            .chain(self.ins.iter().map(|(r, q)| (format!("ins[{r}]"), q)))
            .chain(self.del.iter().map(|(r, q)| (format!("del[{r}]"), q)))
            .chain(std::iter::once(("out".to_string(), &self.out)))
    }

    /// Perform one deterministic local transition.
    ///
    /// `state` is an instance of the state schema; `received` an instance
    /// of the message schema (empty for a heartbeat). Implements the
    /// paper's update formula for every memory relation `R`:
    ///
    /// ```text
    /// J(R) = (Q_ins(I') \ Q_del(I'))
    ///      ∪ (Q_ins(I') ∩ Q_del(I') ∩ I(R))
    ///      ∪ (I(R) \ (Q_ins(I') ∪ Q_del(I')))
    /// ```
    ///
    /// i.e. conflicting insert/deletes are ignored, and an assignment
    /// `R := Q` is expressed by `Q_ins = Q`, `Q_del = R`.
    pub fn step(&self, state: &Instance, received: &Instance) -> Result<StepResult, EvalError> {
        // I' = I ∪ I_rcv over the combined schema.
        let combined = state.union(received)?;
        let combined = combined.widen(self.schema.combined_schema())?;

        // Sends.
        let mut sent = Instance::empty(self.schema.message().clone());
        for (rel, _) in self.schema.message().iter() {
            let q = self
                .snd
                .get(rel)
                .expect("builder populates every message relation");
            sent.set_relation(rel.clone(), q.eval(&combined)?)?;
        }

        // Output.
        let output = self.out.eval(&combined)?;

        // Memory update.
        let mut new_state = state.clone();
        for (rel, _) in self.schema.memory().iter() {
            let ins_q = self
                .ins
                .get(rel)
                .expect("builder populates every memory relation");
            let del_q = self
                .del
                .get(rel)
                .expect("builder populates every memory relation");
            let ins = ins_q.eval(&combined)?;
            let del = del_q.eval(&combined)?;
            let cur = state.relation(rel)?;
            let keep_new = ins.difference(&del)?; // inserted, not deleted
            let conflicted = ins.intersect(&del)?.intersect(&cur)?; // both: ignore (keep if present)
            let untouched = cur.difference(&ins.union(&del)?)?; // neither mentioned
            let next = keep_new.union(&conflicted)?.union(&untouched)?;
            new_state.set_relation(rel.clone(), next)?;
        }

        Ok(StepResult {
            new_state,
            sent,
            output,
        })
    }

    /// A heartbeat transition: a step with no received messages.
    pub fn heartbeat(&self, state: &Instance) -> Result<StepResult, EvalError> {
        let empty = Instance::empty(self.schema.message().clone());
        self.step(state, &empty)
    }

    /// Run heartbeats until the state stops changing and nothing is sent
    /// or output, collecting all outputs along the way. Returns the fixed
    /// state, the accumulated output, and the number of heartbeats taken.
    ///
    /// `max_steps` bounds the loop (local queries are deterministic, so a
    /// repeated state would loop forever).
    pub fn run_heartbeats_to_fixpoint(
        &self,
        state: &Instance,
        max_steps: usize,
    ) -> Result<(Instance, Relation, usize), EvalError> {
        let mut cur = state.clone();
        let mut output = Relation::empty(self.schema.output_arity());
        for step_no in 0..max_steps {
            let res = self.heartbeat(&cur)?;
            let quiet =
                res.sent.is_empty() && res.new_state == cur && res.output.is_subset(&output);
            output = output.union(&res.output)?;
            if quiet {
                return Ok((cur, output, step_no));
            }
            cur = res.new_state;
        }
        Err(EvalError::Diverged { fuel: max_steps })
    }
}

impl fmt::Debug for Transducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "transducer `{}` {}", self.name, self.schema)?;
        for (role, q) in self.queries() {
            writeln!(f, "  {role}: {}", q.describe())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TransducerBuilder;
    use rtx_query::{atom, CqBuilder, Term, UcqQuery};
    use rtx_relational::{fact, tuple, Schema, Value};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn cq(rule: rtx_query::CqRule) -> QueryRef {
        Arc::new(UcqQuery::single(rule))
    }

    /// A transducer that stores received `M` facts into memory `T` and
    /// outputs `T` members; sends its own input `S` on every step.
    fn store_and_echo() -> Transducer {
        TransducerBuilder::new("store-and-echo")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .output_arity(1)
            .send(
                "M",
                cq(CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .build()
                    .unwrap()),
            )
            .insert(
                "T",
                cq(CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .build()
                    .unwrap()),
            )
            .output(cq(CqBuilder::head(vec![Term::var("X")])
                .when(atom!("T"; @"X"))
                .build()
                .unwrap()))
            .build()
            .unwrap()
    }

    fn mk_state(t: &Transducer, s_facts: &[i64]) -> Instance {
        let input = Instance::from_facts(
            Schema::new().with("S", 1),
            s_facts.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap();
        let nodes: BTreeSet<Value> = [Value::sym("n1")].into_iter().collect();
        t.schema()
            .initial_state(&input, &Value::sym("n1"), &nodes)
            .unwrap()
    }

    fn msg(facts: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("M", 1),
            facts.iter().map(|&v| fact!("M", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn heartbeat_sends_input() {
        let t = store_and_echo();
        let st = mk_state(&t, &[1, 2]);
        let res = t.heartbeat(&st).unwrap();
        assert_eq!(res.sent.fact_count(), 2);
        assert!(res.output.is_empty()); // memory still empty
        assert_eq!(res.new_state, st); // nothing inserted
    }

    #[test]
    fn delivery_inserts_into_memory_and_outputs_next_step() {
        let t = store_and_echo();
        let st = mk_state(&t, &[]);
        let res = t.step(&st, &msg(&[7])).unwrap();
        assert!(res.new_state.contains_fact(&fact!("T", 7)));
        // output is computed on I′ (before memory update), so T was empty
        assert!(res.output.is_empty());
        let res2 = t.heartbeat(&res.new_state).unwrap();
        assert!(res2.output.contains(&tuple![7]));
    }

    #[test]
    fn transitions_are_deterministic() {
        let t = store_and_echo();
        let st = mk_state(&t, &[1]);
        let a = t.step(&st, &msg(&[3])).unwrap();
        let b = t.step(&st, &msg(&[3])).unwrap();
        assert_eq!(a.new_state, b.new_state);
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.output, b.output);
    }

    /// The paper's conflict-resolution semantics, exhaustively:
    /// tuples in ins∖del enter; ins∩del tuples keep their old status;
    /// del∖ins tuples leave; untouched tuples stay.
    #[test]
    fn update_formula_conflict_cases() {
        // memory T/1; ins = A (copy), del = B (copy); input relations A, B.
        let t = TransducerBuilder::new("conflict")
            .input_relation("A", 1)
            .input_relation("B", 1)
            .memory_relation("T", 1)
            .output_arity(0)
            .insert(
                "T",
                cq(CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("A"; @"X"))
                    .build()
                    .unwrap()),
            )
            .delete(
                "T",
                cq(CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("B"; @"X"))
                    .build()
                    .unwrap()),
            )
            .output(Arc::new(rtx_query::EmptyQuery::new(0)))
            .build()
            .unwrap();

        // A = {1(ins only), 2(ins+del)}, B = {2, 3(del only)}.
        // T initially = {2_keep? no... set T = {3, 4}}:
        //   1: ins only, not in T → enters
        //   2: ins∩del, not in T → stays out
        //   3: del only, in T → leaves
        //   4: untouched, in T → stays
        let input = Instance::from_facts(
            Schema::new().with("A", 1).with("B", 1),
            vec![fact!("A", 1), fact!("A", 2), fact!("B", 2), fact!("B", 3)],
        )
        .unwrap();
        let nodes: BTreeSet<Value> = [Value::sym("n")].into_iter().collect();
        let mut st = t
            .schema()
            .initial_state(&input, &Value::sym("n"), &nodes)
            .unwrap();
        st.insert_fact(fact!("T", 3)).unwrap();
        st.insert_fact(fact!("T", 4)).unwrap();

        let res = t.heartbeat(&st).unwrap();
        let tm = res.new_state.relation(&"T".into()).unwrap();
        assert!(tm.contains(&tuple![1]), "ins-only enters");
        assert!(
            !tm.contains(&tuple![2]),
            "conflicting ins/del on absent tuple stays out"
        );
        assert!(!tm.contains(&tuple![3]), "del-only leaves");
        assert!(tm.contains(&tuple![4]), "untouched stays");

        // now with 2 ∈ T: the conflict keeps it.
        let mut st2 = st.clone();
        st2.insert_fact(fact!("T", 2)).unwrap();
        let res2 = t.heartbeat(&st2).unwrap();
        let tm2 = res2.new_state.relation(&"T".into()).unwrap();
        assert!(
            tm2.contains(&tuple![2]),
            "conflicting ins/del on present tuple keeps it"
        );
    }

    #[test]
    fn assignment_pattern_ins_q_del_r() {
        // R := A expressed as ins = A, del = T (current value)
        let t = TransducerBuilder::new("assign")
            .input_relation("A", 1)
            .memory_relation("T", 1)
            .output_arity(0)
            .insert(
                "T",
                cq(CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("A"; @"X"))
                    .build()
                    .unwrap()),
            )
            .delete(
                "T",
                cq(CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("T"; @"X"))
                    .build()
                    .unwrap()),
            )
            .output(Arc::new(rtx_query::EmptyQuery::new(0)))
            .build()
            .unwrap();
        let input = Instance::from_facts(Schema::new().with("A", 1), vec![fact!("A", 5)]).unwrap();
        let nodes: BTreeSet<Value> = [Value::sym("n")].into_iter().collect();
        let mut st = t
            .schema()
            .initial_state(&input, &Value::sym("n"), &nodes)
            .unwrap();
        st.insert_fact(fact!("T", 9)).unwrap(); // old junk
        let res = t.heartbeat(&st).unwrap();
        let tm = res.new_state.relation(&"T".into()).unwrap();
        assert!(tm.contains(&tuple![5]));
        assert!(!tm.contains(&tuple![9]), "assignment clears the old value");
        // note: 5 ∉ old T so it's in ins\del; 9 ∈ del\ins so it leaves.
    }

    #[test]
    fn input_and_system_relations_never_change() {
        let t = store_and_echo();
        let st = mk_state(&t, &[1]);
        let res = t.step(&st, &msg(&[4])).unwrap();
        assert!(res.new_state.contains_fact(&fact!("S", 1)));
        assert!(res.new_state.contains_fact(&fact!("Id", "n1")));
        assert!(res.new_state.contains_fact(&fact!("All", "n1")));
    }

    #[test]
    fn heartbeat_fixpoint_detection() {
        // store-and-echo with no input sends nothing, outputs nothing:
        // immediate fixpoint.
        let t = store_and_echo();
        let st = mk_state(&t, &[]);
        let (fixed, out, steps) = t.run_heartbeats_to_fixpoint(&st, 10).unwrap();
        assert_eq!(fixed, st);
        assert!(out.is_empty());
        assert_eq!(steps, 0);
        // with input {1} every heartbeat sends: never a fixpoint.
        let st2 = mk_state(&t, &[1]);
        assert!(t.run_heartbeats_to_fixpoint(&st2, 5).is_err());
    }

    #[test]
    fn debug_lists_queries() {
        let t = store_and_echo();
        let d = format!("{t:?}");
        assert!(d.contains("snd[M]"));
        assert!(d.contains("ins[T]"));
        assert!(d.contains("out"));
    }
}

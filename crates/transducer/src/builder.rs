//! Ergonomic construction of transducers.

use crate::schema::TransducerSchema;
use crate::transducer::Transducer;
use rtx_query::{EmptyQuery, EvalError, Query, QueryRef};
use rtx_relational::{RelName, Schema};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builder for [`Transducer`].
///
/// Declares the schema piecewise, then attaches queries. Message
/// relations with no send query and memory relations with no
/// insert/delete query default to the always-empty query (deletion
/// defaulting to empty is what makes a transducer *inflationary*).
pub struct TransducerBuilder {
    name: String,
    input: Schema,
    message: Schema,
    memory: Schema,
    output_arity: Option<usize>,
    snd: BTreeMap<RelName, QueryRef>,
    ins: BTreeMap<RelName, QueryRef>,
    del: BTreeMap<RelName, QueryRef>,
    out: Option<QueryRef>,
    error: Option<EvalError>,
}

impl TransducerBuilder {
    /// Start building a transducer with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        TransducerBuilder {
            name: name.into(),
            input: Schema::new(),
            message: Schema::new(),
            memory: Schema::new(),
            output_arity: None,
            snd: BTreeMap::new(),
            ins: BTreeMap::new(),
            del: BTreeMap::new(),
            out: None,
            error: None,
        }
    }

    fn record<T>(&mut self, r: Result<T, rtx_relational::RelError>) {
        if let (Err(e), None) = (r, &self.error) {
            self.error = Some(EvalError::Rel(e));
        }
    }

    /// Declare an input relation.
    pub fn input_relation(mut self, name: impl Into<RelName>, arity: usize) -> Self {
        let r = self.input.declare(name, arity);
        self.record(r);
        self
    }

    /// Declare every relation of a schema as input.
    pub fn input_schema(mut self, schema: &Schema) -> Self {
        for (name, arity) in schema.iter() {
            let r = self.input.declare(name.clone(), arity);
            self.record(r);
        }
        self
    }

    /// Declare a message relation.
    pub fn message_relation(mut self, name: impl Into<RelName>, arity: usize) -> Self {
        let r = self.message.declare(name, arity);
        self.record(r);
        self
    }

    /// Declare a memory relation.
    pub fn memory_relation(mut self, name: impl Into<RelName>, arity: usize) -> Self {
        let r = self.memory.declare(name, arity);
        self.record(r);
        self
    }

    /// Set the output arity.
    pub fn output_arity(mut self, k: usize) -> Self {
        self.output_arity = Some(k);
        self
    }

    /// Attach the send query for a message relation.
    pub fn send(mut self, rel: impl Into<RelName>, q: QueryRef) -> Self {
        self.snd.insert(rel.into(), q);
        self
    }

    /// Attach the insertion query for a memory relation.
    pub fn insert(mut self, rel: impl Into<RelName>, q: QueryRef) -> Self {
        self.ins.insert(rel.into(), q);
        self
    }

    /// Attach the deletion query for a memory relation.
    pub fn delete(mut self, rel: impl Into<RelName>, q: QueryRef) -> Self {
        self.del.insert(rel.into(), q);
        self
    }

    /// Attach the output query (its arity fixes `k` unless
    /// [`TransducerBuilder::output_arity`] was called).
    pub fn output(mut self, q: QueryRef) -> Self {
        if self.output_arity.is_none() {
            self.output_arity = Some(q.arity());
        }
        self.out = Some(q);
        self
    }

    /// Finish, validating schema disjointness and query arities.
    pub fn build(self) -> Result<Transducer, EvalError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let output_arity = self.output_arity.unwrap_or(0);
        let schema = TransducerSchema::new(self.input, self.message, self.memory, output_arity)
            .map_err(EvalError::Rel)?;

        let mut snd = self.snd;
        let mut ins = self.ins;
        let mut del = self.del;

        // Unknown names?
        for (role, map, target) in [
            ("send", &snd, schema.message()),
            ("insert", &ins, schema.memory()),
            ("delete", &del, schema.memory()),
        ] {
            for (rel, q) in map.iter() {
                match target.arity(rel) {
                    None => {
                        return Err(EvalError::Unsafe {
                            reason: format!("{role} query for undeclared relation {rel}"),
                        })
                    }
                    Some(a) if a != q.arity() => {
                        return Err(EvalError::Rel(rtx_relational::RelError::ArityMismatch {
                            rel: rel.clone(),
                            expected: a,
                            found: q.arity(),
                        }))
                    }
                    Some(_) => {}
                }
            }
        }

        // Defaults: empty queries.
        for (rel, arity) in schema.message().iter() {
            snd.entry(rel.clone())
                .or_insert_with(|| Arc::new(EmptyQuery::new(arity)));
        }
        for (rel, arity) in schema.memory().iter() {
            ins.entry(rel.clone())
                .or_insert_with(|| Arc::new(EmptyQuery::new(arity)));
            del.entry(rel.clone())
                .or_insert_with(|| Arc::new(EmptyQuery::new(arity)));
        }

        let out = match self.out {
            Some(q) => {
                if q.arity() != output_arity {
                    return Err(EvalError::Unsafe {
                        reason: format!(
                            "output query arity {} differs from declared output arity {output_arity}",
                            q.arity()
                        ),
                    });
                }
                q
            }
            None => Arc::new(EmptyQuery::new(output_arity)) as QueryRef,
        };

        Ok(Transducer::from_parts(
            schema, snd, ins, del, out, self.name,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{atom, CqBuilder, Term, UcqQuery};

    fn cq1() -> QueryRef {
        Arc::new(UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(atom!("S"; @"X"))
                .build()
                .unwrap(),
        ))
    }

    #[test]
    fn defaults_fill_missing_queries() {
        let t = TransducerBuilder::new("defaults")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .output_arity(0)
            .build()
            .unwrap();
        assert!(t.snd_query(&"M".into()).unwrap().is_always_empty());
        assert!(t.ins_query(&"T".into()).unwrap().is_always_empty());
        assert!(t.del_query(&"T".into()).unwrap().is_always_empty());
        assert!(t.out_query().is_always_empty());
    }

    #[test]
    fn undeclared_targets_rejected() {
        let err = TransducerBuilder::new("bad")
            .input_relation("S", 1)
            .send("M", cq1())
            .build();
        assert!(err.is_err());
        let err = TransducerBuilder::new("bad2")
            .input_relation("S", 1)
            .memory_relation("T", 1)
            .insert("U", cq1())
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn arity_mismatches_rejected() {
        let err = TransducerBuilder::new("bad")
            .input_relation("S", 1)
            .message_relation("M", 2)
            .send("M", cq1()) // arity 1 into M/2
            .build();
        assert!(err.is_err());
        let err = TransducerBuilder::new("bad")
            .input_relation("S", 1)
            .output_arity(2)
            .output(cq1())
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn output_arity_inferred_from_query() {
        let t = TransducerBuilder::new("inferred")
            .input_relation("S", 1)
            .output(cq1())
            .build()
            .unwrap();
        assert_eq!(t.schema().output_arity(), 1);
    }

    #[test]
    fn schema_conflicts_propagate() {
        let err = TransducerBuilder::new("clash")
            .input_relation("S", 1)
            .memory_relation("S", 1)
            .build();
        assert!(err.is_err());
        let err = TransducerBuilder::new("sys-clash")
            .input_relation("Id", 1)
            .build();
        assert!(err.is_err());
        let err = TransducerBuilder::new("arity-clash")
            .input_relation("S", 1)
            .input_relation("S", 2)
            .build();
        assert!(err.is_err());
    }
}

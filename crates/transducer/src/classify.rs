//! Syntactic classification of transducers (paper, Section 4):
//!
//! * **oblivious** — no query uses the system relations `Id` or `All`;
//! * **inflationary** — every deletion query returns empty on all inputs;
//! * **monotone** — every local query is monotone.
//!
//! These are the premises of Theorem 6, Proposition 11 and Corollaries
//! 13/14/17. Obliviousness and inflationarity are decidable syntactically;
//! monotonicity is approximated conservatively by
//! [`Query::is_monotone_syntactic`] (sound: `true` implies monotone).

use crate::schema::{SYS_ALL, SYS_ID};
use crate::transducer::Transducer;
use rtx_query::Query;
use rtx_relational::RelName;
use std::fmt;

/// Which of the two system relations a transducer consults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemUsage {
    /// Mentions `Id`.
    pub uses_id: bool,
    /// Mentions `All`.
    pub uses_all: bool,
}

/// The syntactic classification of a transducer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Classification {
    /// Does not mention `Id` nor `All` (paper: *oblivious*).
    pub oblivious: bool,
    /// Finer-grained system-relation usage (Theorem 16 / Corollary 17
    /// distinguish Id-free from All-free transducers).
    pub system_usage: SystemUsage,
    /// All deletion queries are syntactically empty (paper:
    /// *inflationary*).
    pub inflationary: bool,
    /// All local queries are syntactically monotone (paper: *monotone*).
    pub monotone: bool,
}

impl Classification {
    /// Compute the classification of a transducer.
    pub fn of(t: &Transducer) -> Self {
        let id: RelName = SYS_ID.into();
        let all: RelName = SYS_ALL.into();
        let mut uses_id = false;
        let mut uses_all = false;
        let mut monotone = true;
        for (_, q) in t.queries() {
            let refs = q.referenced_relations();
            uses_id |= refs.contains(&id);
            uses_all |= refs.contains(&all);
            monotone &= q.is_monotone_syntactic();
        }
        let inflationary = t
            .schema()
            .memory()
            .names()
            .all(|r| t.del_query(r).map(|q| q.is_always_empty()).unwrap_or(true));
        Classification {
            oblivious: !uses_id && !uses_all,
            system_usage: SystemUsage { uses_id, uses_all },
            inflationary,
            monotone,
        }
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut tags: Vec<&str> = Vec::new();
        if self.oblivious {
            tags.push("oblivious");
        } else {
            if self.system_usage.uses_id {
                tags.push("uses-Id");
            }
            if self.system_usage.uses_all {
                tags.push("uses-All");
            }
        }
        if self.inflationary {
            tags.push("inflationary");
        }
        if self.monotone {
            tags.push("monotone(syn)");
        }
        if tags.is_empty() {
            tags.push("unrestricted");
        }
        write!(f, "{}", tags.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TransducerBuilder;
    use rtx_query::{atom, CqBuilder, FoQuery, Formula, QueryRef, Term, UcqQuery};
    use std::sync::Arc;

    fn copy_s() -> QueryRef {
        Arc::new(UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(atom!("S"; @"X"))
                .build()
                .unwrap(),
        ))
    }

    #[test]
    fn oblivious_inflationary_monotone() {
        let t = TransducerBuilder::new("nice")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .send("M", copy_s())
            .insert("T", copy_s())
            .output(copy_s())
            .build()
            .unwrap();
        let c = Classification::of(&t);
        assert!(c.oblivious);
        assert!(c.inflationary);
        assert!(c.monotone);
        assert_eq!(format!("{c}"), "oblivious, inflationary, monotone(syn)");
    }

    #[test]
    fn id_usage_detected() {
        let uses_id: QueryRef = Arc::new(UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(atom!("Id"; @"X"))
                .build()
                .unwrap(),
        ));
        let t = TransducerBuilder::new("id-user")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .send("M", uses_id)
            .build()
            .unwrap();
        let c = Classification::of(&t);
        assert!(!c.oblivious);
        assert!(c.system_usage.uses_id);
        assert!(!c.system_usage.uses_all);
    }

    #[test]
    fn all_usage_detected() {
        let q: QueryRef = Arc::new(
            FoQuery::sentence(Formula::forall(
                ["X"],
                Formula::or([
                    Formula::not(Formula::atom(atom!("All"; @"X"))),
                    Formula::atom(atom!("T"; @"X")),
                ]),
            ))
            .unwrap(),
        );
        let t = TransducerBuilder::new("all-user")
            .input_relation("S", 1)
            .memory_relation("T", 1)
            .output_arity(0)
            .output(q)
            .build()
            .unwrap();
        let c = Classification::of(&t);
        assert!(!c.oblivious);
        assert!(c.system_usage.uses_all);
        assert!(!c.system_usage.uses_id);
        assert!(!c.monotone); // forall + negation
    }

    #[test]
    fn deletion_breaks_inflationary() {
        let t = TransducerBuilder::new("deleter")
            .input_relation("S", 1)
            .memory_relation("T", 1)
            .insert("T", copy_s())
            .delete(
                "T",
                Arc::new(UcqQuery::single(
                    CqBuilder::head(vec![Term::var("X")])
                        .when(atom!("T"; @"X"))
                        .build()
                        .unwrap(),
                )),
            )
            .build()
            .unwrap();
        let c = Classification::of(&t);
        assert!(!c.inflationary);
        assert!(c.oblivious);
    }

    #[test]
    fn negation_breaks_monotone() {
        let q: QueryRef = Arc::new(UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(atom!("S"; @"X"))
                .unless(atom!("T"; @"X"))
                .build()
                .unwrap(),
        ));
        let t = TransducerBuilder::new("negator")
            .input_relation("S", 1)
            .memory_relation("T", 1)
            .insert("T", q)
            .build()
            .unwrap();
        assert!(!Classification::of(&t).monotone);
    }
}

//! # rtx-core — tiny cross-crate utilities
//!
//! The one thing every crate in this workspace kept reimplementing was
//! `RTX_*` environment-variable parsing, each copy with its own error
//! message and its own silent-fallback bugs. This crate centralizes it:
//! every override (`RTX_NET_THREADS`, `RTX_DEDALUS_FIXPOINT`,
//! `RTX_PROPTEST_CASES`, `RTX_PROPTEST_SEED`, `RTX_BENCH_JSON`,
//! `RTX_CHAOS_SEED`, …) goes through [`env`], so a typo'd value always
//! produces the same loud, uniform warning instead of silently running
//! the wrong configuration — which matters doubly for the chaos
//! subsystem, where a mis-parsed seed would "replay" a different run.
//!
//! It also hosts [`mix`], the pure splitmix64 fold every seeded fault
//! decision in the workspace derives from — one definition, so the
//! replay-determinism story cannot silently fork between crates.

#![warn(missing_docs)]

/// Pure splitmix64-style mixing, the decision function of the chaos
/// layer: every fault fate (message delay, duplication, crash window,
/// async timestamp) is `mix::fold` of a seed and the decision
/// coordinates, never a draw from a mutable RNG stream — which is what
/// makes any faulted run exactly reproducible from its plan and seed.
pub mod mix {
    /// Fold the parts into one splitmix64 draw. Deterministic across
    /// platforms and builds; changing this function invalidates every
    /// recorded `(plan, seed)` replay, so don't.
    pub fn fold(parts: &[u64]) -> u64 {
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for &p in parts {
            x ^= p.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = x.rotate_left(27).wrapping_mul(0x94d0_49bb_1331_11eb);
        }
        // splitmix64 finalizer
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// Environment-variable parsing with uniform diagnostics.
///
/// All readers share two conventions:
///
/// * **unset or empty ⇒ `None`** — an empty string behaves like the
///   variable being absent, so `RTX_FOO= cargo test` disables an
///   override instead of tripping a parse warning;
/// * **set but unparsable ⇒ `None` + one loud warning** on stderr, in
///   the fixed shape `warning: ignoring unparsable NAME="VALUE" (want
///   WHAT)` — never a silent fallback.
pub mod env {
    /// The raw value of `name`, trimmed; `None` when unset or empty.
    pub fn raw(name: &str) -> Option<String> {
        match std::env::var(name) {
            Ok(v) => {
                let t = v.trim();
                if t.is_empty() {
                    None
                } else {
                    Some(t.to_string())
                }
            }
            Err(_) => None,
        }
    }

    /// Emit the uniform unparsable-value warning.
    pub fn warn_unparsable(name: &str, value: &str, want: &str) {
        eprintln!("warning: ignoring unparsable {name}={value:?} (want {want})");
    }

    /// Parse `name` as a `u64`, accepting decimal or `0x`-prefixed hex
    /// (seeds are conventionally reported in hex).
    pub fn parse_u64(name: &str) -> Option<u64> {
        let v = raw(name)?;
        let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => v.parse(),
        };
        match parsed {
            Ok(n) => Some(n),
            Err(_) => {
                warn_unparsable(name, &v, "decimal or 0x-hex");
                None
            }
        }
    }

    /// Parse `name` as a `usize` (decimal).
    pub fn parse_usize(name: &str) -> Option<usize> {
        let v = raw(name)?;
        match v.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                warn_unparsable(name, &v, "a nonnegative integer");
                None
            }
        }
    }

    /// Parse `name` as a positive (`>= 1`) `usize` — thread counts,
    /// case counts, run counts.
    pub fn parse_positive_usize(name: &str) -> Option<usize> {
        let v = raw(name)?;
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                warn_unparsable(name, &v, "a positive integer");
                None
            }
        }
    }

    /// Parse `name` through a domain-specific `parse` function (e.g. an
    /// enum's name parser); `expected` describes the accepted values
    /// for the warning.
    pub fn parse_choice<T>(
        name: &str,
        expected: &str,
        parse: impl Fn(&str) -> Option<T>,
    ) -> Option<T> {
        let v = raw(name)?;
        match parse(&v) {
            Some(t) => Some(t),
            None => {
                warn_unparsable(name, &v, expected);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{env, mix};

    #[test]
    fn mix_is_pure_and_sensitive() {
        assert_eq!(mix::fold(&[1, 2, 3]), mix::fold(&[1, 2, 3]));
        assert_ne!(mix::fold(&[1, 2, 3]), mix::fold(&[1, 2, 4]));
        assert_ne!(mix::fold(&[1, 2, 3]), mix::fold(&[3, 2, 1]));
        assert_ne!(mix::fold(&[]), mix::fold(&[0]));
    }
    use std::sync::{Mutex, MutexGuard};

    /// Env vars are process-global: serialize the tests that set them.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_var(name: &str, value: Option<&str>) -> MutexGuard<'static, ()> {
        let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        match value {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
        guard
    }

    #[test]
    fn raw_treats_empty_as_unset() {
        let _g = with_var("RTX_CORE_TEST_RAW", Some("  "));
        assert_eq!(env::raw("RTX_CORE_TEST_RAW"), None);
        std::env::set_var("RTX_CORE_TEST_RAW", " x ");
        assert_eq!(env::raw("RTX_CORE_TEST_RAW").as_deref(), Some("x"));
        std::env::remove_var("RTX_CORE_TEST_RAW");
    }

    #[test]
    fn parse_u64_accepts_hex_and_decimal() {
        let _g = with_var("RTX_CORE_TEST_U64", Some("0x5EED"));
        assert_eq!(env::parse_u64("RTX_CORE_TEST_U64"), Some(0x5EED));
        std::env::set_var("RTX_CORE_TEST_U64", "42");
        assert_eq!(env::parse_u64("RTX_CORE_TEST_U64"), Some(42));
        std::env::set_var("RTX_CORE_TEST_U64", "nope");
        assert_eq!(env::parse_u64("RTX_CORE_TEST_U64"), None);
        std::env::remove_var("RTX_CORE_TEST_U64");
    }

    #[test]
    fn parse_positive_usize_rejects_zero() {
        let _g = with_var("RTX_CORE_TEST_POS", Some("0"));
        assert_eq!(env::parse_positive_usize("RTX_CORE_TEST_POS"), None);
        std::env::set_var("RTX_CORE_TEST_POS", "3");
        assert_eq!(env::parse_positive_usize("RTX_CORE_TEST_POS"), Some(3));
        std::env::remove_var("RTX_CORE_TEST_POS");
    }

    #[test]
    fn parse_choice_maps_through_domain_parser() {
        let _g = with_var("RTX_CORE_TEST_CHOICE", Some("b"));
        let parse = |s: &str| match s {
            "a" => Some(1),
            "b" => Some(2),
            _ => None,
        };
        assert_eq!(
            env::parse_choice("RTX_CORE_TEST_CHOICE", "a or b", parse),
            Some(2)
        );
        std::env::set_var("RTX_CORE_TEST_CHOICE", "z");
        assert_eq!(
            env::parse_choice("RTX_CORE_TEST_CHOICE", "a or b", parse),
            None
        );
        std::env::remove_var("RTX_CORE_TEST_CHOICE");
    }

    #[test]
    fn unset_is_none_for_all_parsers() {
        let _g = with_var("RTX_CORE_TEST_UNSET", None);
        assert_eq!(env::raw("RTX_CORE_TEST_UNSET"), None);
        assert_eq!(env::parse_u64("RTX_CORE_TEST_UNSET"), None);
        assert_eq!(env::parse_usize("RTX_CORE_TEST_UNSET"), None);
        assert_eq!(env::parse_positive_usize("RTX_CORE_TEST_UNSET"), None);
    }
}

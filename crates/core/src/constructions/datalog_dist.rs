//! Theorem 6(5): Datalog queries and oblivious, inflationary transducers.
//!
//! **Only-if direction** ([`distribute_datalog`]): given a Datalog
//! program `P`, build a transducer that floods the EDB and applies the
//! immediate-consequence operator `T_P` once per heartbeat, accumulating
//! the IDB in memory (inflationary — "by the monotone nature of Datalog
//! evaluation, deletions are not needed"). The transducer is oblivious.
//!
//! **If direction** ([`datalog_from_transducer_rules`]): from the UCQ
//! insertion rules of an oblivious inflationary transducer, "taking
//! together the rules of all update queries `Q_ins^R` and the output
//! query `Q_out`" yields a recursive Datalog program computing the same
//! query.

use crate::constructions::flood::FloodMode;
use crate::constructions::{arg_vars, known_input_views, msg_rel, store_rel};
use rtx_query::{
    Atom, CopyQuery, CqBuilder, CqRule, EvalError, Literal, Program, QueryRef, Rule, Term, TpQuery,
    UcqQuery, ViewQuery,
};
use rtx_relational::{RelName, Schema};
use rtx_transducer::{Transducer, TransducerBuilder};
use std::sync::Arc;

/// Build the Theorem 6(5) transducer for a Datalog program.
///
/// The input schema is the program's EDB. Memory holds a flooded store
/// per EDB relation plus one relation per IDB predicate. Every heartbeat
/// inserts `T_P` of (known EDB ∪ current IDB) into the IDB memory;
/// `answer` is the designated output predicate.
pub fn distribute_datalog(
    program: &Program,
    answer: &RelName,
    mode: FloodMode,
) -> Result<Transducer, EvalError> {
    if program.has_negation() {
        return Err(EvalError::Unsafe {
            reason: "Theorem 6(5) is about negation-free Datalog".into(),
        });
    }
    let answer_arity = program.signature().arity(answer).ok_or_else(|| {
        EvalError::Rel(rtx_relational::RelError::UnknownRelation {
            rel: answer.clone(),
        })
    })?;

    let edb: Schema = program
        .edb_predicates()
        .into_iter()
        .map(|r| {
            let a = program
                .signature()
                .arity(&r)
                .expect("signature lists every predicate");
            (r, a)
        })
        .collect();

    let mut b = TransducerBuilder::new("datalog-tp").input_schema(&edb);

    // Flooding of EDB facts (inline rather than via flood_transducer so
    // that IDB memory relations live in the same transducer).
    for (r, k) in edb.iter() {
        let msg = msg_rel(r);
        let store = store_rel(r);
        b = b
            .message_relation(msg.clone(), k)
            .memory_relation(store.clone(), k);
        let vars = arg_vars(k);
        let local = Atom::new(r.clone(), vars.clone());
        let msg_atom = Atom::new(msg.clone(), vars.clone());
        let store_atom = Atom::new(store.clone(), vars.clone());
        let send_rules = match mode {
            FloodMode::Naive => vec![
                CqBuilder::head(vars.clone()).when(local.clone()).build()?,
                CqBuilder::head(vars.clone())
                    .when(msg_atom.clone())
                    .build()?,
            ],
            FloodMode::Dedup => vec![
                CqBuilder::head(vars.clone())
                    .when(local.clone())
                    .unless(store_atom.clone())
                    .build()?,
                CqBuilder::head(vars.clone())
                    .when(msg_atom.clone())
                    .unless(store_atom)
                    .build()?,
            ],
        };
        b = b.send(msg, Arc::new(UcqQuery::new(k, send_rules)?));
        let ins_rules = vec![
            CqBuilder::head(vars.clone()).when(local).build()?,
            CqBuilder::head(vars.clone()).when(msg_atom).build()?,
        ];
        b = b.insert(store, Arc::new(UcqQuery::new(k, ins_rules)?));
    }

    // IDB memory + T_P insertion queries. The TP query sees the EDB
    // through the known-input views (local ∪ store) and the IDB through
    // the base state.
    let views = known_input_views(&edb)?;
    for p in program.idb_predicates() {
        let arity = program.signature().arity(p).expect("idb in signature");
        b = b.memory_relation(p.clone(), arity);
        let tp: QueryRef = Arc::new(TpQuery::new(program.clone(), p.clone())?);
        let viewed = ViewQuery::new(views.clone(), tp).with_base();
        b = b.insert(p.clone(), Arc::new(viewed));
    }

    // out := the accumulated answer predicate.
    b = b.output(Arc::new(CopyQuery::new(answer.clone(), answer_arity)));
    b.build()
}

/// The if-direction of Theorem 6(5): combine the UCQ insertion rules of
/// an oblivious, inflationary transducer (memory relation ↦ its rules)
/// with the output query's rules into one recursive Datalog program.
///
/// Negated atoms are rejected — the theorem characterizes *Datalog*.
pub fn datalog_from_transducer_rules(
    memory_rules: &[(RelName, UcqQuery)],
    output: (&RelName, &UcqQuery),
) -> Result<Program, EvalError> {
    let mut rules: Vec<Rule> = Vec::new();
    let mut convert = |head_pred: &RelName, ucq: &UcqQuery| -> Result<(), EvalError> {
        for cq in ucq.rules() {
            if !cq.negated().is_empty() {
                return Err(EvalError::Unsafe {
                    reason: "transducer rule uses negation; not a Datalog transducer".into(),
                });
            }
            convert_rule(head_pred, cq, &mut rules)?;
        }
        Ok(())
    };
    for (rel, ucq) in memory_rules {
        convert(rel, ucq)?;
    }
    convert(output.0, output.1)?;
    Program::new(rules)
}

fn convert_rule(head_pred: &RelName, cq: &CqRule, rules: &mut Vec<Rule>) -> Result<(), EvalError> {
    let head = Atom::new(head_pred.clone(), cq.head().to_vec());
    let body: Vec<Literal> = cq.positive().iter().cloned().map(Literal::Pos).collect();
    rules.push(Rule::new(head, body)?);
    Ok(())
}

/// Convenience: the textbook transitive-closure program
/// `T(x,y) ← E(x,y); T(x,z) ← T(x,y), E(y,z)`.
pub fn transitive_closure_program() -> Program {
    let t_copy = Rule::new(
        Atom::new("T", vec![Term::var("X"), Term::var("Y")]),
        vec![Literal::Pos(Atom::new(
            "E",
            vec![Term::var("X"), Term::var("Y")],
        ))],
    )
    .expect("safe rule");
    let t_step = Rule::new(
        Atom::new("T", vec![Term::var("X"), Term::var("Z")]),
        vec![
            Literal::Pos(Atom::new("T", vec![Term::var("X"), Term::var("Y")])),
            Literal::Pos(Atom::new("E", vec![Term::var("Y"), Term::var("Z")])),
        ],
    )
    .expect("safe rule");
    Program::new(vec![t_copy, t_step]).expect("consistent arities")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget};
    use rtx_query::{DatalogQuery, Query};
    use rtx_relational::{fact, Instance};
    use rtx_transducer::Classification;

    fn edges(pairs: &[(i64, i64)]) -> Instance {
        let sch = Schema::new().with("E", 2);
        let mut i = Instance::empty(sch);
        for &(a, b) in pairs {
            i.insert_fact(fact!("E", a, b)).unwrap();
        }
        i
    }

    #[test]
    fn tp_transducer_is_oblivious_and_inflationary() {
        let t = distribute_datalog(&transitive_closure_program(), &"T".into(), FloodMode::Dedup)
            .unwrap();
        let c = Classification::of(&t);
        assert!(c.oblivious);
        assert!(c.inflationary, "Datalog evaluation needs no deletions");
        // with naive flooding, fully monotone
        let t2 = distribute_datalog(&transitive_closure_program(), &"T".into(), FloodMode::Naive)
            .unwrap();
        assert!(Classification::of(&t2).monotone);
    }

    #[test]
    fn distributed_tp_computes_transitive_closure() {
        let input = edges(&[(1, 2), (2, 3), (3, 4), (7, 8)]);
        let expected = DatalogQuery::new(transitive_closure_program(), "T")
            .unwrap()
            .eval(&input)
            .unwrap();
        let t = distribute_datalog(&transitive_closure_program(), &"T".into(), FloodMode::Dedup)
            .unwrap();
        let net = Network::ring(4).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent);
        assert_eq!(out.output, expected);
        // every node individually converged to the full closure
        for per in out.outputs_per_node.values() {
            assert_eq!(per, &expected);
        }
    }

    #[test]
    fn negation_rejected() {
        let p = rtx_query::parser::parse_program("q(X) :- s(X), !t(X).").unwrap();
        assert!(distribute_datalog(&p, &"q".into(), FloodMode::Dedup).is_err());
    }

    #[test]
    fn unknown_answer_predicate_rejected() {
        let p = transitive_closure_program();
        assert!(distribute_datalog(&p, &"Nope".into(), FloodMode::Dedup).is_err());
    }

    #[test]
    fn round_trip_transducer_rules_to_datalog() {
        // Memory rule set shaped like the TC transducer's insertion
        // queries; recombining must give back a working recursive program.
        let t_rules = UcqQuery::new(
            2,
            vec![
                CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
                    .when(Atom::new("E", vec![Term::var("X"), Term::var("Y")]))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X"), Term::var("Z")])
                    .when(Atom::new("T", vec![Term::var("X"), Term::var("Y")]))
                    .when(Atom::new("E", vec![Term::var("Y"), Term::var("Z")]))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        let out_rule = UcqQuery::single(
            CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
                .when(Atom::new("T", vec![Term::var("X"), Term::var("Y")]))
                .build()
                .unwrap(),
        );
        let program =
            datalog_from_transducer_rules(&[("T".into(), t_rules)], (&"Ans".into(), &out_rule))
                .unwrap();
        assert!(!program.is_nonrecursive());
        let input = edges(&[(1, 2), (2, 3)]);
        let q = DatalogQuery::new(program, "Ans").unwrap();
        let out = q.eval(&input).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn negated_transducer_rules_rejected_in_round_trip() {
        let bad = UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(Atom::new("S", vec![Term::var("X")]))
                .unless(Atom::new("T", vec![Term::var("X")]))
                .build()
                .unwrap(),
        );
        let out_rule = UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(Atom::new("T", vec![Term::var("X")]))
                .build()
                .unwrap(),
        );
        assert!(
            datalog_from_transducer_rules(&[("T".into(), bad)], (&"A".into(), &out_rule)).is_err()
        );
    }
}

//! Lemma 5(1): the acknowledgement-based multicast protocol with a
//! `Ready` flag.
//!
//! Every node origin-tags its local input facts and floods them
//! (`Cast_R(src, x̄)`). Every node acknowledges each cast on first receipt
//! (`Ack_R(src, x̄, acker)`, also flooded). When a node `o` has seen an
//! ack from node `w` for *every* local input fact, it emits
//! `Done(o, w)` (flooded). A node `w` raises its nullary `Ready` flag
//! once it has seen `Done(v, w)` from every node `v` — which, by the ack
//! discipline, certifies that `w` stores the entire distributed input.
//!
//! The protocol is inflationary ("no deletions are necessary") but
//! decidedly *not* oblivious: it consults both `Id` and `All`. It is the
//! engine behind Theorem 6(1)/(3) and the canonical example of the heavy
//! coordination the CALM theorem says monotone queries can avoid.

use crate::constructions::{
    ack_rel, arg_vars, cast_rel, done_rel, multicast_input_views, ready_rel, seen_ack_rel,
    seen_cast_rel, seen_done_rel,
};
use rtx_query::{
    Atom, CopyQuery, CqBuilder, EvalError, FoQuery, Formula, GatedQuery, QueryRef, Term, UcqQuery,
    UnionQuery, ViewQuery,
};
use rtx_relational::{RelName, Schema};
use rtx_transducer::{Transducer, TransducerBuilder, SYS_ALL, SYS_ID};
use std::sync::Arc;

/// Build the multicast transducer for an input schema.
///
/// `output` is an optional query over the *input* relation names,
/// evaluated on the fully-collected instance and gated on `Ready` —
/// exactly the Theorem 6(1) recipe "first obtain the entire input
/// instance, then apply and output Q".
pub fn multicast_transducer(
    input: &Schema,
    output: Option<QueryRef>,
) -> Result<Transducer, EvalError> {
    let mut b = install_multicast(
        TransducerBuilder::new("multicast").input_schema(input),
        input,
    )?;
    if let Some(q) = output {
        let views = multicast_input_views(input)?;
        let gated = GatedQuery::new(
            Arc::new(CopyQuery::new(ready_rel(), 0)),
            Arc::new(ViewQuery::new(views, q)),
        );
        b = b.output(Arc::new(gated));
    }
    b.build()
}

/// Install the multicast protocol's message/memory relations and queries
/// onto an existing builder (used by constructions that extend the
/// protocol, e.g. the Corollary 8 linear order).
pub(crate) fn install_multicast(
    mut b: TransducerBuilder,
    input: &Schema,
) -> Result<TransducerBuilder, EvalError> {
    // message + memory schema
    for (r, k) in input.iter() {
        b = b
            .message_relation(cast_rel(r), k + 1)
            .message_relation(ack_rel(r), k + 2)
            .memory_relation(seen_cast_rel(r), k + 1)
            .memory_relation(seen_ack_rel(r), k + 2);
    }
    b = b
        .message_relation(done_rel(), 2)
        .memory_relation(seen_done_rel(), 2)
        .memory_relation(ready_rel(), 0);

    let src = Term::var("Src");
    let me = Term::var("Me");

    for (r, k) in input.iter() {
        let vars = arg_vars(k);
        let mut src_args = vec![src.clone()];
        src_args.extend(vars.clone());
        let mut ack_args = src_args.clone();
        ack_args.push(me.clone());

        let local = Atom::new(r.clone(), vars.clone());
        let cast = Atom::new(cast_rel(r), src_args.clone());
        let seen_cast = Atom::new(seen_cast_rel(r), src_args.clone());
        let ack = Atom::new(ack_rel(r), ack_args.clone());
        let seen_ack = Atom::new(seen_ack_rel(r), ack_args.clone());
        let id_src = Atom::new(RelName::new(SYS_ID), vec![src.clone()]);
        let id_me = Atom::new(RelName::new(SYS_ID), vec![me.clone()]);

        // snd Cast_R: initial cast of own facts (once), plus
        // forward-on-first-receipt.
        let snd_cast = UcqQuery::new(
            k + 1,
            vec![
                CqBuilder::head(src_args.clone())
                    .when(id_src.clone())
                    .when(local.clone())
                    .unless(seen_cast.clone())
                    .build()?,
                CqBuilder::head(src_args.clone())
                    .when(cast.clone())
                    .unless(seen_cast.clone())
                    .build()?,
            ],
        )?;
        b = b.send(cast_rel(r), Arc::new(snd_cast));

        // ins SeenCast_R := own facts ∪ received casts.
        let ins_seen_cast = UcqQuery::new(
            k + 1,
            vec![
                CqBuilder::head(src_args.clone())
                    .when(id_src.clone())
                    .when(local.clone())
                    .build()?,
                CqBuilder::head(src_args.clone())
                    .when(cast.clone())
                    .build()?,
            ],
        )?;
        b = b.insert(seen_cast_rel(r), Arc::new(ins_seen_cast));

        // snd Ack_R: ack each cast on first receipt, plus forwarding.
        let snd_ack = UcqQuery::new(
            k + 2,
            vec![
                CqBuilder::head(ack_args.clone())
                    .when(cast.clone())
                    .unless(seen_cast.clone())
                    .when(id_me.clone())
                    .build()?,
                CqBuilder::head(ack_args.clone())
                    .when(ack.clone())
                    .unless(seen_ack.clone())
                    .build()?,
            ],
        )?;
        b = b.send(ack_rel(r), Arc::new(snd_ack));

        // ins SeenAck_R := my acks for received casts ∪ self-acks for my
        // own facts ∪ every ack seen on the wire.
        let ins_seen_ack = UcqQuery::new(
            k + 2,
            vec![
                CqBuilder::head(ack_args.clone())
                    .when(cast.clone())
                    .unless(seen_cast.clone())
                    .when(id_me.clone())
                    .build()?,
                CqBuilder::head(ack_args.clone())
                    .when(id_src.clone())
                    .when(local.clone())
                    .when(id_me.clone())
                    .build()?,
                CqBuilder::head(ack_args.clone())
                    .when(ack.clone())
                    .build()?,
            ],
        )?;
        b = b.insert(seen_ack_rel(r), Arc::new(ins_seen_ack));
    }

    // The "w has acked all my local facts" condition, as an FO formula
    // with free variables O (owner = me) and W (the acker):
    //   ⋀_R ∀x̄ ( ¬R(x̄) ∨ SeenAck_R(O, x̄, W) )
    let all_acked = |o: &str, w: &str| -> Formula {
        let mut parts = Vec::new();
        for (r, k) in input.iter() {
            let vars: Vec<_> = (0..k).map(|i| format!("Y{i}")).collect();
            let var_terms: Vec<Term> = vars.iter().map(Term::var).collect();
            let mut ack_args = vec![Term::var(o)];
            ack_args.extend(var_terms.clone());
            ack_args.push(Term::var(w));
            let body = Formula::or([
                Formula::not(Formula::Atom(Atom::new(r.clone(), var_terms))),
                Formula::Atom(Atom::new(seen_ack_rel(r), ack_args)),
            ]);
            parts.push(if k == 0 {
                body
            } else {
                Formula::forall(vars.iter().map(String::as_str), body)
            });
        }
        Formula::and(parts)
    };

    // snd Done(O, W): once per (me, W), when everything is acked by W.
    let snd_done_fresh = FoQuery::new(
        ["O", "W"],
        Formula::and([
            Formula::Atom(Atom::new(RelName::new(SYS_ID), vec![Term::var("O")])),
            Formula::Atom(Atom::new(RelName::new(SYS_ALL), vec![Term::var("W")])),
            Formula::not(Formula::Atom(Atom::new(
                seen_done_rel(),
                vec![Term::var("O"), Term::var("W")],
            ))),
            all_acked("O", "W"),
        ]),
    )?;
    // … plus forwarding of received Done facts.
    let done_atom = Atom::new(done_rel(), vec![Term::var("O"), Term::var("W")]);
    let seen_done_atom = Atom::new(seen_done_rel(), vec![Term::var("O"), Term::var("W")]);
    let snd_done_forward = UcqQuery::single(
        CqBuilder::head(vec![Term::var("O"), Term::var("W")])
            .when(done_atom.clone())
            .unless(seen_done_atom.clone())
            .build()?,
    );
    b = b.send(
        done_rel(),
        Arc::new(UnionQuery::new(
            2,
            vec![Arc::new(snd_done_fresh), Arc::new(snd_done_forward)],
        )?),
    );

    // ins SeenDone := locally-established Done pairs ∪ received Done.
    let ins_done_local = FoQuery::new(
        ["O", "W"],
        Formula::and([
            Formula::Atom(Atom::new(RelName::new(SYS_ID), vec![Term::var("O")])),
            Formula::Atom(Atom::new(RelName::new(SYS_ALL), vec![Term::var("W")])),
            all_acked("O", "W"),
        ]),
    )?;
    let ins_done_rcv = UcqQuery::single(
        CqBuilder::head(vec![Term::var("O"), Term::var("W")])
            .when(done_atom)
            .build()?,
    );
    b = b.insert(
        seen_done_rel(),
        Arc::new(UnionQuery::new(
            2,
            vec![Arc::new(ins_done_local), Arc::new(ins_done_rcv)],
        )?),
    );

    // ins Ready := ∃me ( Id(me) ∧ ∀v (All(v) → SeenDone(v, me)) ).
    let ins_ready = FoQuery::sentence(Formula::exists(
        ["M"],
        Formula::and([
            Formula::Atom(Atom::new(RelName::new(SYS_ID), vec![Term::var("M")])),
            Formula::forall(
                ["V"],
                Formula::or([
                    Formula::not(Formula::Atom(Atom::new(
                        RelName::new(SYS_ALL),
                        vec![Term::var("V")],
                    ))),
                    Formula::Atom(Atom::new(
                        seen_done_rel(),
                        vec![Term::var("V"), Term::var("M")],
                    )),
                ]),
            ),
        ]),
    ))?;
    b = b.insert(ready_rel(), Arc::new(ins_ready));
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_net::{
        run, FifoRoundRobin, HorizontalPartition, LifoRoundRobin, Network, RandomScheduler,
        RunBudget,
    };
    use rtx_query::atom;
    use rtx_relational::{fact, Instance, Value};
    use rtx_transducer::Classification;

    fn input_s(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn run_to_quiescence(net: &Network, input: &Instance) -> rtx_net::RunOutcome {
        let t = multicast_transducer(input.schema(), None).unwrap();
        let p = HorizontalPartition::round_robin(net, input);
        run(
            net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap()
    }

    #[test]
    fn classification_inflationary_not_oblivious() {
        let t = multicast_transducer(&Schema::new().with("S", 1), None).unwrap();
        let c = Classification::of(&t);
        assert!(c.inflationary, "Lemma 5(1): no deletions are necessary");
        assert!(!c.oblivious);
        assert!(c.system_usage.uses_id);
        assert!(c.system_usage.uses_all);
    }

    #[test]
    fn ready_implies_full_store_on_line() {
        let net = Network::line(3).unwrap();
        let input = input_s(&[1, 2, 3]);
        let out = run_to_quiescence(&net, &input);
        assert!(out.quiescent, "multicast drains and stabilizes");
        for n in net.nodes() {
            let st = out.final_config.state(n).unwrap();
            assert!(
                st.relation(&ready_rel()).unwrap().as_bool(),
                "every node eventually becomes Ready"
            );
            // the store holds all 3 facts (origin-tagged)
            let stored = st.relation(&seen_cast_rel(&"S".into())).unwrap();
            let data: std::collections::BTreeSet<_> =
                stored.iter().map(|t| *t.get(1).unwrap()).collect();
            assert_eq!(data.len(), 3, "node {n} is missing input facts");
        }
    }

    /// The Lemma 5(1) safety property: `Ready` never precedes a full
    /// store. We check it at every prefix of a run by single-stepping.
    #[test]
    fn ready_never_true_before_full_store() {
        let net = Network::ring(4).unwrap();
        let input = input_s(&[10, 20, 30]);
        let t = multicast_transducer(input.schema(), None).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let mut cfg = rtx_net::Configuration::initial(&net, &t, &p).unwrap();
        let mut sched = RandomScheduler::seeded(99);
        use rtx_net::{Action, Scheduler};
        for _ in 0..4_000 {
            // invariant check at every reachable configuration
            for n in net.nodes() {
                let st = cfg.state(n).unwrap();
                if st.relation(&ready_rel()).unwrap().as_bool() {
                    let stored = st.relation(&seen_cast_rel(&"S".into())).unwrap();
                    let data: std::collections::BTreeSet<_> =
                        stored.iter().map(|t| *t.get(1).unwrap()).collect();
                    assert_eq!(
                        data.len(),
                        3,
                        "Ready at {n} before the node had the whole instance"
                    );
                }
            }
            if cfg.all_buffers_empty() {
                for n in net.node_set() {
                    cfg.apply_heartbeat(&net, &t, &n).unwrap();
                }
                continue;
            }
            match sched.next_action(&cfg, &net) {
                Action::Heartbeat(n) => {
                    cfg.apply_heartbeat(&net, &t, &n).unwrap();
                }
                Action::Deliver(n, i) => {
                    cfg.apply_delivery(&net, &t, &n, i).unwrap();
                }
            }
        }
    }

    #[test]
    fn works_with_empty_fragments_and_single_node() {
        // single node: Ready via self-recording, no messages needed
        let net = Network::single();
        let input = input_s(&[5]);
        let out = run_to_quiescence(&net, &input);
        assert!(out.quiescent);
        let n0 = Value::sym("n0");
        let st = out.final_config.state(&n0).unwrap();
        assert!(st.relation(&ready_rel()).unwrap().as_bool());
        // empty input: everything vacuous, Ready still reached
        let empty = input_s(&[]);
        let out = run_to_quiescence(&Network::line(2).unwrap(), &empty);
        assert!(out.quiescent);
        for n in [Value::sym("n0"), Value::sym("n1")] {
            let st = out.final_config.state(&n).unwrap();
            assert!(st.relation(&ready_rel()).unwrap().as_bool());
        }
    }

    #[test]
    fn gated_output_appears_only_after_ready() {
        // output = identity on S, gated on Ready
        let out_q: QueryRef = Arc::new(UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(atom!("S"; @"X"))
                .build()
                .unwrap(),
        ));
        let net = Network::line(3).unwrap();
        let input = input_s(&[1, 2]);
        let t = multicast_transducer(input.schema(), Some(out_q)).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let res = run(
            &net,
            &t,
            &p,
            &mut LifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(res.quiescent);
        assert_eq!(res.output.len(), 2, "full identity once Ready");
        // per-node outputs are complete too (every node got everything)
        for o in res.outputs_per_node.values() {
            assert_eq!(o.len(), 2);
        }
    }

    #[test]
    fn multicast_message_cost_exceeds_flooding() {
        use crate::constructions::flood::{flood_transducer, FloodMode};
        let net = Network::line(4).unwrap();
        let input = input_s(&[1, 2, 3]);
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(500_000);
        let mc = multicast_transducer(input.schema(), None).unwrap();
        let fl = flood_transducer(input.schema(), FloodMode::Dedup, None).unwrap();
        let mc_run = run(&net, &mc, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        let fl_run = run(&net, &fl, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        assert!(mc_run.quiescent && fl_run.quiescent);
        assert!(
            mc_run.messages_enqueued > 2 * fl_run.messages_enqueued,
            "coordination is expensive: multicast {} msgs vs flood {} msgs",
            mc_run.messages_enqueued,
            fl_run.messages_enqueued
        );
    }
}

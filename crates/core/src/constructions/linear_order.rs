//! Corollary 8: on a network with at least two nodes, every node can
//! establish a **linear order** on the active domain, and therefore every
//! PSPACE query becomes computable by an FO-transducer.
//!
//! The construction (paper, end of Section 4): first collect all input
//! tuples (the multicast protocol of Lemma 5(1)); once `Ready`, send out
//! all elements of the active domain; forward `Elem` messages; and store
//! the elements *in the order they are received back*. Receiving one fact
//! per delivery transition serializes the elements — each node ends up
//! with its own strict total order `Order(x, y)` ("x arrived before y").
//!
//! As the paper notes, such a transducer is *not* truly
//! network-topology independent: on a one-node network no messages flow,
//! so no order materializes. The demo query here —
//! [`even_cardinality_transducer`], a nonmonotone query outside FO — only
//! produces output on networks with ≥ 2 nodes, exactly matching the
//! corollary's statement.

use crate::constructions::multicast::install_multicast;
use crate::constructions::{arg_vars, multicast_input_views, ready_rel, seen_cast_rel};
use rtx_query::{
    Atom, CqBuilder, DatalogQuery, EvalError, FoQuery, Formula, GatedQuery, Literal, Program,
    QueryRef, Rule, Term, UcqQuery, UnionQuery, ViewQuery,
};
use rtx_relational::{RelName, Schema};
use rtx_transducer::{Transducer, TransducerBuilder};
use std::sync::Arc;

/// The `Elem` message relation (elements of the active domain).
pub fn elem_rel() -> RelName {
    RelName::new("Elem")
}

/// Memory: elements received so far.
pub fn seen_elem_rel() -> RelName {
    RelName::new("SeenElem")
}

/// Memory: the constructed strict order (`Order(x,y)` ⇔ x before y).
pub fn order_rel() -> RelName {
    RelName::new("Order")
}

/// Memory flag: this node has broadcast its elements.
pub fn elem_sent_rel() -> RelName {
    RelName::new("ElemSent")
}

/// Install the order-construction machinery on top of the multicast
/// protocol; returns the extended builder.
fn install_order(mut b: TransducerBuilder, input: &Schema) -> Result<TransducerBuilder, EvalError> {
    b = b
        .message_relation(elem_rel(), 1)
        .memory_relation(seen_elem_rel(), 1)
        .memory_relation(order_rel(), 2)
        .memory_relation(elem_sent_rel(), 0);

    let x = Term::var("X");
    let y = Term::var("Y");
    let elem_atom = Atom::new(elem_rel(), vec![x.clone()]);
    let seen_atom = Atom::new(seen_elem_rel(), vec![x.clone()]);

    // Initial broadcast: once Ready and not yet sent, emit every element
    // of the active domain of the collected input — one rule per input
    // relation and argument position (skipping the origin tag).
    let mut send_rules = Vec::new();
    for (r, k) in input.iter() {
        let vars = arg_vars(k);
        let mut cast_args = vec![Term::var("Src")];
        cast_args.extend(vars.clone());
        for var in vars.iter().take(k) {
            send_rules.push(
                CqBuilder::head(vec![var.clone()])
                    .when(Atom::new(ready_rel(), vec![]))
                    .when(Atom::new(seen_cast_rel(r), cast_args.clone()))
                    .unless(Atom::new(elem_sent_rel(), vec![]))
                    .build()?,
            );
        }
    }
    // Forward each element on first receipt.
    send_rules.push(
        CqBuilder::head(vec![x.clone()])
            .when(elem_atom.clone())
            .unless(seen_atom.clone())
            .build()?,
    );
    b = b.send(elem_rel(), Arc::new(UcqQuery::new(1, send_rules)?));

    // ins ElemSent := Ready (fires together with the broadcast).
    b = b.insert(
        elem_sent_rel(),
        Arc::new(UcqQuery::single(
            CqBuilder::head(vec![])
                .when(Atom::new(ready_rel(), vec![]))
                .build()?,
        )),
    );

    // ins SeenElem := received elements.
    b = b.insert(
        seen_elem_rel(),
        Arc::new(UcqQuery::single(
            CqBuilder::head(vec![x.clone()])
                .when(elem_atom.clone())
                .build()?,
        )),
    );

    // ins Order(y, x) := y already seen, x freshly delivered.
    b = b.insert(
        order_rel(),
        Arc::new(UcqQuery::single(
            CqBuilder::head(vec![y.clone(), x.clone()])
                .when(Atom::new(seen_elem_rel(), vec![y.clone()]))
                .when(elem_atom)
                .unless(seen_atom)
                .build()?,
        )),
    );
    Ok(b)
}

/// The FO sentence "this node has received back the whole active domain":
/// `Ready ∧ ∀x (x ∈ adom(collected input) → SeenElem(x))`.
fn order_complete_sentence(input: &Schema) -> Result<QueryRef, EvalError> {
    let mut adom_cases = Vec::new();
    for (r, k) in input.iter() {
        let vars: Vec<String> = (0..=k).map(|i| format!("A{i}")).collect();
        // A0 is the src tag; positions 1..=k are data.
        for j in 1..=k {
            let atom = Atom::new(
                seen_cast_rel(r),
                vars.iter().map(rtx_query::Term::var).collect(),
            );
            let mut bound: Vec<&str> = Vec::new();
            for (idx, v) in vars.iter().enumerate() {
                if idx != j {
                    bound.push(v);
                }
            }
            let inner = Formula::and([
                Formula::Atom(atom),
                Formula::eq(Term::var(format!("A{j}")), Term::var("X")),
            ]);
            adom_cases.push(Formula::exists(vars.iter().map(String::as_str), inner));
            let _ = &bound;
        }
    }
    let in_adom = Formula::or(adom_cases);
    let sentence = Formula::and([
        Formula::Atom(Atom::new(ready_rel(), vec![])),
        Formula::forall(
            ["X"],
            Formula::or([
                Formula::not(in_adom),
                Formula::Atom(Atom::new(seen_elem_rel(), vec![Term::var("X")])),
            ]),
        ),
    ]);
    Ok(Arc::new(FoQuery::sentence(sentence)?))
}

/// The order-building transducer (no output): after running to
/// quiescence on a ≥2-node network, every node's `Order` memory holds a
/// strict total order over the input's active domain.
pub fn linear_order_transducer(input: &Schema) -> Result<Transducer, EvalError> {
    let b = TransducerBuilder::new("linear-order").input_schema(input);
    let b = install_multicast(b, input)?;
    let b = install_order(b, input)?;
    b.build()
}

/// Stratified-Datalog parity walk over `SView` (the elements of `S`)
/// linearly ordered by `Order`: derives nullary `EvenCard` iff `|S|` is
/// even and nonzero.
fn parity_program() -> Program {
    let v = |s: &str| Term::var(s);
    let rules = vec![
        // Before(x,y): both in S, x before y.
        Rule::new(
            Atom::new("Before", vec![v("X"), v("Y")]),
            vec![
                Literal::Pos(Atom::new("SView", vec![v("X")])),
                Literal::Pos(Atom::new("SView", vec![v("Y")])),
                Literal::Pos(Atom::new("Order", vec![v("X"), v("Y")])),
            ],
        )
        .expect("safe"),
        // Mid(x,y): some S element strictly between.
        Rule::new(
            Atom::new("Mid", vec![v("X"), v("Y")]),
            vec![
                Literal::Pos(Atom::new("Before", vec![v("X"), v("Z")])),
                Literal::Pos(Atom::new("Before", vec![v("Z"), v("Y")])),
            ],
        )
        .expect("safe"),
        // Succ: consecutive in the order restricted to S.
        Rule::new(
            Atom::new("Succ", vec![v("X"), v("Y")]),
            vec![
                Literal::Pos(Atom::new("Before", vec![v("X"), v("Y")])),
                Literal::Neg(Atom::new("Mid", vec![v("X"), v("Y")])),
            ],
        )
        .expect("safe"),
        Rule::new(
            Atom::new("HasPred", vec![v("Y")]),
            vec![Literal::Pos(Atom::new("Before", vec![v("X"), v("Y")]))],
        )
        .expect("safe"),
        Rule::new(
            Atom::new("First", vec![v("X")]),
            vec![
                Literal::Pos(Atom::new("SView", vec![v("X")])),
                Literal::Neg(Atom::new("HasPred", vec![v("X")])),
            ],
        )
        .expect("safe"),
        Rule::new(
            Atom::new("HasSucc", vec![v("X")]),
            vec![Literal::Pos(Atom::new("Before", vec![v("X"), v("Y")]))],
        )
        .expect("safe"),
        Rule::new(
            Atom::new("Last", vec![v("X")]),
            vec![
                Literal::Pos(Atom::new("SView", vec![v("X")])),
                Literal::Neg(Atom::new("HasSucc", vec![v("X")])),
            ],
        )
        .expect("safe"),
        // Parity walk.
        Rule::new(
            Atom::new("OddAt", vec![v("X")]),
            vec![Literal::Pos(Atom::new("First", vec![v("X")]))],
        )
        .expect("safe"),
        Rule::new(
            Atom::new("OddAt", vec![v("Y")]),
            vec![
                Literal::Pos(Atom::new("EvenAt", vec![v("X")])),
                Literal::Pos(Atom::new("Succ", vec![v("X"), v("Y")])),
            ],
        )
        .expect("safe"),
        Rule::new(
            Atom::new("EvenAt", vec![v("Y")]),
            vec![
                Literal::Pos(Atom::new("OddAt", vec![v("X")])),
                Literal::Pos(Atom::new("Succ", vec![v("X"), v("Y")])),
            ],
        )
        .expect("safe"),
        Rule::new(
            Atom::new("EvenCard", vec![]),
            vec![
                Literal::Pos(Atom::new("Last", vec![v("X")])),
                Literal::Pos(Atom::new("EvenAt", vec![v("X")])),
            ],
        )
        .expect("safe"),
    ];
    Program::new(rules).expect("consistent arities")
}

/// The Corollary 8 demo: the (nonmonotone, non-FO) boolean query
/// "`|S|` is even", computed distributedly on any network with at least
/// two nodes via the constructed linear order.
///
/// Input schema: a single unary relation `S`.
pub fn even_cardinality_transducer() -> Result<Transducer, EvalError> {
    let input = Schema::new().with("S", 1);
    let b = TransducerBuilder::new("even-cardinality").input_schema(&input);
    let b = install_multicast(b, &input)?;
    let mut b = install_order(b, &input)?;

    // Views: SView := elements of S (from the multicast store), Order.
    let mut views = multicast_input_views(&input)?;
    // rename the S view to SView, keep Order via base passthrough
    let s_view = views.pop().expect("one input relation").1;
    let views = vec![("SView".into(), s_view)];

    // parity via the order walk; empty-S handled by an FO disjunct
    let walk: QueryRef = Arc::new(DatalogQuery::new(parity_program(), "EvenCard")?);
    let empty_s: QueryRef = Arc::new(FoQuery::sentence(Formula::not(Formula::exists(
        ["X"],
        Formula::Atom(Atom::new("SView", vec![Term::var("X")])),
    )))?);
    let parity = UnionQuery::new(0, vec![walk, empty_s])?;
    let viewed = ViewQuery::new(views, Arc::new(parity)).with_base();

    let complete = order_complete_sentence(&input)?;
    b = b.output(Arc::new(GatedQuery::new(complete, Arc::new(viewed))));
    b.build()
}

/// Convenience re-export used by tests and experiments: does the memory
/// of `state` hold a strict total order over `expected` elements?
pub fn is_total_order_over(
    state: &rtx_relational::Instance,
    expected: &std::collections::BTreeSet<rtx_relational::Value>,
) -> bool {
    let order = match state.relation(&order_rel()) {
        Ok(r) => r,
        Err(_) => return false,
    };
    // totality + antisymmetry: exactly one of (x,y),(y,x) for x≠y
    for a in expected {
        for bv in expected {
            if a == bv {
                continue;
            }
            let ab = order.contains(&rtx_relational::Tuple::new(vec![*a, *bv]));
            let ba = order.contains(&rtx_relational::Tuple::new(vec![*bv, *a]));
            if ab == ba {
                return false;
            }
        }
    }
    // transitivity
    for a in expected {
        for bv in expected {
            for c in expected {
                let ab = order.contains(&rtx_relational::Tuple::new(vec![*a, *bv]));
                let bc = order.contains(&rtx_relational::Tuple::new(vec![*bv, *c]));
                let ac = order.contains(&rtx_relational::Tuple::new(vec![*a, *c]));
                if ab && bc && !ac {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_net::{run, FifoRoundRobin, HorizontalPartition, Network, RandomScheduler, RunBudget};
    use rtx_relational::{fact, Instance, Value};
    use std::collections::BTreeSet;

    fn input_s(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn every_node_builds_a_total_order() {
        let net = Network::line(3).unwrap();
        let input = input_s(&[1, 2, 3, 4]);
        let t = linear_order_transducer(input.schema()).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut RandomScheduler::seeded(5),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent);
        let expected: BTreeSet<Value> = input.adom();
        for n in net.nodes() {
            let st = out.final_config.state(n).unwrap();
            assert!(
                is_total_order_over(st, &expected),
                "node {n} did not build a total order"
            );
        }
    }

    #[test]
    fn orders_may_differ_between_nodes() {
        // not asserted as must-differ (schedule-dependent), but the order
        // is at least well-formed per node under different schedulers
        let net = Network::ring(4).unwrap();
        let input = input_s(&[10, 20, 30]);
        let t = linear_order_transducer(input.schema()).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        for seed in [1, 2] {
            let out = run(
                &net,
                &t,
                &p,
                &mut RandomScheduler::seeded(seed),
                &RunBudget::steps(500_000),
            )
            .unwrap();
            assert!(out.quiescent);
            let expected: BTreeSet<Value> = input.adom();
            for n in net.nodes() {
                assert!(is_total_order_over(
                    out.final_config.state(n).unwrap(),
                    &expected
                ));
            }
        }
    }

    #[test]
    fn even_cardinality_true_on_even_sets() {
        let net = Network::line(2).unwrap();
        let t = even_cardinality_transducer().unwrap();
        for (vals, expected) in [
            (&[1i64, 2][..], true),
            (&[1, 2, 3][..], false),
            (&[1, 2, 3, 4][..], true),
            (&[9][..], false),
        ] {
            let input = input_s(vals);
            let p = HorizontalPartition::round_robin(&net, &input);
            let out = run(
                &net,
                &t,
                &p,
                &mut FifoRoundRobin::new(),
                &RunBudget::steps(500_000),
            )
            .unwrap();
            assert!(out.quiescent, "run for {vals:?} did not quiesce");
            assert_eq!(out.output.as_bool(), expected, "parity of {vals:?}");
        }
    }

    #[test]
    fn even_cardinality_empty_set_is_even() {
        let net = Network::line(2).unwrap();
        let t = even_cardinality_transducer().unwrap();
        let input = input_s(&[]);
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent);
        assert!(out.output.as_bool(), "|∅| = 0 is even");
    }

    #[test]
    fn parity_consistent_across_schedulers() {
        // any linear order gives the same parity: consistency on ≥2 nodes
        let net = Network::ring(3).unwrap();
        let t = even_cardinality_transducer().unwrap();
        let input = input_s(&[1, 2, 3, 4]);
        let p = HorizontalPartition::round_robin(&net, &input);
        for seed in [3, 17, 99] {
            let out = run(
                &net,
                &t,
                &p,
                &mut RandomScheduler::seeded(seed),
                &RunBudget::steps(500_000),
            )
            .unwrap();
            assert!(out.quiescent);
            assert!(out.output.as_bool(), "4 elements is even under any order");
        }
    }

    #[test]
    fn single_node_network_produces_no_output_on_nonempty_s() {
        // the Corollary 8 caveat: the construction needs ≥ 2 nodes
        let net = Network::single();
        let t = even_cardinality_transducer().unwrap();
        let input = input_s(&[1, 2]);
        let p = HorizontalPartition::replicate(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(50_000),
        )
        .unwrap();
        assert!(out.quiescent);
        assert!(
            out.output.is_empty(),
            "on one node no order materializes, so no parity output"
        );
    }
}

//! Lemma 5(2): oblivious dissemination by flooding.
//!
//! "All nodes simply send out their local input facts and forward any
//! message they receive. In any fair run, eventually all nodes will have
//! received all input facts. Relations `Id` and `All` are not needed."
//!
//! Two modes:
//!
//! * [`FloodMode::Naive`] — the paper's construction verbatim: every
//!   heartbeat re-sends the local input, and every received fact is
//!   forwarded unconditionally. The local queries are **monotone** UCQs
//!   and the transducer is oblivious and inflationary (the exact premise
//!   of Theorem 6(2)), but buffers never drain on a multi-node network:
//!   only the *output* quiesces (Proposition 1). Drive such runs with a
//!   step budget or a target output.
//! * [`FloodMode::Dedup`] — store-and-forward-once: a fact is sent only
//!   while absent from the store. Buffers drain, runs terminate, and the
//!   disseminated set is identical; the price is one negation per send
//!   query, so the transducer is no longer *syntactically* monotone.
//!   Still oblivious and inflationary.

use crate::constructions::{arg_vars, known_input_views, msg_rel, store_rel};
use rtx_query::{Atom, CqBuilder, EvalError, QueryRef, UcqQuery, ViewQuery};
use rtx_relational::Schema;
use rtx_transducer::{Transducer, TransducerBuilder};
use std::sync::Arc;

/// Flooding discipline. See the module docs for the trade-off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FloodMode {
    /// Paper-faithful: always forward; monotone; non-draining.
    Naive,
    /// Forward-once via a store check; draining; one negation.
    Dedup,
}

/// Build the flooding transducer for an input schema.
///
/// `output` is an optional query phrased over the *input* relation names;
/// it is re-evaluated every transition against everything the node knows
/// so far (local fragment ∪ store) — the Theorem 6(2) wrapper. With
/// `None` the transducer only disseminates.
pub fn flood_transducer(
    input: &Schema,
    mode: FloodMode,
    output: Option<QueryRef>,
) -> Result<Transducer, EvalError> {
    let mut b = TransducerBuilder::new(match mode {
        FloodMode::Naive => "flood-naive",
        FloodMode::Dedup => "flood-dedup",
    })
    .input_schema(input);

    for (r, k) in input.iter() {
        let msg = msg_rel(r);
        let store = store_rel(r);
        b = b
            .message_relation(msg.clone(), k)
            .memory_relation(store.clone(), k);

        let vars = arg_vars(k);
        let local_atom = Atom::new(r.clone(), vars.clone());
        let msg_atom = Atom::new(msg.clone(), vars.clone());
        let store_atom = Atom::new(store.clone(), vars.clone());

        // snd Msg_R
        let send_rules = match mode {
            FloodMode::Naive => vec![
                CqBuilder::head(vars.clone())
                    .when(local_atom.clone())
                    .build()?,
                CqBuilder::head(vars.clone())
                    .when(msg_atom.clone())
                    .build()?,
            ],
            FloodMode::Dedup => vec![
                CqBuilder::head(vars.clone())
                    .when(local_atom.clone())
                    .unless(store_atom.clone())
                    .build()?,
                CqBuilder::head(vars.clone())
                    .when(msg_atom.clone())
                    .unless(store_atom.clone())
                    .build()?,
            ],
        };
        b = b.send(msg, Arc::new(UcqQuery::new(k, send_rules)?));

        // ins Store_R := R ∪ Msg_R  (no deletions: inflationary)
        let ins_rules = vec![
            CqBuilder::head(vars.clone()).when(local_atom).build()?,
            CqBuilder::head(vars.clone()).when(msg_atom).build()?,
        ];
        b = b.insert(store, Arc::new(UcqQuery::new(k, ins_rules)?));
    }

    if let Some(q) = output {
        let views = known_input_views(input)?;
        b = b.output(Arc::new(ViewQuery::new(views, q)));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_net::{
        run, run_heartbeats_only, FifoRoundRobin, HorizontalPartition, LifoRoundRobin, Network,
        RandomScheduler, RunBudget,
    };
    use rtx_query::{atom, Query, Term};
    use rtx_relational::{fact, Instance, Relation};
    use rtx_transducer::Classification;

    fn input_s(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn identity_output() -> QueryRef {
        Arc::new(UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(atom!("S"; @"X"))
                .build()
                .unwrap(),
        ))
    }

    #[test]
    fn naive_flood_is_oblivious_inflationary_monotone() {
        let t = flood_transducer(
            &Schema::new().with("S", 1),
            FloodMode::Naive,
            Some(identity_output()),
        )
        .unwrap();
        let c = Classification::of(&t);
        assert!(c.oblivious, "Lemma 5(2): Id and All are not needed");
        assert!(c.inflationary, "no deletions are necessary");
        assert!(c.monotone, "all local queries are monotone UCQs");
    }

    #[test]
    fn dedup_flood_is_oblivious_inflationary_but_not_syntactically_monotone() {
        let t = flood_transducer(
            &Schema::new().with("S", 1),
            FloodMode::Dedup,
            Some(identity_output()),
        )
        .unwrap();
        let c = Classification::of(&t);
        assert!(c.oblivious);
        assert!(c.inflationary);
        assert!(!c.monotone); // the ¬Store dedup check
    }

    #[test]
    fn dedup_flood_disseminates_and_quiesces() {
        let net = Network::ring(5).unwrap();
        let input = input_s(&[1, 2, 3]);
        let t =
            flood_transducer(input.schema(), FloodMode::Dedup, Some(identity_output())).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(20_000),
        )
        .unwrap();
        assert!(out.quiescent);
        assert_eq!(out.output.len(), 3);
        // every node's store holds all facts
        for n in net.nodes() {
            let st = out.final_config.state(n).unwrap();
            assert_eq!(st.relation(&store_rel(&"S".into())).unwrap().len(), 3);
        }
    }

    #[test]
    fn naive_flood_reaches_output_under_budget() {
        let net = Network::line(3).unwrap();
        let input = input_s(&[4, 5]);
        let t =
            flood_transducer(input.schema(), FloodMode::Naive, Some(identity_output())).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let target = Relation::from_tuples(
            1,
            input
                .relation(&"S".into())
                .unwrap()
                .iter()
                .cloned()
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let budget = RunBudget::steps(50_000).until_output(target);
        let out = run(&net, &t, &p, &mut RandomScheduler::seeded(3), &budget).unwrap();
        assert!(
            out.reached_target,
            "output quiesces even though buffers do not"
        );
        assert!(!out.quiescent);
    }

    #[test]
    fn dedup_flood_consistent_across_schedulers_topologies_partitions() {
        let input = input_s(&[1, 2, 3, 4]);
        let t =
            flood_transducer(input.schema(), FloodMode::Dedup, Some(identity_output())).unwrap();
        let budget = RunBudget::steps(100_000);
        let mut outputs = Vec::new();
        for net in [
            Network::line(4).unwrap(),
            Network::star(4).unwrap(),
            Network::clique(4).unwrap(),
        ] {
            for p in [
                HorizontalPartition::replicate(&net, &input),
                HorizontalPartition::round_robin(&net, &input),
                HorizontalPartition::concentrate(&net, &input, net.nodes().next().unwrap())
                    .unwrap(),
            ] {
                let fifo = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
                let lifo = run(&net, &t, &p, &mut LifoRoundRobin::new(), &budget).unwrap();
                assert!(fifo.quiescent && lifo.quiescent);
                outputs.push(fifo.output.clone());
                outputs.push(lifo.output.clone());
            }
        }
        for o in &outputs {
            assert_eq!(o, &outputs[0], "flooding identity is consistent and NTI");
        }
    }

    #[test]
    fn replicated_partition_needs_no_communication() {
        // the coordination-freeness witness for flooding-based transducers
        let net = Network::ring(4).unwrap();
        let input = input_s(&[7, 8]);
        let t =
            flood_transducer(input.schema(), FloodMode::Naive, Some(identity_output())).unwrap();
        let p = HorizontalPartition::replicate(&net, &input);
        let probe = run_heartbeats_only(&net, &t, &p, 20).unwrap();
        assert_eq!(probe.output.len(), 2, "full output from heartbeats alone");
    }

    #[test]
    fn flood_without_output_has_empty_output_query() {
        let t = flood_transducer(&Schema::new().with("S", 1), FloodMode::Dedup, None).unwrap();
        assert_eq!(t.schema().output_arity(), 0);
        assert!(t.out_query().is_always_empty());
    }

    #[test]
    fn multi_relation_input_schemas_flood_independently() {
        let input = Schema::new().with("A", 1).with("E", 2);
        let t = flood_transducer(&input, FloodMode::Dedup, None).unwrap();
        assert!(t.schema().message().contains(&"Msg_A".into()));
        assert!(t.schema().message().contains(&"Msg_E".into()));
        assert_eq!(t.schema().message().arity(&"Msg_E".into()), Some(2));
        assert_eq!(t.schema().memory().arity(&"Store_E".into()), Some(2));
    }
}

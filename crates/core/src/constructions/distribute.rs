//! Theorem 6: distributing queries over transducer networks.
//!
//! * `distribute_any` — Theorem 6(1): collect the entire input with the
//!   multicast protocol of Lemma 5(1), then apply and output `Q` once
//!   `Ready`. Works for *every* query `Q` expressible in the local
//!   language (with [`rtx_query::NativeQuery`] as `L`, every computable
//!   query).
//! * `distribute_monotone` — Theorem 6(2): flood the input obliviously
//!   (Lemma 5(2)) and *continuously* re-apply `Q` to the part of the
//!   input received so far. Because `Q` is monotone, no incorrect tuple
//!   is ever output. With [`FloodMode::Naive`] and a monotone `Q`, the
//!   resulting transducer is oblivious, inflationary, and monotone.
//! * `distribute_while` — Theorem 6(3): the `distribute_any` recipe with
//!   a while-program as the query ("every node can act as if it is on
//!   its own"). The step-by-step heartbeat simulation of while-programs
//!   lives in [`crate::constructions::while_compiler`].

use crate::constructions::flood::{flood_transducer, FloodMode};
use crate::constructions::multicast::multicast_transducer;
use rtx_query::{EvalError, QueryRef, WhileProgram, WhileQuery};
use rtx_relational::Schema;
use rtx_transducer::Transducer;
use std::sync::Arc;

/// Theorem 6(1): distribute an arbitrary query.
///
/// `query` is phrased over the input relation names. The result is a
/// consistent, network-topology-independent transducer computing `query`
/// — at the price of heavy coordination (`Id`, `All`, acks, `Ready`).
pub fn distribute_any(query: QueryRef, input: &Schema) -> Result<Transducer, EvalError> {
    multicast_transducer(input, Some(query))
}

/// Theorem 6(2): distribute a monotone query without coordination.
///
/// The caller asserts monotonicity of `query` (the theorem's premise);
/// for syntactically-checkable languages use
/// [`rtx_query::Query::is_monotone_syntactic`] or audit empirically with
/// `analysis::monotonicity`.
pub fn distribute_monotone(
    query: QueryRef,
    input: &Schema,
    mode: FloodMode,
) -> Result<Transducer, EvalError> {
    flood_transducer(input, mode, Some(query))
}

/// Theorem 6(3): distribute a while-program query.
pub fn distribute_while(program: WhileProgram, input: &Schema) -> Result<Transducer, EvalError> {
    distribute_any(Arc::new(WhileQuery::new(program)), input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_net::{
        run, FifoRoundRobin, HorizontalPartition, LifoRoundRobin, Network, RandomScheduler,
        RunBudget,
    };
    use rtx_query::{
        atom, CqBuilder, DatalogQuery, FoQuery, Formula, NativeQuery, Query, Stmt, Term, UcqQuery,
    };
    use rtx_relational::{fact, Instance, RelName, Relation, Tuple, Value};
    use rtx_transducer::Classification;

    fn edges(pairs: &[(i64, i64)]) -> Instance {
        let sch = Schema::new().with("E", 2);
        let mut i = Instance::empty(sch);
        for &(a, b) in pairs {
            i.insert_fact(fact!("E", a, b)).unwrap();
        }
        i
    }

    fn tc_query() -> QueryRef {
        let p = rtx_query::parser::parse_program("t(X,Y) :- e2(X,Y). t(X,Z) :- t(X,Y), e2(Y,Z).")
            .unwrap();
        // rename: our input relation is E
        let p = rtx_query::parser::parse_program("T(X,Y) :- E(X,Y). T(X,Z) :- T(X,Y), E(Y,Z).")
            .unwrap_or(p);
        Arc::new(DatalogQuery::new(p, "T").unwrap())
    }

    fn expected_tc(input: &Instance) -> Relation {
        tc_query().eval(input).unwrap()
    }

    #[test]
    fn theorem_6_1_distributes_a_nonmonotone_query() {
        // Q = emptiness of S (nonmonotone): true iff S = ∅.
        // Include a second relation K so the active domain is never empty.
        let input_schema = Schema::new().with("S", 1).with("K", 1);
        let q: QueryRef = Arc::new(
            FoQuery::sentence(Formula::not(Formula::exists(
                ["X"],
                Formula::atom(atom!("S"; @"X")),
            )))
            .unwrap(),
        );
        let t = distribute_any(q, &input_schema).unwrap();

        let net = Network::line(3).unwrap();
        // S empty: query true
        let empty_s =
            Instance::from_facts(input_schema.clone(), vec![fact!("K", 1), fact!("K", 2)]).unwrap();
        let p = HorizontalPartition::round_robin(&net, &empty_s);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent);
        assert!(out.output.as_bool(), "S is empty: output true");

        // S nonempty: query false — and crucially, no node may ever output
        // true even transiently (outputs cannot be retracted).
        let with_s =
            Instance::from_facts(input_schema.clone(), vec![fact!("K", 1), fact!("S", 9)]).unwrap();
        let p = HorizontalPartition::round_robin(&net, &with_s);
        for seed in [1u64, 2, 3] {
            let out = run(
                &net,
                &t,
                &p,
                &mut RandomScheduler::seeded(seed),
                &RunBudget::steps(500_000),
            )
            .unwrap();
            assert!(out.quiescent);
            assert!(!out.output.as_bool(), "S nonempty: output must stay false");
        }
    }

    #[test]
    fn theorem_6_2_distributed_tc_is_oblivious_and_monotone() {
        let input = edges(&[(1, 2), (2, 3), (3, 4)]);
        let t = distribute_monotone(tc_query(), input.schema(), FloodMode::Naive).unwrap();
        let c = Classification::of(&t);
        assert!(c.oblivious);
        assert!(c.inflationary);
        assert!(
            c.monotone,
            "naive flood + monotone Datalog = monotone transducer"
        );

        let net = Network::ring(3).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(200_000).until_output(expected_tc(&input));
        let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        assert!(
            out.reached_target,
            "distributed TC converges to the true closure"
        );
    }

    #[test]
    fn theorem_6_2_dedup_variant_quiesces_with_same_answer() {
        let input = edges(&[(1, 2), (2, 3), (3, 1), (4, 1)]);
        let t = distribute_monotone(tc_query(), input.schema(), FloodMode::Dedup).unwrap();
        let net = Network::star(4).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut LifoRoundRobin::new(),
            &RunBudget::steps(200_000),
        )
        .unwrap();
        assert!(out.quiescent);
        assert_eq!(out.output, expected_tc(&input));
    }

    #[test]
    fn monotone_streaming_never_outputs_incorrect_tuples() {
        // run with a small budget; whatever was output so far must be a
        // subset of the true answer — "since Q is monotone, no incorrect
        // tuples are output".
        let input = edges(&[(1, 2), (2, 3), (3, 4), (4, 5)]);
        let truth = expected_tc(&input);
        let t = distribute_monotone(tc_query(), input.schema(), FloodMode::Dedup).unwrap();
        let net = Network::line(5).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        for steps in [5usize, 20, 60, 200] {
            let out = run(
                &net,
                &t,
                &p,
                &mut RandomScheduler::seeded(7),
                &RunBudget::steps(steps),
            )
            .unwrap();
            assert!(
                out.output.is_subset(&truth),
                "partial output ⊆ Q(I) at {steps} steps"
            );
        }
    }

    #[test]
    fn theorem_6_1_with_native_query_language() {
        // L computationally complete: compute |S| mod 3 == 0 (far outside FO)
        let input_schema = Schema::new().with("S", 1);
        let q: QueryRef = Arc::new(NativeQuery::new(
            "card-mod-3",
            0,
            [RelName::new("S")],
            |db| {
                let n = db.relation(&"S".into())?.len();
                Ok(if n % 3 == 0 {
                    Relation::nullary_true()
                } else {
                    Relation::nullary_false()
                })
            },
        ));
        let t = distribute_any(q, &input_schema).unwrap();
        let net = Network::clique(3).unwrap();
        let input = Instance::from_facts(
            input_schema,
            vec![fact!("S", 1), fact!("S", 2), fact!("S", 3)],
        )
        .unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent);
        assert!(out.output.as_bool(), "|S| = 3 ≡ 0 (mod 3)");
    }

    #[test]
    fn theorem_6_3_distributed_while_program() {
        // while-program computing TC, distributed via multicast
        let scratch = Schema::new().with("T", 2).with("Delta", 2).with("New", 2);
        let q = |r: rtx_query::CqRule| -> QueryRef { Arc::new(UcqQuery::single(r)) };
        let copy_e = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .build()
            .unwrap();
        let compose = CqBuilder::head(vec![Term::var("X"), Term::var("Z")])
            .when(atom!("T"; @"X", @"Y"))
            .when(atom!("E"; @"Y", @"Z"))
            .unless(atom!("T"; @"X", @"Z"))
            .build()
            .unwrap();
        let copy_new = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("New"; @"X", @"Y"))
            .build()
            .unwrap();
        let body = Stmt::Seq(vec![
            Stmt::Assign("T".into(), q(copy_e.clone())),
            Stmt::Assign("Delta".into(), q(copy_e)),
            Stmt::While(
                rtx_query::Guard::NonEmpty("Delta".into()),
                Box::new(Stmt::Seq(vec![
                    Stmt::Assign("New".into(), q(compose)),
                    Stmt::Accumulate("T".into(), q(copy_new.clone())),
                    Stmt::Assign("Delta".into(), q(copy_new)),
                ])),
            ),
        ]);
        let program = WhileProgram::new(scratch, body, "T").unwrap();
        let input = edges(&[(1, 2), (2, 3)]);
        let t = distribute_while(program, input.schema()).unwrap();
        let net = Network::line(2).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(500_000),
        )
        .unwrap();
        assert!(out.quiescent);
        let mut expected = Relation::empty(2);
        for (a, b) in [(1i64, 2i64), (2, 3), (1, 3)] {
            expected
                .insert(Tuple::new(vec![Value::int(a), Value::int(b)]))
                .unwrap();
        }
        assert_eq!(out.output, expected);
    }
}

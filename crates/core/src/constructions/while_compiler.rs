//! Lemma 5(3): while-programs as iterated heartbeats.
//!
//! "A while program can be simulated by iterated heartbeats using
//! well-known techniques." The compiler flattens a [`WhileProgram`] into
//! a straight-line instruction list with branches, then builds an
//! FO-transducer whose memory holds the program's scratch relations plus
//! one nullary *program counter* flag per instruction. Each heartbeat
//! executes exactly one instruction:
//!
//! * `R := Q` is the paper's assignment pattern (`Q_ins = Q`,
//!   `Q_del = R`), gated on the instruction's pc;
//! * branches move the pc according to an emptiness test;
//! * a final `Halt` raises a `WHalted` flag that gates the output query.
//!
//! All queries are FO-expressible (gates are nullary conjuncts, unions
//! are disjunctions), so this is an FO-transducer whenever the program's
//! assignment queries are FO/UCQ — giving the "while ⊆ single-node
//! FO-transducer" half of Lemma 5(3). The converse half (single-node
//! FO-transducer runs are while-computable) is exercised in tests by
//! comparing against direct [`rtx_query::WhileQuery`] evaluation.

use rtx_query::{
    Atom, CopyQuery, EvalError, FoQuery, Formula, GatedQuery, Guard, QueryRef, Stmt, UnionQuery,
    WhileProgram,
};
use rtx_relational::{RelName, Schema};
use rtx_transducer::{Transducer, TransducerBuilder};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A flattened while-program instruction.
#[derive(Clone, Debug)]
enum Instr {
    Assign {
        target: RelName,
        query: QueryRef,
    },
    Accumulate {
        target: RelName,
        query: QueryRef,
    },
    /// Test a relation for (non)emptiness and branch.
    Branch {
        rel: RelName,
        jump_if_nonempty: bool,
        on_jump: usize,
        on_fall: usize,
    },
    Jump(usize),
    Halt,
}

/// Flatten the statement tree into instructions ending in `Halt`.
fn compile(stmt: &Stmt, out: &mut Vec<Instr>) {
    match stmt {
        Stmt::Assign(r, q) => out.push(Instr::Assign {
            target: r.clone(),
            query: q.clone(),
        }),
        Stmt::Accumulate(r, q) => out.push(Instr::Accumulate {
            target: r.clone(),
            query: q.clone(),
        }),
        Stmt::Seq(ss) => {
            for s in ss {
                compile(s, out);
            }
        }
        Stmt::While(guard, body) => {
            let test = out.len();
            // placeholder; patched below
            out.push(Instr::Jump(usize::MAX));
            compile(body, out);
            out.push(Instr::Jump(test));
            let after = out.len();
            let (rel, jump_if_nonempty) = match guard {
                // loop while nonempty ⇒ exit (jump out) when empty
                Guard::NonEmpty(r) => (r.clone(), false),
                // loop while empty ⇒ exit when nonempty
                Guard::Empty(r) => (r.clone(), true),
            };
            out[test] = Instr::Branch {
                rel,
                jump_if_nonempty,
                on_jump: after,
                on_fall: test + 1,
            };
        }
    }
}

fn pc_rel(i: usize) -> RelName {
    RelName::new(format!("WPc{i}"))
}

fn halted_rel() -> RelName {
    RelName::new("WHalted")
}

fn started_rel() -> RelName {
    RelName::new("WStarted")
}

/// A nullary FO sentence `WPc_i() ∧ [¬]∃x̄ rel(x̄)`.
fn branch_sentence(
    pc: &RelName,
    rel: &RelName,
    arity: usize,
    want_nonempty: bool,
) -> Result<QueryRef, EvalError> {
    let vars: Vec<String> = (0..arity).map(|i| format!("B{i}")).collect();
    let atom = Atom::new(rel.clone(), vars.iter().map(rtx_query::Term::var).collect());
    let exists = if arity == 0 {
        Formula::Atom(atom)
    } else {
        Formula::exists(vars.iter().map(String::as_str), Formula::Atom(atom))
    };
    let test = if want_nonempty {
        exists
    } else {
        Formula::not(exists)
    };
    let f = Formula::and([Formula::Atom(Atom::new(pc.clone(), vec![])), test]);
    Ok(Arc::new(FoQuery::sentence(f)?))
}

/// Compile a while-program into a transducer that simulates it by
/// iterated heartbeats on a (single-node) network.
///
/// `input` declares the read-only input relations the program's queries
/// reference. The transducer has no message relations: on a single-node
/// network only heartbeat transitions exist anyway (paper, Section 3).
pub fn compile_while_to_transducer(
    program: &WhileProgram,
    input: &Schema,
) -> Result<Transducer, EvalError> {
    let mut instrs = Vec::new();
    compile(program.body(), &mut instrs);
    instrs.push(Instr::Halt);

    let scratch = program.scratch().clone();
    let lookup_arity = |r: &RelName| -> Result<usize, EvalError> {
        scratch.arity(r).or_else(|| input.arity(r)).ok_or_else(|| {
            EvalError::Rel(rtx_relational::RelError::UnknownRelation { rel: r.clone() })
        })
    };

    let mut b = TransducerBuilder::new("while-compiled").input_schema(input);
    for (r, k) in scratch.iter() {
        b = b.memory_relation(r.clone(), k);
    }
    for i in 0..instrs.len() {
        b = b.memory_relation(pc_rel(i), 0);
    }
    b = b
        .memory_relation(halted_rel(), 0)
        .memory_relation(started_rel(), 0);

    // Per-scratch-relation insertion/deletion parts, and pc successors.
    let mut ins_parts: BTreeMap<RelName, Vec<QueryRef>> = BTreeMap::new();
    let mut del_parts: BTreeMap<RelName, Vec<QueryRef>> = BTreeMap::new();
    let mut pc_ins: BTreeMap<usize, Vec<QueryRef>> = BTreeMap::new();
    let mut halted_parts: Vec<QueryRef> = Vec::new();

    let gate = |i: usize, q: QueryRef| -> QueryRef {
        Arc::new(GatedQuery::new(Arc::new(CopyQuery::new(pc_rel(i), 0)), q))
    };
    let pc_copy = |i: usize| -> QueryRef { Arc::new(CopyQuery::new(pc_rel(i), 0)) };

    for (i, instr) in instrs.iter().enumerate() {
        match instr {
            Instr::Assign { target, query } => {
                ins_parts
                    .entry(target.clone())
                    .or_default()
                    .push(gate(i, query.clone()));
                let arity = lookup_arity(target)?;
                del_parts
                    .entry(target.clone())
                    .or_default()
                    .push(gate(i, Arc::new(CopyQuery::new(target.clone(), arity))));
                pc_ins.entry(i + 1).or_default().push(pc_copy(i));
            }
            Instr::Accumulate { target, query } => {
                ins_parts
                    .entry(target.clone())
                    .or_default()
                    .push(gate(i, query.clone()));
                pc_ins.entry(i + 1).or_default().push(pc_copy(i));
            }
            Instr::Branch {
                rel,
                jump_if_nonempty,
                on_jump,
                on_fall,
            } => {
                let arity = lookup_arity(rel)?;
                pc_ins.entry(*on_jump).or_default().push(branch_sentence(
                    &pc_rel(i),
                    rel,
                    arity,
                    *jump_if_nonempty,
                )?);
                pc_ins.entry(*on_fall).or_default().push(branch_sentence(
                    &pc_rel(i),
                    rel,
                    arity,
                    !*jump_if_nonempty,
                )?);
            }
            Instr::Jump(t) => {
                pc_ins.entry(*t).or_default().push(pc_copy(i));
            }
            Instr::Halt => {
                halted_parts.push(pc_copy(i));
            }
        }
    }

    for (r, parts) in ins_parts {
        let arity = lookup_arity(&r)?;
        b = b.insert(r, Arc::new(UnionQuery::new(arity, parts)?));
    }
    for (r, parts) in del_parts {
        let arity = lookup_arity(&r)?;
        b = b.delete(r, Arc::new(UnionQuery::new(arity, parts)?));
    }

    // Program start: pc0 fires exactly once, on the first heartbeat.
    let not_started: QueryRef = Arc::new(FoQuery::sentence(Formula::not(Formula::Atom(
        Atom::new(started_rel(), vec![]),
    )))?);
    pc_ins.entry(0).or_default().push(not_started);
    b = b.insert(started_rel(), super::const_true());

    for (i, parts) in pc_ins {
        if i >= instrs.len() {
            continue; // successor of the final instruction is Halt itself
        }
        b = b.insert(pc_rel(i), Arc::new(UnionQuery::new(0, parts)?));
    }
    // Every pc clears itself after its step.
    for i in 0..instrs.len() {
        b = b.delete(pc_rel(i), pc_copy(i));
    }
    b = b.insert(halted_rel(), Arc::new(UnionQuery::new(0, halted_parts)?));

    // Output once halted.
    let out_arity = lookup_arity(program.output())?;
    let out = GatedQuery::new(
        Arc::new(CopyQuery::new(halted_rel(), 0)),
        Arc::new(CopyQuery::new(program.output().clone(), out_arity)),
    );
    b = b.output(Arc::new(out));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget};
    use rtx_query::{atom, CqBuilder, Query, Term, UcqQuery, WhileQuery};
    use rtx_relational::{fact, Instance};

    fn q(rule: rtx_query::CqRule) -> QueryRef {
        Arc::new(UcqQuery::single(rule))
    }

    /// The TC while-program from `rtx_query::while_lang`'s tests.
    fn tc_program() -> WhileProgram {
        let scratch = Schema::new().with("T", 2).with("Delta", 2).with("New", 2);
        let copy_e = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("E"; @"X", @"Y"))
            .build()
            .unwrap();
        let compose = CqBuilder::head(vec![Term::var("X"), Term::var("Z")])
            .when(atom!("T"; @"X", @"Y"))
            .when(atom!("E"; @"Y", @"Z"))
            .unless(atom!("T"; @"X", @"Z"))
            .build()
            .unwrap();
        let copy_new = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
            .when(atom!("New"; @"X", @"Y"))
            .build()
            .unwrap();
        let body = Stmt::Seq(vec![
            Stmt::Assign("T".into(), q(copy_e.clone())),
            Stmt::Assign("Delta".into(), q(copy_e)),
            Stmt::While(
                Guard::NonEmpty("Delta".into()),
                Box::new(Stmt::Seq(vec![
                    Stmt::Assign("New".into(), q(compose)),
                    Stmt::Accumulate("T".into(), q(copy_new.clone())),
                    Stmt::Assign("Delta".into(), q(copy_new)),
                ])),
            ),
        ]);
        WhileProgram::new(scratch, body, "T").unwrap()
    }

    fn edges(pairs: &[(i64, i64)]) -> Instance {
        let sch = Schema::new().with("E", 2);
        let mut i = Instance::empty(sch);
        for &(a, b) in pairs {
            i.insert_fact(fact!("E", a, b)).unwrap();
        }
        i
    }

    fn run_single_node(t: &Transducer, input: &Instance) -> rtx_net::RunOutcome {
        let net = Network::single();
        let p = HorizontalPartition::replicate(&net, input);
        run(
            &net,
            t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(100_000),
        )
        .unwrap()
    }

    #[test]
    fn compiled_tc_matches_direct_while_evaluation() {
        let program = tc_program();
        let input = edges(&[(1, 2), (2, 3), (3, 4)]);
        let direct = WhileQuery::new(program.clone()).eval(&input).unwrap();
        let t = compile_while_to_transducer(&program, input.schema()).unwrap();
        let out = run_single_node(&t, &input);
        assert!(out.quiescent, "halting program quiesces on one node");
        assert_eq!(out.output, direct);
        assert_eq!(out.deliveries, 0, "single node: only heartbeats");
    }

    #[test]
    fn compiled_tc_on_cycle_input() {
        let program = tc_program();
        let input = edges(&[(1, 2), (2, 1), (2, 3)]);
        let direct = WhileQuery::new(program.clone()).eval(&input).unwrap();
        let t = compile_while_to_transducer(&program, input.schema()).unwrap();
        let out = run_single_node(&t, &input);
        assert_eq!(out.output, direct);
    }

    #[test]
    fn compiled_empty_input_halts_immediately() {
        let program = tc_program();
        let input = edges(&[]);
        let t = compile_while_to_transducer(&program, input.schema()).unwrap();
        let out = run_single_node(&t, &input);
        assert!(out.quiescent);
        assert!(out.output.is_empty());
    }

    #[test]
    fn at_most_one_pc_active_along_the_run() {
        let program = tc_program();
        let input = edges(&[(1, 2), (2, 3)]);
        let t = compile_while_to_transducer(&program, input.schema()).unwrap();
        let net = Network::single();
        let p = HorizontalPartition::replicate(&net, &input);
        let mut cfg = rtx_net::Configuration::initial(&net, &t, &p).unwrap();
        let n0 = rtx_relational::Value::sym("n0");
        for _ in 0..200 {
            let active: usize = (0..64)
                .filter_map(|i| {
                    let r = pc_rel(i);
                    cfg.state(&n0)
                        .and_then(|st| st.relation(&r).ok())
                        .map(|rel| rel.as_bool())
                })
                .filter(|b| *b)
                .count();
            assert!(active <= 1, "program counter must be unique");
            cfg.apply_heartbeat(&net, &t, &n0).unwrap();
        }
    }

    #[test]
    fn nested_while_loops_compile_and_run() {
        // for-each-like nesting: outer drains Delta1, inner drains Delta2.
        // Program: A := S; Out := ∅;
        // while A nonempty { B := A; while B nonempty { Out += B; B := ∅ }; A := ∅ }
        let scratch = Schema::new().with("A", 1).with("B", 1).with("Out", 1);
        let copy_s = CqBuilder::head(vec![Term::var("X")])
            .when(atom!("S"; @"X"))
            .build()
            .unwrap();
        let copy_a = CqBuilder::head(vec![Term::var("X")])
            .when(atom!("A"; @"X"))
            .build()
            .unwrap();
        let copy_b = CqBuilder::head(vec![Term::var("X")])
            .when(atom!("B"; @"X"))
            .build()
            .unwrap();
        let empty: QueryRef = Arc::new(rtx_query::EmptyQuery::new(1));
        let body = Stmt::Seq(vec![
            Stmt::Assign("A".into(), q(copy_s)),
            Stmt::While(
                Guard::NonEmpty("A".into()),
                Box::new(Stmt::Seq(vec![
                    Stmt::Assign("B".into(), q(copy_a)),
                    Stmt::While(
                        Guard::NonEmpty("B".into()),
                        Box::new(Stmt::Seq(vec![
                            Stmt::Accumulate("Out".into(), q(copy_b)),
                            Stmt::Assign("B".into(), empty.clone()),
                        ])),
                    ),
                    Stmt::Assign("A".into(), empty.clone()),
                ])),
            ),
        ]);
        let program = WhileProgram::new(scratch, body, "Out").unwrap();
        let input = Instance::from_facts(
            Schema::new().with("S", 1),
            vec![fact!("S", 1), fact!("S", 2)],
        )
        .unwrap();
        let direct = WhileQuery::new(program.clone()).eval(&input).unwrap();
        let t = compile_while_to_transducer(&program, input.schema()).unwrap();
        let out = run_single_node(&t, &input);
        assert!(out.quiescent);
        assert_eq!(out.output, direct);
        assert_eq!(out.output.len(), 2);
    }

    #[test]
    fn unknown_relation_in_guard_rejected() {
        let scratch = Schema::new().with("T", 1);
        let body = Stmt::While(
            Guard::NonEmpty("Missing".into()),
            Box::new(Stmt::Seq(vec![])),
        );
        let program = WhileProgram::new(scratch, body, "T").unwrap();
        assert!(compile_while_to_transducer(&program, &Schema::new()).is_err());
    }
}

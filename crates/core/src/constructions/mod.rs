//! The paper's constructions, as executable transducer factories.
//!
//! | Module | Paper item |
//! |--------|-----------|
//! | [`flood`] | Lemma 5(2): oblivious dissemination |
//! | [`multicast`] | Lemma 5(1): ack-based multicast with `Ready` |
//! | [`distribute`] | Theorem 6(1)–(4): distributing arbitrary / monotone / while queries |
//! | [`datalog_dist`] | Theorem 6(5): Datalog ⟷ oblivious inflationary transducers |
//! | [`while_compiler`] | Lemma 5(3): while-programs as iterated heartbeats |
//! | [`linear_order`] | Corollary 8: a linear order (and PSPACE queries) on ≥ 2 nodes |

pub mod datalog_dist;
pub mod distribute;
pub mod flood;
pub mod linear_order;
pub mod multicast;
pub mod while_compiler;

use rtx_query::{CqBuilder, EvalError, QueryRef, Term, UcqQuery};
use rtx_relational::{RelName, Schema};
use std::sync::Arc;

/// Name of the flooding message relation carrying facts of input `R`.
pub fn msg_rel(r: &RelName) -> RelName {
    RelName::new(format!("Msg_{r}"))
}

/// Name of the memory relation storing disseminated facts of input `R`.
pub fn store_rel(r: &RelName) -> RelName {
    RelName::new(format!("Store_{r}"))
}

/// Name of the origin-tagged multicast message relation for input `R`.
pub fn cast_rel(r: &RelName) -> RelName {
    RelName::new(format!("Cast_{r}"))
}

/// Name of the acknowledgement message relation for input `R`.
pub fn ack_rel(r: &RelName) -> RelName {
    RelName::new(format!("Ack_{r}"))
}

/// Memory relation recording seen casts of input `R`.
pub fn seen_cast_rel(r: &RelName) -> RelName {
    RelName::new(format!("SeenCast_{r}"))
}

/// Memory relation recording seen acknowledgements of input `R`.
pub fn seen_ack_rel(r: &RelName) -> RelName {
    RelName::new(format!("SeenAck_{r}"))
}

/// The `Done(owner, target)` message relation of the multicast protocol.
pub fn done_rel() -> RelName {
    RelName::new("Done")
}

/// Memory relation recording seen `Done` facts.
pub fn seen_done_rel() -> RelName {
    RelName::new("SeenDone")
}

/// The nullary `Ready` flag of Lemma 5(1).
pub fn ready_rel() -> RelName {
    RelName::new("Ready")
}

/// Fresh variable terms `X0 … X{k-1}`.
pub(crate) fn arg_vars(k: usize) -> Vec<Term> {
    (0..k).map(|i| Term::var(format!("X{i}"))).collect()
}

/// A nullary constant-true query (`← ⊤` as a UCQ).
pub(crate) fn const_true() -> QueryRef {
    Arc::new(UcqQuery::single(
        CqBuilder::head(vec![])
            .build()
            .expect("variable-free rule is safe"),
    ))
}

/// The view mapping each input relation `R` to "everything this node
/// knows about `R`": its local fragment union the flooded store.
///
/// Wrapping a query `Q` over the input schema in this view is the
/// "continuously apply Q to the part of the input already received" step
/// of Theorem 6(2).
pub fn known_input_views(input: &Schema) -> Result<Vec<(RelName, QueryRef)>, EvalError> {
    let mut views: Vec<(RelName, QueryRef)> = Vec::new();
    for (r, k) in input.iter() {
        let vars = arg_vars(k);
        let local = CqBuilder::head(vars.clone())
            .when(rtx_query::Atom::new(r.clone(), vars.clone()))
            .build()?;
        let stored = CqBuilder::head(vars.clone())
            .when(rtx_query::Atom::new(store_rel(r), vars.clone()))
            .build()?;
        views.push((r.clone(), Arc::new(UcqQuery::new(k, vec![local, stored])?)));
    }
    Ok(views)
}

/// The view mapping each input relation `R` to the facts stored by the
/// multicast protocol (projecting away the origin tag).
pub fn multicast_input_views(input: &Schema) -> Result<Vec<(RelName, QueryRef)>, EvalError> {
    let mut views: Vec<(RelName, QueryRef)> = Vec::new();
    for (r, k) in input.iter() {
        let vars = arg_vars(k);
        let mut atom_args = vec![Term::var("Src")];
        atom_args.extend(vars.clone());
        let rule = CqBuilder::head(vars)
            .when(rtx_query::Atom::new(seen_cast_rel(r), atom_args))
            .build()?;
        views.push((r.clone(), Arc::new(UcqQuery::single(rule))));
    }
    Ok(views)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::Query;
    use rtx_relational::{fact, Instance};

    #[test]
    fn naming_helpers_are_stable() {
        let r: RelName = "E".into();
        assert_eq!(msg_rel(&r).as_str(), "Msg_E");
        assert_eq!(store_rel(&r).as_str(), "Store_E");
        assert_eq!(cast_rel(&r).as_str(), "Cast_E");
        assert_eq!(ack_rel(&r).as_str(), "Ack_E");
        assert_eq!(seen_cast_rel(&r).as_str(), "SeenCast_E");
        assert_eq!(seen_ack_rel(&r).as_str(), "SeenAck_E");
    }

    #[test]
    fn const_true_is_true() {
        let q = const_true();
        let db = Instance::empty(Schema::new());
        assert!(q.eval(&db).unwrap().as_bool());
        assert!(q.is_monotone_syntactic());
    }

    #[test]
    fn known_views_union_local_and_store() {
        let input = Schema::new().with("S", 1);
        let views = known_input_views(&input).unwrap();
        assert_eq!(views.len(), 1);
        let sch = Schema::new().with("S", 1).with("Store_S", 1);
        let db = Instance::from_facts(sch, vec![fact!("S", 1), fact!("Store_S", 2)]).unwrap();
        let rel = views[0].1.eval(&db).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn multicast_views_project_src_tag() {
        let input = Schema::new().with("E", 2);
        let views = multicast_input_views(&input).unwrap();
        let sch = Schema::new().with("SeenCast_E", 3);
        let db = Instance::from_facts(
            sch,
            vec![
                fact!("SeenCast_E", "n0", 1, 2),
                fact!("SeenCast_E", "n1", 1, 2),
            ],
        )
        .unwrap();
        let rel = views[0].1.eval(&db).unwrap();
        assert_eq!(rel.len(), 1); // deduplicated projection
    }
}

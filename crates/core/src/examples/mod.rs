//! The paper's worked examples, as executable transducers.
//!
//! | Function | Paper item | Demonstrates |
//! |----------|-----------|--------------|
//! | [`ex2_first_element`] | Example 2 | an **inconsistent** network: output depends on delivery order |
//! | [`ex3_equality_selection`] | Example 3 | a trivially consistent network (no messages) |
//! | [`ex3_transitive_closure`] | Example 3 | the classic distributed TC, consistent by monotonicity |
//! | [`ex4_echo`] | Example 4 | consistent per topology but **not** network-topology independent |
//! | [`ex9_ab_nonempty`] | Section 5 | coordination-free, yet needs communication on full-replication partitions |
//! | [`ex10_emptiness`] | Example 10 | a nonmonotone query requiring coordination (`Id` + `All`) |
//! | [`ex15_ping`] | Example 15 | no `Id`, network-topology independent, but **not** coordination-free |

use crate::constructions::const_true;
use rtx_query::{Atom, CqBuilder, EvalError, FoQuery, Formula, Term, UcqQuery, UnionQuery};
use rtx_relational::RelName;
use rtx_transducer::{Transducer, TransducerBuilder, SYS_ALL, SYS_ID};
use std::sync::Arc;

fn x() -> Term {
    Term::var("X")
}

/// The FO sentence "I am alone in the network":
/// `∀u ∀v (All(u) ∧ All(v) → u = v)`.
fn alone_sentence() -> Formula {
    Formula::forall(
        ["U", "V"],
        Formula::or([
            Formula::not(Formula::Atom(Atom::new(
                RelName::new(SYS_ALL),
                vec![Term::var("U")],
            ))),
            Formula::not(Formula::Atom(Atom::new(
                RelName::new(SYS_ALL),
                vec![Term::var("V")],
            ))),
            Formula::eq(Term::var("U"), Term::var("V")),
        ]),
    )
}

/// **Example 2** — the inconsistent network.
///
/// Input: a set `S`. Each node sends its part of `S` to its neighbors
/// (once), and outputs the **first** element it receives, never another.
/// With ≥ 2 nodes and ≥ 2 elements, different delivery orders produce
/// different outputs: the network is not consistent.
pub fn ex2_first_element() -> Result<Transducer, EvalError> {
    let sent: RelName = "SentS".into();
    let got: RelName = "GotFirst".into();
    let b = TransducerBuilder::new("ex2-first-element")
        .input_relation("S", 1)
        .message_relation("M", 1)
        .memory_relation(sent.clone(), 0)
        .memory_relation(got.clone(), 0)
        .output_arity(1)
        // send own part once
        .send(
            "M",
            Arc::new(UcqQuery::single(
                CqBuilder::head(vec![x()])
                    .when(Atom::new("S", vec![x()]))
                    .unless(Atom::new(sent.clone(), vec![]))
                    .build()?,
            )),
        )
        .insert(sent, const_true())
        // output the delivered element iff nothing was output before
        .output(Arc::new(UcqQuery::single(
            CqBuilder::head(vec![x()])
                .when(Atom::new("M", vec![x()]))
                .unless(Atom::new(got.clone(), vec![]))
                .build()?,
        )))
        // … and latch the flag on first delivery
        .insert(
            got,
            Arc::new(UcqQuery::single(
                CqBuilder::head(vec![])
                    .when(Atom::new("M", vec![x()]))
                    .build()?,
            )),
        );
    b.build()
}

/// **Example 3 (first part)** — the equality selection `σ_{$1=$2}(S)`.
///
/// Each node outputs the identical pairs from its own fragment; no
/// messages are sent. Trivially consistent.
pub fn ex3_equality_selection() -> Result<Transducer, EvalError> {
    let xy = vec![Term::var("X"), Term::var("X")];
    TransducerBuilder::new("ex3-equality-selection")
        .input_relation("S", 2)
        .output(Arc::new(UcqQuery::single(
            CqBuilder::head(xy.clone())
                .when(Atom::new("S", xy))
                .build()?,
        )))
        .build()
}

/// **Example 3 (second part)** — naive distributed transitive closure.
///
/// Verbatim from the paper: each node floods its part of the input and
/// forwards everything it receives; received tuples accumulate in `R`;
/// memory `T` repeatedly receives `S ∪ R ∪ T ∪ (T ∘ T)`; `T` is output.
/// Consistent thanks to the monotonicity of transitive closure.
///
/// `dedup` selects forward-once flooding (terminating runs) instead of
/// the paper's unconditional forwarding.
pub fn ex3_transitive_closure(dedup: bool) -> Result<Transducer, EvalError> {
    let xv = Term::var("X");
    let yv = Term::var("Y");
    let zv = Term::var("Z");
    let pair = vec![xv.clone(), yv.clone()];
    let s_atom = Atom::new("S", pair.clone());
    let m_atom = Atom::new("M", pair.clone());
    let r_atom = Atom::new("R", pair.clone());

    let send_rules = if dedup {
        vec![
            CqBuilder::head(pair.clone())
                .when(s_atom.clone())
                .unless(r_atom.clone())
                .build()?,
            CqBuilder::head(pair.clone())
                .when(m_atom.clone())
                .unless(r_atom.clone())
                .build()?,
        ]
    } else {
        vec![
            CqBuilder::head(pair.clone()).when(s_atom.clone()).build()?,
            CqBuilder::head(pair.clone()).when(m_atom.clone()).build()?,
        ]
    };

    // ins R := S ∪ M   (the "accumulate received tuples" memory; seeding
    // it with S as well makes the dedup send check symmetric)
    let ins_r = vec![
        CqBuilder::head(pair.clone()).when(s_atom.clone()).build()?,
        CqBuilder::head(pair.clone()).when(m_atom.clone()).build()?,
    ];

    // ins T := S ∪ R ∪ T ∪ (T ∘ T)
    let ins_t = vec![
        CqBuilder::head(pair.clone()).when(s_atom).build()?,
        CqBuilder::head(pair.clone()).when(r_atom).build()?,
        CqBuilder::head(pair.clone())
            .when(Atom::new("T", pair.clone()))
            .build()?,
        CqBuilder::head(vec![xv.clone(), zv.clone()])
            .when(Atom::new("T", vec![xv.clone(), yv.clone()]))
            .when(Atom::new("T", vec![yv.clone(), zv.clone()]))
            .build()?,
    ];

    TransducerBuilder::new(if dedup {
        "ex3-tc-dedup"
    } else {
        "ex3-tc-naive"
    })
    .input_relation("S", 2)
    .message_relation("M", 2)
    .memory_relation("R", 2)
    .memory_relation("T", 2)
    .send("M", Arc::new(UcqQuery::new(2, send_rules)?))
    .insert("R", Arc::new(UcqQuery::new(2, ins_r)?))
    .insert("T", Arc::new(UcqQuery::new(2, ins_t)?))
    .output(Arc::new(UcqQuery::single(
        CqBuilder::head(pair.clone())
            .when(Atom::new("T", pair))
            .build()?,
    )))
    .build()
}

/// **Example 4** — the echo transducer.
///
/// Each node sends its input (and forwards received elements, once) and
/// outputs **only elements it receives**. On any network with ≥ 2 nodes
/// it computes the identity on `S`; on the single-node network it
/// computes the empty query: consistent for each topology, but not
/// network-topology independent.
pub fn ex4_echo() -> Result<Transducer, EvalError> {
    let seen: RelName = "Seen".into();
    TransducerBuilder::new("ex4-echo")
        .input_relation("S", 1)
        .message_relation("M", 1)
        .memory_relation(seen.clone(), 1)
        .send(
            "M",
            Arc::new(UcqQuery::new(
                1,
                vec![
                    CqBuilder::head(vec![x()])
                        .when(Atom::new("S", vec![x()]))
                        .unless(Atom::new(seen.clone(), vec![x()]))
                        .build()?,
                    CqBuilder::head(vec![x()])
                        .when(Atom::new("M", vec![x()]))
                        .unless(Atom::new(seen.clone(), vec![x()]))
                        .build()?,
                ],
            )?),
        )
        .insert(
            seen.clone(),
            Arc::new(UcqQuery::new(
                1,
                vec![
                    CqBuilder::head(vec![x()])
                        .when(Atom::new("S", vec![x()]))
                        .build()?,
                    CqBuilder::head(vec![x()])
                        .when(Atom::new("M", vec![x()]))
                        .build()?,
                ],
            )?),
        )
        // output = received elements only
        .output(Arc::new(UcqQuery::single(
            CqBuilder::head(vec![x()])
                .when(Atom::new("M", vec![x()]))
                .build()?,
        )))
        .build()
}

/// **Section 5's contrived example** — "is at least one of `A`, `B`
/// nonempty?", coordination-free yet needing communication when every
/// node holds the full input.
///
/// Verbatim: on a one-node network answer directly. Otherwise, if the
/// local fragments of `A` *and* `B` are both nonempty, send `true` and
/// output nothing; a node receiving `true` outputs it. If locally `A` or
/// `B` is empty, output the answer directly.
pub fn ex9_ab_nonempty() -> Result<Transducer, EvalError> {
    let some_a = Formula::exists(["X"], Formula::Atom(Atom::new("A", vec![x()])));
    let some_b = Formula::exists(["X"], Formula::Atom(Atom::new("B", vec![x()])));
    let answer = Formula::or([some_a.clone(), some_b.clone()]);
    let alone = alone_sentence();

    // snd True() — once, when not alone and both fragments nonempty
    let snd = FoQuery::sentence(Formula::and([
        Formula::not(alone.clone()),
        some_a.clone(),
        some_b.clone(),
        Formula::not(Formula::Atom(Atom::new("SentTrue", vec![]))),
    ]))?;

    // out := (alone ∧ answer) ∨ (¬alone ∧ (A empty ∨ B empty) ∧ answer) ∨ True_rcv
    let out = FoQuery::sentence(Formula::or([
        Formula::and([alone.clone(), answer.clone()]),
        Formula::and([
            Formula::not(alone),
            Formula::or([Formula::not(some_a), Formula::not(some_b)]),
            answer,
        ]),
        Formula::Atom(Atom::new("MTrue", vec![])),
    ]))?;

    TransducerBuilder::new("ex9-ab-nonempty")
        .input_relation("A", 1)
        .input_relation("B", 1)
        .message_relation("MTrue", 0)
        .memory_relation("SentTrue", 0)
        .send("MTrue", Arc::new(snd))
        .insert(
            "SentTrue",
            Arc::new(UcqQuery::single(
                CqBuilder::head(vec![])
                    .when(Atom::new("MTrue", vec![]))
                    .build()?,
            )),
        )
        .output(Arc::new(out))
        .build()
}

/// **Example 10** — the emptiness query, the canonical coordination.
///
/// Query: is `S` empty (globally)? Every node floods its identifier
/// *provided its local `S` fragment is empty*; a node that has seen the
/// identifiers of **all** nodes (checked against `All`) knows `S = ∅`
/// everywhere and outputs `true`.
pub fn ex10_emptiness() -> Result<Transducer, EvalError> {
    let local_empty = Formula::not(Formula::exists(
        ["Y"],
        Formula::Atom(Atom::new("S", vec![Term::var("Y")])),
    ));
    // snd NId(x) := (Id(x) ∧ S=∅ ∧ ¬SeenId(x)) ∪ forward
    let snd_own = FoQuery::new(
        ["X"],
        Formula::and([
            Formula::Atom(Atom::new(RelName::new(SYS_ID), vec![x()])),
            local_empty.clone(),
            Formula::not(Formula::Atom(Atom::new("SeenId", vec![x()]))),
        ]),
    )?;
    let snd_fwd = UcqQuery::single(
        CqBuilder::head(vec![x()])
            .when(Atom::new("NId", vec![x()]))
            .unless(Atom::new("SeenId", vec![x()]))
            .build()?,
    );
    let ins_own = FoQuery::new(
        ["X"],
        Formula::and([
            Formula::Atom(Atom::new(RelName::new(SYS_ID), vec![x()])),
            local_empty,
        ]),
    )?;
    let ins_fwd = UcqQuery::single(
        CqBuilder::head(vec![x()])
            .when(Atom::new("NId", vec![x()]))
            .build()?,
    );
    // out := ∀v (All(v) → SeenId(v))
    let out = FoQuery::sentence(Formula::forall(
        ["V"],
        Formula::or([
            Formula::not(Formula::Atom(Atom::new(
                RelName::new(SYS_ALL),
                vec![Term::var("V")],
            ))),
            Formula::Atom(Atom::new("SeenId", vec![Term::var("V")])),
        ]),
    ))?;

    TransducerBuilder::new("ex10-emptiness")
        .input_relation("S", 1)
        .message_relation("NId", 1)
        .memory_relation("SeenId", 1)
        .send(
            "NId",
            Arc::new(UnionQuery::new(
                1,
                vec![Arc::new(snd_own), Arc::new(snd_fwd)],
            )?),
        )
        .insert(
            "SeenId",
            Arc::new(UnionQuery::new(
                1,
                vec![Arc::new(ins_own), Arc::new(ins_fwd)],
            )?),
        )
        .output(Arc::new(out))
        .build()
}

/// **Example 15** — the no-`Id` ping transducer.
///
/// Computes the identity query on `S`, is network-topology independent,
/// does **not** use `Id` — but is not coordination-free: on a multi-node
/// network, every run needs a ping delivery before any output, whatever
/// the horizontal partition.
pub fn ex15_ping() -> Result<Transducer, EvalError> {
    let alone = alone_sentence();
    // snd Ping() — once, when not alone
    let snd = FoQuery::sentence(Formula::and([
        Formula::not(alone.clone()),
        Formula::not(Formula::Atom(Atom::new("SentPing", vec![]))),
    ]))?;
    // out := (alone ∧ S(x)) ∨ (Ping_rcv ∧ S(x))
    let out = FoQuery::new(
        ["X"],
        Formula::and([
            Formula::Atom(Atom::new("S", vec![x()])),
            Formula::or([alone, Formula::Atom(Atom::new("Ping", vec![]))]),
        ]),
    )?;
    TransducerBuilder::new("ex15-ping")
        .input_relation("S", 1)
        .message_relation("Ping", 0)
        .memory_relation("SentPing", 0)
        .send("Ping", Arc::new(snd))
        .insert("SentPing", const_true())
        .output(Arc::new(out))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_net::{run, FifoRoundRobin, HorizontalPartition, LifoRoundRobin, Network, RunBudget};
    use rtx_relational::Schema;
    use rtx_relational::{fact, tuple, Instance, Relation, Value};
    use rtx_transducer::Classification;

    fn input_s1(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn budget() -> RunBudget {
        RunBudget::steps(200_000)
    }

    #[test]
    fn ex2_is_inconsistent_under_different_schedulers() {
        let t = ex2_first_element().unwrap();
        let net = Network::line(2).unwrap();
        let input = input_s1(&[1, 2]);
        // concentrate both elements at n0 so n1's first delivery is
        // order-dependent
        let p = HorizontalPartition::concentrate(&net, &input, &Value::sym("n0")).unwrap();
        let fifo = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget()).unwrap();
        let lifo = run(&net, &t, &p, &mut LifoRoundRobin::new(), &budget()).unwrap();
        assert!(fifo.quiescent && lifo.quiescent);
        assert_ne!(
            fifo.output, lifo.output,
            "Example 2: delivery order changes the output — inconsistent"
        );
    }

    #[test]
    fn ex2_single_node_is_trivially_consistent() {
        // "if the network consists of a single node … there is only one
        // possible run"
        let t = ex2_first_element().unwrap();
        let net = Network::single();
        let input = input_s1(&[1, 2]);
        let p = HorizontalPartition::replicate(&net, &input);
        let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget()).unwrap();
        assert!(out.quiescent);
        assert!(out.output.is_empty(), "no deliveries ⇒ no output");
    }

    #[test]
    fn ex3_selection_is_consistent_and_messageless() {
        let t = ex3_equality_selection().unwrap();
        assert!(t.schema().message().is_empty());
        let sch = Schema::new().with("S", 2);
        let input = Instance::from_facts(
            sch,
            vec![fact!("S", 1, 1), fact!("S", 1, 2), fact!("S", 3, 3)],
        )
        .unwrap();
        for net in [Network::single(), Network::line(3).unwrap()] {
            let p = HorizontalPartition::round_robin(&net, &input);
            let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget()).unwrap();
            assert!(out.quiescent);
            assert_eq!(out.output.len(), 2);
            assert!(out.output.contains(&tuple![1, 1]));
            assert!(out.output.contains(&tuple![3, 3]));
        }
    }

    #[test]
    fn ex3_tc_computes_closure_distributedly() {
        let t = ex3_transitive_closure(true).unwrap();
        let sch = Schema::new().with("S", 2);
        let input = Instance::from_facts(
            sch,
            vec![fact!("S", 1, 2), fact!("S", 2, 3), fact!("S", 3, 4)],
        )
        .unwrap();
        let net = Network::ring(3).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget()).unwrap();
        assert!(out.quiescent);
        assert_eq!(out.output.len(), 6);
        assert!(out.output.contains(&tuple![1, 4]));
        // oblivious: no Id/All anywhere
        assert!(Classification::of(&t).oblivious);
    }

    #[test]
    fn ex3_tc_naive_variant_is_fully_monotone() {
        let t = ex3_transitive_closure(false).unwrap();
        let c = Classification::of(&t);
        assert!(c.oblivious && c.inflationary && c.monotone);
    }

    #[test]
    fn ex4_echo_identity_on_two_nodes_empty_on_one() {
        let t = ex4_echo().unwrap();
        let input = input_s1(&[5, 6]);
        // ≥ 2 nodes: identity
        let net2 = Network::line(2).unwrap();
        let p2 = HorizontalPartition::round_robin(&net2, &input);
        let out2 = run(&net2, &t, &p2, &mut FifoRoundRobin::new(), &budget()).unwrap();
        assert!(out2.quiescent);
        assert_eq!(out2.output.len(), 2, "echo computes identity on ≥2 nodes");
        // 1 node: empty query
        let net1 = Network::single();
        let p1 = HorizontalPartition::replicate(&net1, &input);
        let out1 = run(&net1, &t, &p1, &mut FifoRoundRobin::new(), &budget()).unwrap();
        assert!(out1.quiescent);
        assert!(out1.output.is_empty(), "echo outputs nothing on one node");
        // hence: not network-topology independent (different queries!)
        assert_ne!(out1.output, out2.output);
    }

    #[test]
    fn ex9_answers_correctly_on_various_partitions() {
        let t = ex9_ab_nonempty().unwrap();
        let sch = Schema::new().with("A", 1).with("B", 1);
        let both = Instance::from_facts(sch.clone(), vec![fact!("A", 1), fact!("B", 2)]).unwrap();
        let neither = Instance::empty(sch.clone());
        let only_a = Instance::from_facts(sch.clone(), vec![fact!("A", 7)]).unwrap();
        let net = Network::line(2).unwrap();
        for (input, expected) in [(&both, true), (&neither, false), (&only_a, true)] {
            for p in [
                HorizontalPartition::round_robin(&net, input),
                HorizontalPartition::replicate(&net, input),
            ] {
                let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget()).unwrap();
                assert!(out.quiescent);
                assert_eq!(out.output.as_bool(), expected);
            }
        }
        // single-node: direct answer
        let net1 = Network::single();
        let p = HorizontalPartition::replicate(&net1, &both);
        let out = run(&net1, &t, &p, &mut FifoRoundRobin::new(), &budget()).unwrap();
        assert!(out.output.as_bool());
    }

    #[test]
    fn ex9_needs_communication_when_fully_replicated() {
        // the paper's point: with A and B both nonempty at every node, a
        // heartbeat-only run cannot produce the output
        let t = ex9_ab_nonempty().unwrap();
        let sch = Schema::new().with("A", 1).with("B", 1);
        let both = Instance::from_facts(sch, vec![fact!("A", 1), fact!("B", 2)]).unwrap();
        let net = Network::line(2).unwrap();
        let p = HorizontalPartition::replicate(&net, &both);
        let probe = rtx_net::run_heartbeats_only(&net, &t, &p, 30).unwrap();
        assert!(
            probe.output.is_empty(),
            "no output without communication here"
        );
        // …but with a split partition, heartbeats alone suffice
        let frags: std::collections::BTreeMap<_, _> = [
            (
                Value::sym("n0"),
                Instance::from_facts(both.schema().clone(), vec![fact!("A", 1)]).unwrap(),
            ),
            (
                Value::sym("n1"),
                Instance::from_facts(both.schema().clone(), vec![fact!("B", 2)]).unwrap(),
            ),
        ]
        .into_iter()
        .collect();
        let split = HorizontalPartition::new(&net, &both, frags).unwrap();
        let probe2 = rtx_net::run_heartbeats_only(&net, &t, &split, 30).unwrap();
        assert!(
            probe2.output.as_bool(),
            "the right partition needs no communication"
        );
    }

    #[test]
    fn ex10_emptiness_true_only_when_globally_empty() {
        let t = ex10_emptiness().unwrap();
        let net = Network::ring(3).unwrap();
        let empty = input_s1(&[]);
        let p = HorizontalPartition::round_robin(&net, &empty);
        let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget()).unwrap();
        assert!(out.quiescent);
        assert!(
            out.output.as_bool(),
            "S = ∅ certified by full id collection"
        );

        let nonempty = input_s1(&[3]);
        let p = HorizontalPartition::round_robin(&net, &nonempty);
        let out = run(&net, &t, &p, &mut LifoRoundRobin::new(), &budget()).unwrap();
        assert!(out.quiescent);
        assert!(
            !out.output.as_bool(),
            "one S fact anywhere blocks the certificate"
        );
    }

    #[test]
    fn ex10_uses_both_system_relations() {
        let t = ex10_emptiness().unwrap();
        let c = Classification::of(&t);
        assert!(c.system_usage.uses_id);
        assert!(c.system_usage.uses_all);
        assert!(!c.oblivious);
    }

    #[test]
    fn ex15_identity_on_any_topology() {
        let t = ex15_ping().unwrap();
        let input = input_s1(&[1, 2, 3]);
        for net in [
            Network::single(),
            Network::line(2).unwrap(),
            Network::ring(4).unwrap(),
        ] {
            let p = HorizontalPartition::round_robin(&net, &input);
            let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget()).unwrap();
            assert!(out.quiescent);
            assert_eq!(out.output.len(), 3, "identity on {} nodes", net.len());
        }
    }

    #[test]
    fn ex15_uses_all_but_not_id() {
        let t = ex15_ping().unwrap();
        let c = Classification::of(&t);
        assert!(!c.system_usage.uses_id, "Example 15 does not use Id");
        assert!(c.system_usage.uses_all);
    }

    #[test]
    fn ex15_no_output_from_heartbeats_alone_on_multinode() {
        let t = ex15_ping().unwrap();
        let input = input_s1(&[1]);
        let net = Network::line(2).unwrap();
        // whatever the partition — try several
        for p in [
            HorizontalPartition::replicate(&net, &input),
            HorizontalPartition::round_robin(&net, &input),
            HorizontalPartition::concentrate(&net, &input, &Value::sym("n1")).unwrap(),
        ] {
            let probe = rtx_net::run_heartbeats_only(&net, &t, &p, 30).unwrap();
            assert!(
                probe.output.is_empty(),
                "Example 15 requires a ping delivery before any output"
            );
        }
    }

    #[test]
    fn ex2_schema_shape() {
        let t = ex2_first_element().unwrap();
        assert_eq!(t.schema().output_arity(), 1);
        let expected: Relation = Relation::empty(1);
        let _ = expected;
    }
}

//! Empirical analyses of the paper's semantic notions.
//!
//! Consistency, network-topology independence, coordination-freeness and
//! monotonicity are all undecidable in general (the paper lists their
//! decidability as future work); these checkers explore bounded, seeded
//! families of runs and report definitive counterexamples or bounded
//! evidence.

pub mod classifier;
pub mod consistency;
pub mod coordination;
pub mod genericity;
pub mod monotonicity;
pub mod thm16;

pub use classifier::{classify, standard_suite, CalmCase, CalmVerdict, ClassifierOptions};
pub use consistency::{
    check_consistency, verify_computes, ConsistencyOptions, ConsistencyReport, RunDescriptor,
    ScheduleSpec,
};
pub use coordination::{
    coordination_free_on_all, find_coordination_free_partition, CoordinationOptions,
    CoordinationVerdict,
};
pub use genericity::{check_generic, fresh_renaming, random_adom_permutation, GenericityVerdict};
pub use monotonicity::{check_monotone, random_subinstance, MonotonicityVerdict};
pub use thm16::{thm16_scenario, Thm16Outcome};

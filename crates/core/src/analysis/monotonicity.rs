//! Bounded monotonicity checking (the semantic property at the heart of
//! the CALM theorem).
//!
//! A query `Q` is monotone when `I ⊆ J` implies `Q(I) ⊆ Q(J)` (paper,
//! Section 2). Undecidable in general; the checker samples random
//! sub-instances `I ⊆ J` from a pool of instances and looks for a
//! violation. A violation is definitive; exhausting the budget is
//! bounded evidence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtx_query::{EvalError, Query};
use rtx_relational::Instance;

/// Verdict of the bounded monotonicity check.
#[derive(Clone, Debug)]
pub enum MonotonicityVerdict {
    /// No violation in `checked` sampled pairs.
    NoViolationFound {
        /// Number of pairs checked.
        checked: usize,
    },
    /// A definitive counterexample.
    Violation {
        /// The smaller instance.
        smaller: Instance,
        /// The larger instance.
        larger: Instance,
    },
}

impl MonotonicityVerdict {
    /// Did the check pass (no violation)?
    pub fn passed(&self) -> bool {
        matches!(self, MonotonicityVerdict::NoViolationFound { .. })
    }
}

/// A random sub-instance of `full`: each fact kept with probability
/// `keep`.
pub fn random_subinstance(full: &Instance, keep: f64, rng: &mut impl Rng) -> Instance {
    let mut out = Instance::empty(full.schema().clone());
    for f in full.facts() {
        if rng.gen_bool(keep.clamp(0.0, 1.0)) {
            out.insert_fact(f).expect("same schema");
        }
    }
    out
}

/// Check `Q` for monotonicity over random sub-instance pairs drawn from
/// the pool. `samples_per_instance` pairs are drawn from each pool
/// element.
pub fn check_monotone(
    query: &dyn Query,
    pool: &[Instance],
    samples_per_instance: usize,
    seed: u64,
) -> Result<MonotonicityVerdict, EvalError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut checked = 0usize;
    for full in pool {
        // the chain ∅ ⊆ I is always included
        let empty = Instance::empty(full.schema().clone());
        let pairs =
            std::iter::once((empty, full.clone())).chain((0..samples_per_instance).map(|_| {
                let large = random_subinstance(full, 0.8, &mut rng);
                let small = random_subinstance(&large, 0.6, &mut rng);
                (small, large)
            }));
        for (small, large) in pairs {
            debug_assert!(small.is_subinstance_of(&large));
            let q_small = query.eval(&small)?;
            let q_large = query.eval(&large)?;
            checked += 1;
            if !q_small.is_subset(&q_large) {
                return Ok(MonotonicityVerdict::Violation {
                    smaller: small,
                    larger: large,
                });
            }
        }
    }
    Ok(MonotonicityVerdict::NoViolationFound { checked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{atom, CqBuilder, FoQuery, Formula, Term, UcqQuery};
    use rtx_relational::{fact, Schema};

    fn pool() -> Vec<Instance> {
        let sch = Schema::new().with("E", 2).with("S", 1);
        vec![
            Instance::from_facts(
                sch.clone(),
                vec![fact!("E", 1, 2), fact!("E", 2, 3), fact!("S", 1)],
            )
            .unwrap(),
            Instance::from_facts(
                sch,
                vec![
                    fact!("E", 1, 1),
                    fact!("S", 1),
                    fact!("S", 2),
                    fact!("S", 3),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn positive_queries_pass() {
        let q = UcqQuery::single(
            CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
                .when(atom!("E"; @"X", @"Y"))
                .build()
                .unwrap(),
        );
        let v = check_monotone(&q, &pool(), 20, 1).unwrap();
        assert!(v.passed());
        match v {
            MonotonicityVerdict::NoViolationFound { checked } => assert!(checked >= 40),
            _ => unreachable!(),
        }
    }

    #[test]
    fn negation_caught() {
        // S(x) ∧ ¬E(x,x): removing E(1,1) adds answers — antimonotone part
        let q = UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(atom!("S"; @"X"))
                .unless(atom!("E"; @"X", @"X"))
                .build()
                .unwrap(),
        );
        let v = check_monotone(&q, &pool(), 50, 2).unwrap();
        assert!(!v.passed(), "the checker must find a violating pair");
        if let MonotonicityVerdict::Violation { smaller, larger } = v {
            assert!(smaller.is_subinstance_of(&larger));
        }
    }

    #[test]
    fn emptiness_caught_via_empty_chain() {
        // the ∅ ⊆ I chain suffices to catch the emptiness query
        let q = FoQuery::sentence(Formula::not(Formula::exists(
            ["X"],
            Formula::atom(atom!("S"; @"X")),
        )))
        .unwrap();
        let v = check_monotone(&q, &pool(), 0, 3).unwrap();
        assert!(!v.passed());
    }

    #[test]
    fn random_subinstance_is_contained() {
        let mut rng = StdRng::seed_from_u64(9);
        for full in pool() {
            for _ in 0..10 {
                let sub = random_subinstance(&full, 0.5, &mut rng);
                assert!(sub.is_subinstance_of(&full));
            }
        }
    }
}

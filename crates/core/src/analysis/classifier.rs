//! The CALM classifier: one harness that ties the paper's Section 6
//! together.
//!
//! For a *case* — a transducer, the reference query it is meant to
//! compute, and a pool of inputs — the classifier gathers:
//!
//! * the syntactic classification (oblivious / inflationary / monotone);
//! * empirical consistency and network-topology independence;
//! * whether every explored run computes the reference query;
//! * empirical coordination-freeness (witness partitions);
//! * bounded monotonicity and genericity of the reference query.
//!
//! Corollary 13 predicts the pattern: *coordination-free ⟺ oblivious ⟺
//! monotone*. The `exp_calm_classifier` experiment prints this table for
//! the standard suite; the tests below assert the implications on both
//! monotone and nonmonotone cases.

use crate::analysis::consistency::{check_consistency, ConsistencyOptions};
use crate::analysis::coordination::{find_coordination_free_partition, CoordinationOptions};
use crate::analysis::genericity::check_generic;
use crate::analysis::monotonicity::check_monotone;
use rtx_net::{NetError, Network};
use rtx_query::{Query, QueryRef};
use rtx_relational::Instance;
use rtx_transducer::{Classification, Transducer};
use std::fmt;

/// A classification case: a transducer together with the query it is
/// meant to distributedly compute and inputs to probe it on.
pub struct CalmCase {
    /// Human-readable name.
    pub name: String,
    /// The transducer under test.
    pub transducer: Transducer,
    /// The reference query (evaluated centrally for ground truth).
    pub reference: QueryRef,
    /// Input instances to probe on.
    pub inputs: Vec<Instance>,
}

/// Knobs for the classifier.
#[derive(Clone, Debug, Default)]
pub struct ClassifierOptions {
    /// Consistency exploration options.
    pub consistency: ConsistencyOptions,
    /// Coordination search options.
    pub coordination: CoordinationOptions,
}

/// The combined verdict for one case.
#[derive(Clone, Debug)]
pub struct CalmVerdict {
    /// Case name.
    pub name: String,
    /// Syntactic classification of the transducer.
    pub classification: Classification,
    /// Consistent over the explored runs.
    pub consistent: bool,
    /// Network-topology independent over the explored topologies.
    pub network_independent: bool,
    /// Every settled run computed the reference answer.
    pub computes_reference: bool,
    /// A coordination-free witness partition exists on every probed
    /// multi-node network.
    pub coordination_free: bool,
    /// The reference query passed the bounded monotonicity check.
    pub reference_monotone: bool,
    /// The reference query passed the bounded genericity check.
    pub reference_generic: bool,
}

impl fmt::Display for CalmVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} [{}] consistent={} nti={} computes={} coordfree={} monotone(Q)={} generic(Q)={}",
            self.name,
            self.classification,
            self.consistent,
            self.network_independent,
            self.computes_reference,
            self.coordination_free,
            self.reference_monotone,
            self.reference_generic,
        )
    }
}

/// Run the full CALM analysis on a case.
pub fn classify(case: &CalmCase, opts: &ClassifierOptions) -> Result<CalmVerdict, NetError> {
    let classification = Classification::of(&case.transducer);

    let mut consistent = true;
    let mut network_independent = true;
    let mut computes_reference = true;
    let mut coordination_free = true;

    let probe_nets: Vec<Network> = opts
        .consistency
        .topologies
        .iter()
        .map(|(_, n)| n.clone())
        .filter(|n| n.len() >= 2)
        .collect();

    for input in &case.inputs {
        let expected = case.reference.eval(input).map_err(NetError::Eval)?;
        let mut c_opts = opts.consistency.clone();
        c_opts.target_output = Some(expected.clone());
        let report = check_consistency(&case.transducer, input, &c_opts)?;
        consistent &= report.consistent;
        network_independent &= report.network_independent;
        computes_reference &=
            report.all_settled && report.outputs.iter().all(|(_, o)| o == &expected);

        for net in &probe_nets {
            let v = find_coordination_free_partition(
                net,
                &case.transducer,
                input,
                &expected,
                &opts.coordination,
            )?;
            coordination_free &= v.coordination_free();
        }
    }

    let reference_monotone = check_monotone(&case.reference, &case.inputs, 12, 5)
        .map_err(NetError::Eval)?
        .passed();
    let reference_generic = check_generic(&case.reference, &case.inputs, 4, 5)
        .map_err(NetError::Eval)?
        .passed();

    Ok(CalmVerdict {
        name: case.name.clone(),
        classification,
        consistent,
        network_independent,
        computes_reference,
        coordination_free,
        reference_monotone,
        reference_generic,
    })
}

/// The standard case suite used by tests and the `exp_calm_classifier`
/// experiment: monotone queries built with the Theorem 6(2) recipe and
/// the paper's nonmonotone / coordinating examples.
pub fn standard_suite() -> Vec<CalmCase> {
    use crate::constructions::distribute::distribute_monotone;
    use crate::constructions::flood::FloodMode;
    use crate::examples;
    use rtx_query::{atom, CqBuilder, DatalogQuery, FoQuery, Formula, Term, UcqQuery};
    use rtx_relational::{fact, Schema};
    use std::sync::Arc;

    let mut cases = Vec::new();

    // 1. distributed transitive closure (Example 3 / Theorem 6(2)).
    {
        let program =
            rtx_query::parser::parse_program("T(X,Y) :- S(X,Y). T(X,Z) :- T(X,Y), S(Y,Z).")
                .expect("valid program");
        let reference: QueryRef = Arc::new(DatalogQuery::new(program, "T").expect("valid"));
        let sch = Schema::new().with("S", 2);
        cases.push(CalmCase {
            name: "tc-ex3".into(),
            transducer: examples::ex3_transitive_closure(true).expect("valid"),
            reference: reference.clone(),
            inputs: vec![
                Instance::from_facts(sch.clone(), vec![fact!("S", 1, 2), fact!("S", 2, 3)])
                    .expect("valid"),
                Instance::from_facts(sch.clone(), vec![fact!("S", 1, 1)]).expect("valid"),
            ],
        });
    }

    // 2. a selection via the generic Theorem 6(2) wrapper.
    {
        let sch = Schema::new().with("S", 2);
        let q: QueryRef = Arc::new(UcqQuery::single(
            CqBuilder::head(vec![Term::var("X"), Term::var("X")])
                .when(atom!("S"; @"X", @"X"))
                .build()
                .expect("safe"),
        ));
        cases.push(CalmCase {
            name: "selection-thm62".into(),
            transducer: distribute_monotone(q.clone(), &sch, FloodMode::Dedup).expect("valid"),
            reference: q,
            inputs: vec![Instance::from_facts(
                sch,
                vec![fact!("S", 1, 1), fact!("S", 1, 2), fact!("S", 3, 3)],
            )
            .expect("valid")],
        });
    }

    // 3. the emptiness query (Example 10) — nonmonotone, coordinating.
    {
        let reference: QueryRef = Arc::new(
            FoQuery::sentence(Formula::not(Formula::exists(
                ["X"],
                Formula::atom(atom!("S"; @"X")),
            )))
            .expect("sentence"),
        );
        let sch = Schema::new().with("S", 1);
        cases.push(CalmCase {
            name: "emptiness-ex10".into(),
            transducer: examples::ex10_emptiness().expect("valid"),
            reference,
            inputs: vec![
                Instance::empty(sch.clone()),
                Instance::from_facts(sch, vec![fact!("S", 1)]).expect("valid"),
            ],
        });
    }

    // 4. identity via ping (Example 15) — monotone query, but the
    //    transducer coordinates (not oblivious, not coordination-free).
    {
        let reference: QueryRef = Arc::new(UcqQuery::single(
            CqBuilder::head(vec![Term::var("X")])
                .when(atom!("S"; @"X"))
                .build()
                .expect("safe"),
        ));
        let sch = Schema::new().with("S", 1);
        cases.push(CalmCase {
            name: "identity-ex15".into(),
            transducer: examples::ex15_ping().expect("valid"),
            reference,
            inputs: vec![
                Instance::from_facts(sch, vec![fact!("S", 1), fact!("S", 2)]).expect("valid"),
            ],
        });
    }

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_net::Network;

    fn fast_opts() -> ClassifierOptions {
        ClassifierOptions {
            consistency: ConsistencyOptions {
                topologies: vec![
                    ("single".into(), Network::single()),
                    ("line2".into(), Network::line(2).unwrap()),
                    ("line3".into(), Network::line(3).unwrap()),
                ],
                schedules: vec![
                    crate::analysis::consistency::ScheduleSpec::Fifo,
                    crate::analysis::consistency::ScheduleSpec::Random(9),
                ],
                random_partitions: 1,
                seed: 3,
                max_steps: 150_000,
                target_output: None,
            },
            coordination: CoordinationOptions {
                random_partitions: 2,
                exhaustive_limit: 256,
                max_rounds: 100,
                seed: 3,
            },
        }
    }

    /// The empirical CALM table (Corollary 13): for every case,
    /// coordination-freeness ⟺ monotonicity of the reference query, and
    /// oblivious transducers are coordination-free (Proposition 11).
    #[test]
    fn calm_pattern_holds_on_standard_suite() {
        let opts = fast_opts();
        for case in standard_suite() {
            let v = classify(&case, &opts).unwrap();
            assert!(v.consistent, "{}: must be consistent", v.name);
            assert!(
                v.computes_reference,
                "{}: must compute its reference",
                v.name
            );
            assert!(v.reference_generic, "{}: reference must be generic", v.name);
            // Theorem 12 direction: coordination-free ⇒ monotone
            if v.coordination_free {
                assert!(
                    v.reference_monotone,
                    "{}: coordination-free but nonmonotone?! (Theorem 12 violated)",
                    v.name
                );
            }
            // Proposition 11 direction: oblivious ⇒ coordination-free
            if v.classification.oblivious {
                assert!(
                    v.coordination_free,
                    "{}: oblivious but not coordination-free?! (Prop. 11 violated)",
                    v.name
                );
            }
        }
    }

    #[test]
    fn tc_case_is_fully_green() {
        let opts = fast_opts();
        let case = &standard_suite()[0];
        let v = classify(case, &opts).unwrap();
        assert!(v.classification.oblivious);
        assert!(v.coordination_free);
        assert!(v.reference_monotone);
        assert!(v.network_independent);
    }

    #[test]
    fn emptiness_case_is_coordinating_and_nonmonotone() {
        let opts = fast_opts();
        let suite = standard_suite();
        let case = suite.iter().find(|c| c.name == "emptiness-ex10").unwrap();
        let v = classify(case, &opts).unwrap();
        assert!(!v.classification.oblivious);
        assert!(!v.coordination_free);
        assert!(!v.reference_monotone);
        assert!(v.computes_reference);
    }

    #[test]
    fn ex15_shows_gap_between_query_and_strategy() {
        // the query (identity) is monotone, yet this particular transducer
        // is not coordination-free — CALM says a *different*, oblivious
        // transducer exists for the same query (Corollary 13 (3)⇒(2)).
        let opts = fast_opts();
        let suite = standard_suite();
        let case = suite.iter().find(|c| c.name == "identity-ex15").unwrap();
        let v = classify(case, &opts).unwrap();
        assert!(v.reference_monotone);
        assert!(!v.coordination_free);
        assert!(
            !v.classification.system_usage.uses_id,
            "no Id per Example 15"
        );
        // the CALM-promised replacement:
        let replacement = crate::constructions::distribute::distribute_monotone(
            case.reference.clone(),
            &rtx_relational::Schema::new().with("S", 1),
            crate::constructions::flood::FloodMode::Dedup,
        )
        .unwrap();
        let replacement_case = CalmCase {
            name: "identity-oblivious".into(),
            transducer: replacement,
            reference: case.reference.clone(),
            inputs: case.inputs.clone(),
        };
        let v2 = classify(&replacement_case, &opts).unwrap();
        assert!(v2.classification.oblivious);
        assert!(v2.coordination_free);
        assert!(v2.computes_reference);
    }

    #[test]
    fn verdict_display_is_informative() {
        let opts = fast_opts();
        let v = classify(&standard_suite()[1], &opts).unwrap();
        let s = v.to_string();
        assert!(s.contains("selection-thm62"));
        assert!(s.contains("coordfree="));
    }
}

//! Bounded genericity checking.
//!
//! Condition (ii) of the paper's definition of a query (Section 2):
//! `Q(h(I)) = h(Q(I))` for every permutation `h` of **dom**. The checker
//! samples random permutations of the active domain (and optionally
//! renamings into fresh values) and compares both sides.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtx_query::{EvalError, Query};
use rtx_relational::{Instance, Iso, Value};

/// Verdict of the bounded genericity check.
#[derive(Clone, Debug)]
pub enum GenericityVerdict {
    /// All sampled permutations commuted with the query.
    NoViolationFound {
        /// Number of (instance, permutation) pairs checked.
        checked: usize,
    },
    /// A permutation on which the query is not generic.
    Violation {
        /// The instance.
        instance: Instance,
        /// The offending renaming.
        iso: Iso,
    },
}

impl GenericityVerdict {
    /// Did the check pass?
    pub fn passed(&self) -> bool {
        matches!(self, GenericityVerdict::NoViolationFound { .. })
    }
}

/// A random permutation of the instance's active domain.
pub fn random_adom_permutation(instance: &Instance, rng: &mut StdRng) -> Iso {
    let dom: Vec<Value> = instance.adom().into_iter().collect();
    let mut image = dom.clone();
    image.shuffle(rng);
    Iso::from_pairs(dom.into_iter().zip(image)).expect("a permutation is injective")
}

/// A renaming of the active domain into fresh values (also a legal
/// injective renaming — fresh values cannot collide with the old ones).
pub fn fresh_renaming(instance: &Instance, tag: u64) -> Iso {
    let dom: Vec<Value> = instance.adom().into_iter().collect();
    let pairs = dom
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, Value::sym(format!("fresh_{tag}_{i}"))));
    Iso::from_pairs(pairs).expect("fresh targets are distinct")
}

/// Check genericity of `query` on each instance under `permutations`
/// sampled permutations plus one fresh renaming.
pub fn check_generic(
    query: &dyn Query,
    pool: &[Instance],
    permutations: usize,
    seed: u64,
) -> Result<GenericityVerdict, EvalError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut checked = 0usize;
    for instance in pool {
        let mut isos: Vec<Iso> = (0..permutations)
            .map(|_| random_adom_permutation(instance, &mut rng))
            .collect();
        isos.push(fresh_renaming(instance, seed));
        for iso in isos {
            let lhs = query.eval(&iso.apply_instance(instance))?;
            let rhs = iso.apply_relation(&query.eval(instance)?);
            checked += 1;
            if lhs != rhs {
                return Ok(GenericityVerdict::Violation {
                    instance: instance.clone(),
                    iso,
                });
            }
        }
    }
    Ok(GenericityVerdict::NoViolationFound { checked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{atom, CqBuilder, NativeQuery, Term, UcqQuery};
    use rtx_relational::{fact, Relation, Schema, Tuple};

    fn pool() -> Vec<Instance> {
        let sch = Schema::new().with("E", 2);
        vec![
            Instance::from_facts(sch.clone(), vec![fact!("E", 1, 2), fact!("E", 2, 3)]).unwrap(),
            Instance::from_facts(sch, vec![fact!("E", 5, 5)]).unwrap(),
        ]
    }

    #[test]
    fn constant_free_cq_is_generic() {
        let q = UcqQuery::single(
            CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
                .when(atom!("E"; @"X", @"Y"))
                .build()
                .unwrap(),
        );
        let v = check_generic(&q, &pool(), 5, 1).unwrap();
        assert!(v.passed());
    }

    #[test]
    fn constant_using_query_fails_genericity() {
        // "output 1 if present" is not generic: renaming 1 breaks it
        let q = NativeQuery::new("const-1", 1, [rtx_relational::RelName::new("E")], |db| {
            let mut r = Relation::empty(1);
            let one = Tuple::new(vec![rtx_relational::Value::int(1)]);
            if db.adom().contains(&rtx_relational::Value::int(1)) {
                r.insert(one).unwrap();
            }
            Ok(r)
        });
        let v = check_generic(&q, &pool(), 5, 2).unwrap();
        assert!(!v.passed());
    }

    #[test]
    fn fresh_renaming_is_injective_and_complete() {
        let i = &pool()[0];
        let iso = fresh_renaming(i, 7);
        assert_eq!(iso.support_len(), i.adom().len());
        let j = iso.apply_instance(i);
        assert_eq!(j.fact_count(), i.fact_count());
        assert!(j.adom().iter().all(|v| v.as_sym().is_some()));
    }

    #[test]
    fn permutations_are_permutations() {
        let mut rng = StdRng::seed_from_u64(3);
        let i = &pool()[0];
        for _ in 0..5 {
            let iso = random_adom_permutation(i, &mut rng);
            assert!(iso.is_permutation_like());
        }
    }
}

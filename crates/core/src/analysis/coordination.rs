//! Empirical coordination-freeness (paper, Section 5).
//!
//! A network-topology-independent transducer `Π` is *coordination-free on
//! `N`* if for every input `I` there **exists** a horizontal partition
//! `H` and a run on `H` that reaches a quiescence point using only
//! heartbeat transitions; `Π` is coordination-free if this holds on every
//! network. "It actually does not matter what a suitable partition is,
//! as long as it exists."
//!
//! The search enumerates a partition family (replication, concentration
//! at each node, round-robin, seeded random, and — for tiny inputs — all
//! single-owner placements) and probes each with a heartbeat-only run.
//! A probe succeeds when the heartbeat fixpoint's accumulated output
//! equals the query answer `Q(I)`: by consistency, a run that already
//! produced `Q(I)` has passed its quiescence point. Finding a witness is
//! definitive; exhausting the family is bounded evidence of *non*-freeness
//! (the property is undecidable in general — paper, Section 5).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtx_net::{run_heartbeats_only, HorizontalPartition, NetError, Network};
use rtx_relational::{Instance, Relation};
use rtx_transducer::Transducer;

/// Options for the coordination-freeness search.
#[derive(Clone, Debug)]
pub struct CoordinationOptions {
    /// Random partitions to try per network.
    pub random_partitions: usize,
    /// Exhaustively enumerate single-owner partitions when
    /// `|nodes|^|facts|` is at most this bound.
    pub exhaustive_limit: usize,
    /// Heartbeat rounds per probe.
    pub max_rounds: usize,
    /// Seed for random partitions.
    pub seed: u64,
}

impl Default for CoordinationOptions {
    fn default() -> Self {
        CoordinationOptions {
            random_partitions: 4,
            exhaustive_limit: 4096,
            max_rounds: 200,
            seed: 23,
        }
    }
}

/// Result of the search on one network and input.
#[derive(Clone, Debug)]
pub struct CoordinationVerdict {
    /// A partition on which heartbeats alone produced `Q(I)`.
    pub witness: Option<String>,
    /// Number of partitions probed.
    pub probed: usize,
}

impl CoordinationVerdict {
    /// Did the search find a communication-free partition?
    pub fn coordination_free(&self) -> bool {
        self.witness.is_some()
    }
}

/// Search for a heartbeat-only quiescent partition on one network.
///
/// `expected` is the query answer `Q(I)` the transducer distributedly
/// computes (callers obtain it from a reference query or a trusted run).
pub fn find_coordination_free_partition(
    net: &Network,
    transducer: &Transducer,
    input: &Instance,
    expected: &Relation,
    opts: &CoordinationOptions,
) -> Result<CoordinationVerdict, NetError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut candidates: Vec<(String, HorizontalPartition)> = vec![
        (
            "replicate".into(),
            HorizontalPartition::replicate(net, input),
        ),
        (
            "round-robin".into(),
            HorizontalPartition::round_robin(net, input),
        ),
    ];
    for n in net.nodes() {
        candidates.push((
            format!("concentrate@{n}"),
            HorizontalPartition::concentrate(net, input, n)?,
        ));
    }
    for i in 0..opts.random_partitions {
        candidates.push((
            format!("random#{i}"),
            HorizontalPartition::random(net, input, 0.25, &mut rng),
        ));
    }
    let single_owner_count = net
        .len()
        .checked_pow(input.fact_count() as u32)
        .unwrap_or(usize::MAX);
    if single_owner_count <= opts.exhaustive_limit {
        for (i, p) in HorizontalPartition::enumerate_single_owner(net, input, opts.exhaustive_limit)
            .into_iter()
            .enumerate()
        {
            candidates.push((format!("owner#{i}"), p));
        }
    }

    let mut probed = 0usize;
    for (label, partition) in candidates {
        probed += 1;
        let probe = run_heartbeats_only(net, transducer, &partition, opts.max_rounds)?;
        if probe.fixpoint && &probe.output == expected {
            return Ok(CoordinationVerdict {
                witness: Some(label),
                probed,
            });
        }
    }
    Ok(CoordinationVerdict {
        witness: None,
        probed,
    })
}

/// Probe coordination-freeness across several networks: free iff a
/// witness partition exists on *each* of them.
pub fn coordination_free_on_all(
    nets: &[(String, Network)],
    transducer: &Transducer,
    input: &Instance,
    expected: &Relation,
    opts: &CoordinationOptions,
) -> Result<Vec<(String, CoordinationVerdict)>, NetError> {
    let mut out = Vec::new();
    for (label, net) in nets {
        let v = find_coordination_free_partition(net, transducer, input, expected, opts)?;
        out.push((label.clone(), v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{ex10_emptiness, ex15_ping, ex3_transitive_closure, ex9_ab_nonempty};
    use rtx_relational::{fact, Schema, Tuple, Value};

    fn expected_tc(pairs: &[(i64, i64)], closure: &[(i64, i64)]) -> (Instance, Relation) {
        let sch = Schema::new().with("S", 2);
        let mut i = Instance::empty(sch);
        for &(a, b) in pairs {
            i.insert_fact(fact!("S", a, b)).unwrap();
        }
        let mut r = Relation::empty(2);
        for &(a, b) in closure {
            r.insert(Tuple::new(vec![Value::int(a), Value::int(b)]))
                .unwrap();
        }
        (i, r)
    }

    #[test]
    fn example9_tc_is_coordination_free() {
        // Example 9: "when every node already has the full input, they can
        // each individually compute the transitive closure"
        let t = ex3_transitive_closure(true).unwrap();
        let (input, expected) = expected_tc(&[(1, 2), (2, 3)], &[(1, 2), (2, 3), (1, 3)]);
        for net in [Network::line(2).unwrap(), Network::ring(3).unwrap()] {
            let v = find_coordination_free_partition(
                &net,
                &t,
                &input,
                &expected,
                &CoordinationOptions::default(),
            )
            .unwrap();
            assert!(v.coordination_free(), "TC must be coordination-free");
            assert_eq!(v.witness.as_deref(), Some("replicate"));
        }
    }

    #[test]
    fn example10_emptiness_is_not_coordination_free() {
        let t = ex10_emptiness().unwrap();
        // S empty: the answer is true, but certifying it needs id exchange
        let input = Instance::empty(Schema::new().with("S", 1));
        let expected = Relation::nullary_true();
        let net = Network::line(2).unwrap();
        let v = find_coordination_free_partition(
            &net,
            &t,
            &input,
            &expected,
            &CoordinationOptions::default(),
        )
        .unwrap();
        assert!(!v.coordination_free(), "emptiness needs coordination");
        assert!(v.probed >= 4);
    }

    #[test]
    fn example15_ping_is_not_coordination_free() {
        let t = ex15_ping().unwrap();
        let input = Instance::from_facts(Schema::new().with("S", 1), vec![fact!("S", 1)]).unwrap();
        let mut expected = Relation::empty(1);
        expected.insert(Tuple::new(vec![Value::int(1)])).unwrap();
        let net = Network::line(2).unwrap();
        let v = find_coordination_free_partition(
            &net,
            &t,
            &input,
            &expected,
            &CoordinationOptions::default(),
        )
        .unwrap();
        assert!(
            !v.coordination_free(),
            "Example 15: communication is required on every partition"
        );
    }

    #[test]
    fn example9_ab_coordination_free_via_split_partition() {
        // the contrived A/B example: free thanks to the A-here/B-there
        // partition, even though replication needs communication
        let t = ex9_ab_nonempty().unwrap();
        let sch = Schema::new().with("A", 1).with("B", 1);
        let input = Instance::from_facts(sch, vec![fact!("A", 1), fact!("B", 2)]).unwrap();
        let expected = Relation::nullary_true();
        let net = Network::line(2).unwrap();
        let v = find_coordination_free_partition(
            &net,
            &t,
            &input,
            &expected,
            &CoordinationOptions::default(),
        )
        .unwrap();
        assert!(v.coordination_free());
        let w = v.witness.unwrap();
        assert!(
            w != "replicate",
            "replication is NOT a witness here; got {w}"
        );
    }

    #[test]
    fn coordination_profile_across_networks() {
        let t = ex3_transitive_closure(true).unwrap();
        let (input, expected) = expected_tc(&[(1, 2)], &[(1, 2)]);
        let nets = vec![
            ("line2".to_string(), Network::line(2).unwrap()),
            ("star3".to_string(), Network::star(3).unwrap()),
        ];
        let profile = coordination_free_on_all(
            &nets,
            &t,
            &input,
            &expected,
            &CoordinationOptions::default(),
        )
        .unwrap();
        assert!(profile.iter().all(|(_, v)| v.coordination_free()));
    }
}

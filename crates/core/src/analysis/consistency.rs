//! Empirical consistency and network-topology-independence checking.
//!
//! The paper (Section 4): a transducer network is *consistent* if all
//! fair runs on all horizontal partitions of an input produce the same
//! output; a transducer is *network-topology independent* if it is
//! consistent on every network and computes the same query on all of
//! them. Both properties quantify over infinitely many runs, so the
//! checker explores a finite, seeded family of topologies × partitions ×
//! schedulers and reports either a *counterexample* (two runs with
//! different outputs — definitive) or *no counterexample found* (bounded
//! evidence).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtx_net::{
    run, FifoRoundRobin, HorizontalPartition, LifoRoundRobin, NetError, Network, RandomScheduler,
    RunBudget, Scheduler,
};
use rtx_relational::{Instance, Relation};
use rtx_transducer::Transducer;
use std::fmt;

/// Scheduler family used by the checkers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleSpec {
    /// FIFO round-robin.
    Fifo,
    /// LIFO round-robin (adversarial reordering).
    Lifo,
    /// Seeded random interleaving.
    Random(u64),
}

impl ScheduleSpec {
    fn instantiate(&self) -> Box<dyn Scheduler> {
        match self {
            ScheduleSpec::Fifo => Box::new(FifoRoundRobin::new()),
            ScheduleSpec::Lifo => Box::new(LifoRoundRobin::new()),
            ScheduleSpec::Random(seed) => Box::new(RandomScheduler::seeded(*seed)),
        }
    }
}

impl fmt::Display for ScheduleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleSpec::Fifo => write!(f, "fifo"),
            ScheduleSpec::Lifo => write!(f, "lifo"),
            ScheduleSpec::Random(s) => write!(f, "random#{s}"),
        }
    }
}

/// Options for the consistency checker.
#[derive(Clone, Debug)]
pub struct ConsistencyOptions {
    /// Topologies to explore, with labels.
    pub topologies: Vec<(String, Network)>,
    /// Schedulers per (topology, partition).
    pub schedules: Vec<ScheduleSpec>,
    /// Extra random partitions per topology (besides replicate /
    /// concentrate / round-robin).
    pub random_partitions: usize,
    /// Seed for partition generation.
    pub seed: u64,
    /// Per-run step budget.
    pub max_steps: usize,
    /// For non-draining transducers: stop runs once this output is
    /// reached (and treat reaching it as success).
    pub target_output: Option<Relation>,
}

impl Default for ConsistencyOptions {
    fn default() -> Self {
        ConsistencyOptions {
            topologies: vec![
                ("single".into(), Network::single()),
                ("line3".into(), Network::line(3).expect("valid")),
                ("ring4".into(), Network::ring(4).expect("valid")),
                ("star4".into(), Network::star(4).expect("valid")),
            ],
            schedules: vec![
                ScheduleSpec::Fifo,
                ScheduleSpec::Lifo,
                ScheduleSpec::Random(17),
                ScheduleSpec::Random(42),
            ],
            random_partitions: 2,
            seed: 7,
            max_steps: 200_000,
            target_output: None,
        }
    }
}

/// A single explored run, for witness reporting.
#[derive(Clone, Debug)]
pub struct RunDescriptor {
    /// Topology label.
    pub topology: String,
    /// Partition description.
    pub partition: String,
    /// Scheduler description.
    pub schedule: String,
    /// The run's accumulated output.
    pub output: Relation,
    /// Whether the run reached quiescence (or its target output).
    pub settled: bool,
}

/// The checker's verdict.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// Total runs executed.
    pub runs: usize,
    /// No two runs on the same topology disagreed.
    pub consistent: bool,
    /// Additionally, all topologies produced the same output.
    pub network_independent: bool,
    /// Every run settled (quiescent or reached the target) within budget.
    pub all_settled: bool,
    /// First disagreeing pair, if any.
    pub witness: Option<(RunDescriptor, RunDescriptor)>,
    /// One representative output per topology (the first run's).
    pub outputs: Vec<(String, Relation)>,
}

/// Generate the partition family for one topology.
fn partitions(
    net: &Network,
    input: &Instance,
    extra_random: usize,
    rng: &mut StdRng,
) -> Vec<(String, HorizontalPartition)> {
    let mut out = vec![
        (
            "replicate".to_string(),
            HorizontalPartition::replicate(net, input),
        ),
        (
            "round-robin".to_string(),
            HorizontalPartition::round_robin(net, input),
        ),
    ];
    if let Some(first) = net.nodes().next() {
        out.push((
            format!("concentrate@{first}"),
            HorizontalPartition::concentrate(net, input, first).expect("known node"),
        ));
    }
    for i in 0..extra_random {
        out.push((
            format!("random#{i}"),
            HorizontalPartition::random(net, input, 0.2, rng),
        ));
    }
    out
}

/// Check consistency and network-topology independence on one input.
pub fn check_consistency(
    transducer: &Transducer,
    input: &Instance,
    opts: &ConsistencyOptions,
) -> Result<ConsistencyReport, NetError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut runs = 0usize;
    let mut all_settled = true;
    let mut witness: Option<(RunDescriptor, RunDescriptor)> = None;
    let mut outputs: Vec<(String, Relation)> = Vec::new();
    let mut consistent = true;
    let mut network_independent = true;

    for (label, net) in &opts.topologies {
        let mut reference: Option<RunDescriptor> = None;
        for (plabel, partition) in partitions(net, input, opts.random_partitions, &mut rng) {
            for spec in &opts.schedules {
                let mut sched = spec.instantiate();
                let mut budget = RunBudget::steps(opts.max_steps);
                if let Some(t) = &opts.target_output {
                    budget = budget.until_output(t.clone());
                }
                let outcome = run(net, transducer, &partition, sched.as_mut(), &budget)?;
                runs += 1;
                let settled = outcome.quiescent || outcome.reached_target;
                all_settled &= settled;
                let desc = RunDescriptor {
                    topology: label.clone(),
                    partition: plabel.clone(),
                    schedule: spec.to_string(),
                    output: outcome.output.clone(),
                    settled,
                };
                match &reference {
                    None => {
                        outputs.push((label.clone(), desc.output.clone()));
                        reference = Some(desc.clone());
                    }
                    Some(r) if r.output != desc.output => {
                        consistent = false;
                        if witness.is_none() {
                            witness = Some((r.clone(), desc.clone()));
                        }
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // network independence: compare the per-topology representative outputs
    if let Some((_, first)) = outputs.first() {
        for (_, o) in &outputs {
            if o != first {
                network_independent = false;
            }
        }
    }
    if !consistent {
        network_independent = false;
    }

    Ok(ConsistencyReport {
        runs,
        consistent,
        network_independent,
        all_settled,
        witness,
        outputs,
    })
}

/// Check that the transducer distributedly *computes* `expected` on this
/// input: consistent, network-independent, and every run's output equals
/// `expected(I)`.
///
/// Runs are first driven to quiescence with no early target-stop — the
/// sound check for draining transducers (a run that overshoots or
/// undershoots `expected` is caught exactly). Only when some run fails
/// to quiesce within budget (paper-faithful non-draining flooding) does
/// the checker fall back to target-stopped runs, which certify "produced
/// exactly `expected` at some point" (see [`rtx_net::RunBudget`] for the
/// overshoot caveat of that mode).
pub fn verify_computes(
    transducer: &Transducer,
    input: &Instance,
    expected: &Relation,
    opts: &ConsistencyOptions,
) -> Result<bool, NetError> {
    let mut quiescent_opts = opts.clone();
    quiescent_opts.target_output = None;
    let report = check_consistency(transducer, input, &quiescent_opts)?;
    if report.all_settled {
        return Ok(report.consistent
            && report.network_independent
            && report.outputs.iter().all(|(_, o)| o == expected));
    }
    let mut target_opts = opts.clone();
    target_opts.target_output = Some(expected.clone());
    let report = check_consistency(transducer, input, &target_opts)?;
    Ok(report.consistent
        && report.network_independent
        && report.all_settled
        && report.outputs.iter().all(|(_, o)| o == expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{ex2_first_element, ex3_transitive_closure, ex4_echo};
    use rtx_relational::{fact, Schema, Tuple, Value};

    fn pairs_input(pairs: &[(i64, i64)]) -> Instance {
        let sch = Schema::new().with("S", 2);
        let mut i = Instance::empty(sch);
        for &(a, b) in pairs {
            i.insert_fact(fact!("S", a, b)).unwrap();
        }
        i
    }

    fn small_opts() -> ConsistencyOptions {
        ConsistencyOptions {
            topologies: vec![
                ("single".into(), Network::single()),
                ("line2".into(), Network::line(2).unwrap()),
                ("line3".into(), Network::line(3).unwrap()),
            ],
            schedules: vec![
                ScheduleSpec::Fifo,
                ScheduleSpec::Lifo,
                ScheduleSpec::Random(5),
            ],
            random_partitions: 1,
            seed: 11,
            max_steps: 100_000,
            target_output: None,
        }
    }

    #[test]
    fn tc_is_consistent_and_network_independent() {
        let t = ex3_transitive_closure(true).unwrap();
        let input = pairs_input(&[(1, 2), (2, 3)]);
        let report = check_consistency(&t, &input, &small_opts()).unwrap();
        assert!(report.consistent, "witness: {:?}", report.witness);
        assert!(report.network_independent);
        assert!(report.all_settled);
        assert!(report.runs >= 27);
    }

    #[test]
    fn tc_verifies_against_reference_closure() {
        let t = ex3_transitive_closure(true).unwrap();
        let input = pairs_input(&[(1, 2), (2, 3), (3, 1)]);
        let mut expected = Relation::empty(2);
        for a in [1i64, 2, 3] {
            for b in [1i64, 2, 3] {
                expected
                    .insert(Tuple::new(vec![Value::int(a), Value::int(b)]))
                    .unwrap();
            }
        }
        assert!(verify_computes(&t, &input, &expected, &small_opts()).unwrap());
        // and a wrong expectation fails
        let wrong = Relation::empty(2);
        assert!(!verify_computes(&t, &input, &wrong, &small_opts()).unwrap());
    }

    #[test]
    fn ex2_flagged_inconsistent_with_witness() {
        let t = ex2_first_element().unwrap();
        let input = Instance::from_facts(
            Schema::new().with("S", 1),
            vec![fact!("S", 1), fact!("S", 2)],
        )
        .unwrap();
        let report = check_consistency(&t, &input, &small_opts()).unwrap();
        assert!(!report.consistent);
        assert!(!report.network_independent);
        let (a, b) = report.witness.expect("must produce a witness");
        assert_eq!(
            a.topology, b.topology,
            "witness pair is on the same topology"
        );
        assert_ne!(a.output, b.output);
    }

    #[test]
    fn ex4_consistent_per_topology_but_not_independent() {
        let t = ex4_echo().unwrap();
        let input = Instance::from_facts(
            Schema::new().with("S", 1),
            vec![fact!("S", 1), fact!("S", 2)],
        )
        .unwrap();
        let report = check_consistency(&t, &input, &small_opts()).unwrap();
        assert!(report.consistent, "each topology alone is consistent");
        assert!(
            !report.network_independent,
            "single node computes ∅, multi-node computes identity"
        );
    }
}

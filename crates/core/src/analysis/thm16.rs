//! The Theorem 16 scenario: transducers that do not use `Id` compute
//! monotone queries.
//!
//! The proof constructs a specific pair of runs: a FIFO, round-synchronous
//! run of `(R4, Π)` on the partition that places the entire `I` at every
//! node of the 4-ring, and a mimicking run of `(R4 + chord 2–4, Π)` on
//! the partition `H'` with `H'(1) = H'(2) = H'(4) = I` and
//! `H'(3) = J ∖ I`. Whatever tuple the first run outputs must also be
//! output under `J` — hence `Q(I) ⊆ Q(J)`.
//!
//! This module reproduces the scenario executably: it runs both
//! configurations with the FIFO round-robin scheduler and checks the
//! preservation property for the library's `Id`-free transducers.

use rtx_net::{run, FifoRoundRobin, HorizontalPartition, NetError, Network, RunBudget};
use rtx_relational::{Instance, Relation};
use rtx_transducer::Transducer;
use std::collections::BTreeMap;

/// Outcome of the Theorem 16 scenario.
#[derive(Clone, Debug)]
pub struct Thm16Outcome {
    /// Output of the FIFO run on the plain 4-ring with `I` everywhere.
    pub output_on_ring: Relation,
    /// Output of the FIFO run on the chorded ring under `H'` over `J`.
    pub output_on_chord: Relation,
    /// `output_on_ring ⊆ output_on_chord` — the monotonicity transfer the
    /// theorem's proof establishes.
    pub preserved: bool,
}

/// Run the scenario for a transducer and a pair `I ⊆ J`.
pub fn thm16_scenario(
    transducer: &Transducer,
    smaller: &Instance,
    larger: &Instance,
    max_steps: usize,
) -> Result<Thm16Outcome, NetError> {
    if !smaller.is_subinstance_of(larger) {
        return Err(NetError::Partition("Theorem 16 needs I ⊆ J".into()));
    }
    let ring = Network::ring(4)?;
    let replicated = HorizontalPartition::replicate(&ring, smaller);
    let on_ring = run(
        &ring,
        transducer,
        &replicated,
        &mut FifoRoundRobin::new(),
        &RunBudget::steps(max_steps),
    )?;

    let chord = Network::ring4_with_chord();
    // H'(1) = H'(2) = H'(4) = I and H'(3) = J ∖ I  (zero-based: n0, n1,
    // n3 get I; n2 gets the difference).
    let mut difference = Instance::empty(larger.schema().clone());
    for f in larger.facts() {
        if !smaller.contains_fact(&f) {
            difference.insert_fact(f).map_err(NetError::Rel)?;
        }
    }
    let mut fragments: BTreeMap<rtx_net::NodeId, Instance> = BTreeMap::new();
    for (i, node) in chord.node_set().into_iter().enumerate() {
        let frag = if i == 2 {
            difference.clone()
        } else {
            smaller.clone()
        };
        // schemas must match the full instance's schema
        fragments.insert(
            node,
            frag.widen(larger.schema().clone()).map_err(NetError::Rel)?,
        );
    }
    let h_prime = HorizontalPartition::new(&chord, larger, fragments)?;
    let on_chord = run(
        &chord,
        transducer,
        &h_prime,
        &mut FifoRoundRobin::new(),
        &RunBudget::steps(max_steps),
    )?;

    let preserved = on_ring.output.is_subset(&on_chord.output);
    Ok(Thm16Outcome {
        output_on_ring: on_ring.output,
        output_on_chord: on_chord.output,
        preserved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{ex10_emptiness, ex15_ping, ex3_transitive_closure};
    use rtx_relational::{fact, Schema};
    use rtx_transducer::Classification;

    fn s1(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn ex15_no_id_transfer_holds() {
        // Example 15 uses All but not Id: Theorem 16 applies.
        let t = ex15_ping().unwrap();
        assert!(!Classification::of(&t).system_usage.uses_id);
        let smaller = s1(&[1, 2]);
        let larger = s1(&[1, 2, 3]);
        let out = thm16_scenario(&t, &smaller, &larger, 300_000).unwrap();
        assert!(out.preserved, "Q(I) ⊆ Q(J) transfer failed");
        assert_eq!(out.output_on_ring.len(), 2);
        assert_eq!(out.output_on_chord.len(), 3);
    }

    #[test]
    fn tc_transfer_holds() {
        let t = ex3_transitive_closure(true).unwrap();
        let sch = Schema::new().with("S", 2);
        let smaller = Instance::from_facts(sch.clone(), vec![fact!("S", 1, 2)]).unwrap();
        let larger = Instance::from_facts(sch, vec![fact!("S", 1, 2), fact!("S", 2, 3)]).unwrap();
        let out = thm16_scenario(&t, &smaller, &larger, 300_000).unwrap();
        assert!(out.preserved);
        assert_eq!(out.output_on_chord.len(), 3);
    }

    #[test]
    fn emptiness_with_id_shows_the_contrast() {
        // Example 10 uses Id — Theorem 16 does NOT apply, and indeed the
        // transfer fails: Q(∅) = true but Q({3}) = false.
        let t = ex10_emptiness().unwrap();
        assert!(Classification::of(&t).system_usage.uses_id);
        let smaller = s1(&[]);
        let larger = s1(&[3]);
        let out = thm16_scenario(&t, &smaller, &larger, 300_000).unwrap();
        assert!(
            !out.preserved,
            "the emptiness query is nonmonotone — exactly why it needs Id"
        );
    }

    #[test]
    fn requires_subinstance() {
        let t = ex15_ping().unwrap();
        assert!(thm16_scenario(&t, &s1(&[5]), &s1(&[6]), 1000).is_err());
    }
}

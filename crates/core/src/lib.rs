//! # rtx-calm — the CALM theorem toolkit
//!
//! The paper's contribution, executable: the constructions of Lemma 5,
//! Theorem 6 and Corollary 8 ([`constructions`]), the worked examples of
//! Sections 4–7 ([`examples`]), and the empirical analyses — consistency,
//! coordination-freeness, monotonicity, genericity, and the CALM
//! classifier ([`analysis`]).

#![warn(missing_docs)]

pub mod analysis;
pub mod constructions;
pub mod examples;

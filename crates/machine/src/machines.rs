//! A small library of sample Turing machines used by the Theorem 18
//! experiments.

use crate::tm::{Move, TuringMachine, BLANK};

/// Accepts strings over `{a, b}` with an **even number of `a`s**
/// (a two-state parity scan; regular language).
pub fn even_as() -> TuringMachine {
    TuringMachine::new("even a's", ['a', 'b'], "even", "acc")
        .with_rule("even", 'a', "odd", 'a', Move::Right)
        .with_rule("even", 'b', "even", 'b', Move::Right)
        .with_rule("even", BLANK, "acc", BLANK, Move::Stay)
        .with_rule("odd", 'a', "even", 'a', Move::Right)
        .with_rule("odd", 'b', "odd", 'b', Move::Right)
}

/// Accepts `aⁿbⁿ` for `n ≥ 1` (the classic non-regular language; marks
/// one `a` and one `b` per pass).
pub fn a_n_b_n() -> TuringMachine {
    TuringMachine::new("a^n b^n", ['a', 'b'], "q0", "acc")
        // q0: expect an unmarked 'a' (or all marked: check only X/Y left)
        .with_rule("q0", 'a', "q1", 'X', Move::Right)
        .with_rule("q0", 'Y', "q3", 'Y', Move::Right)
        // q1: scan right over a's and Y's to the first 'b'
        .with_rule("q1", 'a', "q1", 'a', Move::Right)
        .with_rule("q1", 'Y', "q1", 'Y', Move::Right)
        .with_rule("q1", 'b', "q2", 'Y', Move::Left)
        // q2: scan left back to the X boundary
        .with_rule("q2", 'a', "q2", 'a', Move::Left)
        .with_rule("q2", 'Y', "q2", 'Y', Move::Left)
        .with_rule("q2", 'X', "q0", 'X', Move::Right)
        // q3: verify only Y's remain
        .with_rule("q3", 'Y', "q3", 'Y', Move::Right)
        .with_rule("q3", BLANK, "acc", BLANK, Move::Stay)
}

/// Accepts strings over `{a, b}` containing the substring `ab`
/// (a three-state scanner; regular language).
pub fn contains_ab() -> TuringMachine {
    TuringMachine::new("contains ab", ['a', 'b'], "s", "acc")
        .with_rule("s", 'a', "saw_a", 'a', Move::Right)
        .with_rule("s", 'b', "s", 'b', Move::Right)
        .with_rule("saw_a", 'a', "saw_a", 'a', Move::Right)
        .with_rule("saw_a", 'b', "acc", 'b', Move::Stay)
}

/// Accepts palindromes over `{a, b}` of length ≥ 1 (quadratic-time
/// two-ended erasure).
pub fn palindrome() -> TuringMachine {
    TuringMachine::new("palindrome", ['a', 'b'], "p0", "acc")
        // p0: read the first unerased symbol
        .with_rule("p0", 'a', "ra", BLANK, Move::Right)
        .with_rule("p0", 'b', "rb", BLANK, Move::Right)
        .with_rule("p0", BLANK, "acc", BLANK, Move::Stay) // everything erased
        // ra/rb: run right to the end
        .with_rule("ra", 'a', "ra", 'a', Move::Right)
        .with_rule("ra", 'b', "ra", 'b', Move::Right)
        .with_rule("ra", BLANK, "ca", BLANK, Move::Left)
        .with_rule("rb", 'a', "rb", 'a', Move::Right)
        .with_rule("rb", 'b', "rb", 'b', Move::Right)
        .with_rule("rb", BLANK, "cb", BLANK, Move::Left)
        // ca/cb: check the rightmost unerased symbol matches
        .with_rule("ca", 'a', "back", BLANK, Move::Left)
        .with_rule("ca", BLANK, "acc", BLANK, Move::Stay) // odd length, middle
        .with_rule("cb", 'b', "back", BLANK, Move::Left)
        .with_rule("cb", BLANK, "acc", BLANK, Move::Stay)
        // back: run left to the erased prefix boundary
        .with_rule("back", 'a', "back", 'a', Move::Left)
        .with_rule("back", 'b', "back", 'b', Move::Left)
        .with_rule("back", BLANK, "p0", BLANK, Move::Right)
}

/// All sample machines with representative accept/reject inputs — the
/// table driven by the Theorem 18 experiments.
pub fn catalog() -> Vec<(TuringMachine, Vec<(&'static str, bool)>)> {
    vec![
        (
            even_as(),
            vec![
                ("aa", true),
                ("ab", false),
                ("baab", true),
                ("bb", true),
                ("aba", true),
            ],
        ),
        (
            a_n_b_n(),
            vec![("ab", true), ("aabb", true), ("aab", false), ("ba", false)],
        ),
        (
            contains_ab(),
            vec![("ab", true), ("bba", false), ("bab", true), ("bb", false)],
        ),
        (
            palindrome(),
            vec![("aa", true), ("aba", true), ("abab", false), ("ab", false)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palindrome_machine() {
        let m = palindrome();
        for (w, exp) in [
            ("a", true),
            ("ab", false),
            ("aba", true),
            ("abba", true),
            ("aabaa", true),
            ("aab", false),
        ] {
            assert_eq!(m.run(w, 10_000).unwrap().accepted(), exp, "input {w}");
        }
    }

    #[test]
    fn catalog_expectations_hold_on_the_interpreter() {
        for (m, cases) in catalog() {
            for (w, exp) in cases {
                assert_eq!(
                    m.run(w, 100_000).unwrap().accepted(),
                    exp,
                    "machine {} on {w}",
                    m.name()
                );
            }
        }
    }
}

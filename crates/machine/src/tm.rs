//! Deterministic single-tape Turing machines.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A machine state name.
pub type State = String;
/// A tape symbol (single char; `BLANK` is the blank).
pub type Sym = char;

/// The blank tape symbol.
pub const BLANK: Sym = '_';

/// Head movement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay put.
    Stay,
}

/// A transition `δ(q, a) = (q', b, move)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Next state.
    pub next: State,
    /// Symbol written.
    pub write: Sym,
    /// Head movement.
    pub movement: Move,
}

/// Errors from machine construction or execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TmError {
    /// A transition references an undeclared state.
    UnknownState(State),
    /// The input contains a symbol outside the input alphabet.
    BadInputSymbol(Sym),
    /// The step budget was exhausted.
    OutOfFuel {
        /// Steps executed.
        steps: usize,
    },
    /// The head moved left of the leftmost cell.
    FellOffLeft,
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmError::UnknownState(s) => write!(f, "unknown state `{s}`"),
            TmError::BadInputSymbol(c) => write!(f, "symbol `{c}` not in the input alphabet"),
            TmError::OutOfFuel { steps } => write!(f, "no halt within {steps} steps"),
            TmError::FellOffLeft => write!(f, "head moved left of the tape start"),
        }
    }
}

impl std::error::Error for TmError {}

/// Result of running a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TmOutcome {
    /// Halted in the accepting state.
    Accept {
        /// Steps taken.
        steps: usize,
    },
    /// Halted in a non-accepting configuration.
    Reject {
        /// Steps taken.
        steps: usize,
    },
}

impl TmOutcome {
    /// Did the machine accept?
    pub fn accepted(&self) -> bool {
        matches!(self, TmOutcome::Accept { .. })
    }
}

/// A deterministic single-tape Turing machine.
///
/// The machine halts when it enters `accept` or when no transition is
/// defined for the current `(state, symbol)` pair (an implicit reject).
#[derive(Clone, Debug)]
pub struct TuringMachine {
    name: String,
    input_alphabet: BTreeSet<Sym>,
    start: State,
    accept: State,
    delta: BTreeMap<(State, Sym), Transition>,
}

impl TuringMachine {
    /// Build a machine.
    pub fn new(
        name: impl Into<String>,
        input_alphabet: impl IntoIterator<Item = Sym>,
        start: impl Into<State>,
        accept: impl Into<State>,
    ) -> Self {
        TuringMachine {
            name: name.into(),
            input_alphabet: input_alphabet.into_iter().collect(),
            start: start.into(),
            accept: accept.into(),
            delta: BTreeMap::new(),
        }
    }

    /// Add a transition (builder style).
    pub fn with_rule(
        mut self,
        state: impl Into<State>,
        read: Sym,
        next: impl Into<State>,
        write: Sym,
        movement: Move,
    ) -> Self {
        self.delta.insert(
            (state.into(), read),
            Transition {
                next: next.into(),
                write,
                movement,
            },
        );
        self
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input alphabet Σ.
    pub fn input_alphabet(&self) -> &BTreeSet<Sym> {
        &self.input_alphabet
    }

    /// Start state.
    pub fn start(&self) -> &State {
        &self.start
    }

    /// Accept state.
    pub fn accept(&self) -> &State {
        &self.accept
    }

    /// All states mentioned anywhere.
    pub fn states(&self) -> BTreeSet<State> {
        let mut out: BTreeSet<State> = [self.start.clone(), self.accept.clone()].into();
        for ((q, _), t) in &self.delta {
            out.insert(q.clone());
            out.insert(t.next.clone());
        }
        out
    }

    /// All tape symbols mentioned anywhere (input alphabet ∪ written
    /// symbols ∪ blank).
    pub fn tape_alphabet(&self) -> BTreeSet<Sym> {
        let mut out = self.input_alphabet.clone();
        out.insert(BLANK);
        for ((_, read), t) in &self.delta {
            out.insert(*read);
            out.insert(t.write);
        }
        out
    }

    /// The transition table.
    pub fn transitions(&self) -> impl Iterator<Item = (&State, Sym, &Transition)> {
        self.delta.iter().map(|((q, a), t)| (q, *a, t))
    }

    /// Look up `δ(state, symbol)`.
    pub fn transition(&self, state: &str, read: Sym) -> Option<&Transition> {
        self.delta.get(&(state.to_string(), read))
    }

    /// Run the machine on `input`, with a step budget.
    pub fn run(&self, input: &str, fuel: usize) -> Result<TmOutcome, TmError> {
        for c in input.chars() {
            if !self.input_alphabet.contains(&c) {
                return Err(TmError::BadInputSymbol(c));
            }
        }
        let mut tape: Vec<Sym> = input.chars().collect();
        if tape.is_empty() {
            tape.push(BLANK);
        }
        let mut head: usize = 0;
        let mut state = self.start.clone();
        for steps in 0..fuel {
            if state == self.accept {
                return Ok(TmOutcome::Accept { steps });
            }
            let read = tape[head];
            let t = match self.delta.get(&(state.clone(), read)) {
                Some(t) => t.clone(),
                None => return Ok(TmOutcome::Reject { steps }),
            };
            tape[head] = t.write;
            state = t.next;
            match t.movement {
                Move::Left => {
                    if head == 0 {
                        return Err(TmError::FellOffLeft);
                    }
                    head -= 1;
                }
                Move::Right => {
                    head += 1;
                    if head == tape.len() {
                        tape.push(BLANK);
                    }
                }
                Move::Stay => {}
            }
        }
        if state == self.accept {
            return Ok(TmOutcome::Accept { steps: fuel });
        }
        Err(TmError::OutOfFuel { steps: fuel })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn even_as_accepts_even_counts() {
        let m = machines::even_as();
        assert!(m.run("", 100).unwrap().accepted());
        assert!(m.run("aa", 100).unwrap().accepted());
        assert!(m.run("abab", 100).unwrap().accepted());
        assert!(m.run("aba", 100).unwrap().accepted());
        assert!(!m.run("a", 100).unwrap().accepted());
        assert!(!m.run("aaab", 100).unwrap().accepted());
    }

    #[test]
    fn anbn_accepts_balanced() {
        let m = machines::a_n_b_n();
        assert!(m.run("ab", 1000).unwrap().accepted());
        assert!(m.run("aabb", 1000).unwrap().accepted());
        assert!(m.run("aaabbb", 2000).unwrap().accepted());
        assert!(!m.run("aab", 1000).unwrap().accepted());
        assert!(!m.run("ba", 1000).unwrap().accepted());
        assert!(!m.run("abab", 1000).unwrap().accepted());
    }

    #[test]
    fn contains_ab_scans() {
        let m = machines::contains_ab();
        assert!(m.run("ab", 100).unwrap().accepted());
        assert!(m.run("bbab", 100).unwrap().accepted());
        assert!(!m.run("ba", 100).unwrap().accepted());
        assert!(!m.run("bbb", 100).unwrap().accepted());
        assert!(!m.run("a", 100).unwrap().accepted());
    }

    #[test]
    fn bad_input_symbol_rejected() {
        let m = machines::even_as();
        assert!(matches!(
            m.run("xyz", 100),
            Err(TmError::BadInputSymbol('x'))
        ));
    }

    #[test]
    fn fuel_exhaustion_detected() {
        // spin forever in place
        let m = TuringMachine::new("spin", ['a'], "q0", "acc").with_rule(
            "q0",
            'a',
            "q0",
            'a',
            Move::Stay,
        );
        assert!(matches!(
            m.run("a", 50),
            Err(TmError::OutOfFuel { steps: 50 })
        ));
    }

    #[test]
    fn metadata_accessors() {
        let m = machines::a_n_b_n();
        assert!(m.states().contains("q0"));
        assert!(m.tape_alphabet().contains(&BLANK));
        assert!(m.transitions().count() > 0);
        assert!(m.transition("q0", 'a').is_some());
        assert_eq!(m.name(), "a^n b^n");
    }
}

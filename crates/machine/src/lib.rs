//! # rtx-machine — Turing machines and word structures
//!
//! The substrate for the paper's Theorem 18: deterministic single-tape
//! Turing machines with a direct interpreter (the ground truth the
//! Dedalus simulation is validated against), and *word structures* — the
//! relational encoding of strings over `S_Σ = {Tape, Begin, End} ∪ Σ`
//! with the paper's spurious-tuple case analysis.

#![warn(missing_docs)]

pub mod machines;
mod tm;
mod word;

pub use tm::{Move, State, Sym, TmError, TmOutcome, Transition, TuringMachine, BLANK};
pub use word::{decode_word, encode_word, letter_rel, position, word_schema, WordShape};

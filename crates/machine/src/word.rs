//! Word structures: strings as relational instances (paper, Section 8).
//!
//! A string `s = a1 … ap` over alphabet `Σ` is the instance `I_s` over
//! the schema `S_Σ = {Tape/2, Begin/1, End/1} ∪ {a/1 | a ∈ Σ}` with facts
//! `Tape(1,2), …, Tape(p−1,p), Begin(1), End(p), a1(1), …, ap(p)` —
//! Thomas's *word structures*. The paper considers strings of length ≥ 2.
//!
//! Positions are encoded as symbols `p1 … pp` rather than integers so
//! that they can never collide with the integer timestamps Dedalus uses
//! to mint fresh tape cells (see `rtx-dedalus`; the paper handles the
//! same collision with a separate `TapeExt` predicate — our value-typed
//! encoding achieves the separation structurally).

use crate::tm::Sym;
use rtx_relational::{Fact, Instance, RelError, RelName, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Relation name for a letter predicate.
pub fn letter_rel(a: Sym) -> RelName {
    RelName::new(format!("sym_{a}"))
}

/// The word-structure schema for an alphabet.
pub fn word_schema(alphabet: impl IntoIterator<Item = Sym>) -> Schema {
    let mut s = Schema::new()
        .with("Tape", 2)
        .with("Begin", 1)
        .with("End", 1);
    for a in alphabet {
        s = s.with(letter_rel(a), 1);
    }
    s
}

/// The value naming position `i` (1-based).
pub fn position(i: usize) -> Value {
    Value::sym(format!("p{i}"))
}

/// Encode a string (length ≥ 2) as a word structure.
pub fn encode_word(s: &str, alphabet: impl IntoIterator<Item = Sym>) -> Result<Instance, RelError> {
    let chars: Vec<Sym> = s.chars().collect();
    let schema = word_schema(alphabet);
    let mut out = Instance::empty(schema);
    if chars.len() < 2 {
        // the paper restricts to length ≥ 2; shorter strings still encode
        // (Begin = End for length 1), but callers should prefer ≥ 2.
    }
    let p = chars.len();
    for i in 1..p {
        out.insert_fact(Fact::new(
            "Tape",
            Tuple::new(vec![position(i), position(i + 1)]),
        ))?;
    }
    if p >= 1 {
        out.insert_fact(Fact::new("Begin", Tuple::new(vec![position(1)])))?;
        out.insert_fact(Fact::new("End", Tuple::new(vec![position(p)])))?;
    }
    for (i, a) in chars.iter().enumerate() {
        out.insert_fact(Fact::new(letter_rel(*a), Tuple::new(vec![position(i + 1)])))?;
    }
    Ok(out)
}

/// The result of inspecting an instance over a word schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WordShape {
    /// A proper word structure representing this string.
    Word(String),
    /// Contains a word structure (a fully-labeled `Tape` path from a
    /// `Begin` to an `End` element) but violates one of the paper's
    /// structural conditions (a)–(d): spurious facts.
    Spurious,
    /// Does not contain a word structure at all.
    NotAWord,
}

/// Decode / classify an instance per the paper's case analysis.
///
/// Conditions checked once a word path exists:
/// (a) `Begin` or `End` not a singleton; (b) an element labeled by two
/// letters; (c) `Tape` not a plain successor path from begin to end
/// (branching, or an on-tape element unreachable from `Begin`);
/// (d) a phantom element (unlabeled, or off the tape).
pub fn decode_word(instance: &Instance, alphabet: &BTreeSet<Sym>) -> WordShape {
    let begin: Vec<Value> = rel_values(instance, "Begin");
    let end: Vec<Value> = rel_values(instance, "End");
    let tape: Vec<(Value, Value)> = instance
        .relation(&"Tape".into())
        .map(|r| {
            r.iter()
                .map(|t| (*t.get(0).unwrap(), *t.get(1).unwrap()))
                .collect()
        })
        .unwrap_or_default();

    // labels
    let mut labels: BTreeMap<Value, Vec<Sym>> = BTreeMap::new();
    for a in alphabet {
        for v in rel_values(instance, letter_rel(*a).as_str()) {
            labels.entry(v).or_default().push(*a);
        }
    }

    // does a labeled path from some Begin to some End exist?
    let succ: BTreeMap<&Value, Vec<&Value>> = {
        let mut m: BTreeMap<&Value, Vec<&Value>> = BTreeMap::new();
        for (a, b) in &tape {
            m.entry(a).or_default().push(b);
        }
        m
    };
    let labeled = |v: &Value| labels.contains_key(v);
    let mut contains_word = false;
    let mut witness: Option<Vec<Value>> = None;
    for b in &begin {
        if !labeled(b) {
            continue;
        }
        // DFS along labeled tape elements
        let mut stack = vec![(*b, vec![*b])];
        let mut visited: BTreeSet<Value> = BTreeSet::new();
        while let Some((v, path)) = stack.pop() {
            if end.contains(&v) {
                contains_word = true;
                witness = Some(path.clone());
                break;
            }
            if !visited.insert(v) {
                continue;
            }
            for next in succ.get(&v).into_iter().flatten() {
                if labeled(next) {
                    let mut p = path.clone();
                    p.push(*(*next));
                    stack.push((*(*next), p));
                }
            }
        }
        if contains_word {
            break;
        }
    }
    if !contains_word {
        return WordShape::NotAWord;
    }

    // (a) Begin/End singletons
    if begin.len() != 1 || end.len() != 1 {
        return WordShape::Spurious;
    }
    // (b) unique labels
    if labels.values().any(|ls| ls.len() > 1) {
        return WordShape::Spurious;
    }
    // (c) Tape must be a simple successor path: out/in-degree ≤ 1, and
    // every tape element reachable from Begin.
    let mut outdeg: BTreeMap<&Value, usize> = BTreeMap::new();
    let mut indeg: BTreeMap<&Value, usize> = BTreeMap::new();
    let mut tape_elems: BTreeSet<&Value> = BTreeSet::new();
    for (a, b) in &tape {
        *outdeg.entry(a).or_default() += 1;
        *indeg.entry(b).or_default() += 1;
        tape_elems.insert(a);
        tape_elems.insert(b);
    }
    if outdeg.values().any(|&d| d > 1) || indeg.values().any(|&d| d > 1) {
        return WordShape::Spurious;
    }
    let mut reach: BTreeSet<&Value> = BTreeSet::new();
    let mut frontier = vec![&begin[0]];
    while let Some(v) = frontier.pop() {
        if !reach.insert(v) {
            continue;
        }
        for n in succ.get(v).into_iter().flatten() {
            frontier.push(n);
        }
    }
    if tape_elems.iter().any(|v| !reach.contains(*v)) {
        return WordShape::Spurious;
    }
    // (d) phantom elements: everything in the active domain must be
    // labeled and on the tape (or be the single begin=endpoint).
    let adom = instance.adom();
    for v in &adom {
        if !labeled(v) {
            return WordShape::Spurious;
        }
        if !tape_elems.contains(v) {
            // a single-letter word has an empty tape; tolerate only then
            if !tape.is_empty() || adom.len() > 1 {
                return WordShape::Spurious;
            }
        }
    }

    // reconstruct the string from the witness path
    let path = witness.expect("set when contains_word");
    // the witness must cover the whole tape to be the word itself
    if path.len() != tape_elems.len().max(1) {
        return WordShape::Spurious;
    }
    let s: String = path.iter().map(|v| labels[v][0]).collect();
    WordShape::Word(s)
}

fn rel_values(instance: &Instance, rel: &str) -> Vec<Value> {
    instance
        .relation(&rel.into())
        .map(|r| r.iter().map(|t| *t.get(0).unwrap()).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::fact;

    fn ab() -> BTreeSet<Sym> {
        ['a', 'b'].into_iter().collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        for w in ["ab", "aab", "baba", "bb"] {
            let i = encode_word(w, ['a', 'b']).unwrap();
            assert_eq!(
                decode_word(&i, &ab()),
                WordShape::Word(w.to_string()),
                "{w}"
            );
        }
    }

    #[test]
    fn encoding_shape() {
        let i = encode_word("ab", ['a', 'b']).unwrap();
        assert!(i.contains_fact(&Fact::new("Begin", Tuple::new(vec![position(1)]))));
        assert!(i.contains_fact(&Fact::new("End", Tuple::new(vec![position(2)]))));
        assert!(i.contains_fact(&Fact::new(
            "Tape",
            Tuple::new(vec![position(1), position(2)])
        )));
        assert!(i.contains_fact(&Fact::new(letter_rel('a'), Tuple::new(vec![position(1)]))));
        assert_eq!(i.fact_count(), 5);
    }

    #[test]
    fn not_a_word_without_path() {
        let mut i = encode_word("ab", ['a', 'b']).unwrap();
        // cut the tape
        i.remove_fact(&Fact::new(
            "Tape",
            Tuple::new(vec![position(1), position(2)]),
        ));
        assert_eq!(decode_word(&i, &ab()), WordShape::NotAWord);
        // empty instance
        let empty = Instance::empty(word_schema(['a', 'b']));
        assert_eq!(decode_word(&empty, &ab()), WordShape::NotAWord);
    }

    #[test]
    fn spurious_double_begin() {
        let mut i = encode_word("ab", ['a', 'b']).unwrap();
        i.insert_fact(Fact::new("Begin", Tuple::new(vec![position(2)])))
            .unwrap();
        assert_eq!(decode_word(&i, &ab()), WordShape::Spurious);
    }

    #[test]
    fn spurious_double_label() {
        let mut i = encode_word("ab", ['a', 'b']).unwrap();
        i.insert_fact(Fact::new(letter_rel('b'), Tuple::new(vec![position(1)])))
            .unwrap();
        assert_eq!(decode_word(&i, &ab()), WordShape::Spurious);
    }

    #[test]
    fn spurious_branching_tape() {
        let mut i = encode_word("aab", ['a', 'b']).unwrap();
        // add a branch 1 -> 3
        i.insert_fact(Fact::new(
            "Tape",
            Tuple::new(vec![position(1), position(3)]),
        ))
        .unwrap();
        assert_eq!(decode_word(&i, &ab()), WordShape::Spurious);
    }

    #[test]
    fn spurious_phantom_element() {
        let mut i = encode_word("ab", ['a', 'b']).unwrap();
        i.insert_fact(fact!("sym_a", "ghost")).unwrap(); // labeled but off-tape
        assert_eq!(decode_word(&i, &ab()), WordShape::Spurious);
        let mut j = encode_word("ab", ['a', 'b']).unwrap();
        j.insert_fact(Fact::new(
            "Tape",
            Tuple::new(vec![position(2), Value::sym("x")]),
        ))
        .unwrap(); // on-tape but unlabeled
        assert_eq!(decode_word(&j, &ab()), WordShape::Spurious);
    }

    #[test]
    fn spurious_unreachable_tape_component() {
        let mut i = encode_word("ab", ['a', 'b']).unwrap();
        // a detached labeled tape pair
        i.insert_fact(Fact::new(
            "Tape",
            Tuple::new(vec![Value::sym("u"), Value::sym("v")]),
        ))
        .unwrap();
        i.insert_fact(Fact::new(
            letter_rel('a'),
            Tuple::new(vec![Value::sym("u")]),
        ))
        .unwrap();
        i.insert_fact(Fact::new(
            letter_rel('a'),
            Tuple::new(vec![Value::sym("v")]),
        ))
        .unwrap();
        assert_eq!(decode_word(&i, &ab()), WordShape::Spurious);
    }

    #[test]
    fn positions_are_symbols_not_ints() {
        assert!(position(3).as_sym().is_some());
    }
}

//! Sharded, round-synchronous network execution.
//!
//! The paper's runs interleave heartbeat and delivery transitions one at
//! a time; [`crate::run`] realizes that faithfully but steps a single
//! node per global transition, so nothing exploits multicore. This
//! module adds a **round-synchronous** executor whose unit of
//! parallelism is a round:
//!
//! 1. **Heartbeat phase** — every node performs a heartbeat transition.
//!    A heartbeat reads only the node's own state, so all heartbeats of
//!    a round are independent and run in parallel across shards. Sent
//!    facts land in per-node outboxes.
//! 2. **Barrier merge** — the coordinator appends outboxes to the
//!    destination buffers in a fixed (sender, edge) order, so buffer
//!    contents are independent of shard interleaving.
//! 3. **Delivery phase** — every node whose buffer was nonempty at the
//!    barrier delivers exactly one buffered fact (the oldest under
//!    [`RoundScheduling::Fifo`]; a seeded-random one under
//!    [`RoundScheduling::Random`]). The delivered facts are removed
//!    *before* the phase, so deliveries of a round are independent too
//!    and run in parallel; their outboxes merge at the next barrier.
//!
//! Every such run is a legal run of the paper's semantics (a particular
//! fair interleaving: deliveries of a round are simply scheduled after
//! all its heartbeats), and it is **deterministic by construction**:
//! [`ExecMode::Sharded`] with any thread count and any [`ShardPlan`]
//! produces the same transitions, in the same order, as
//! [`ExecMode::Serial`] — bit-identical outputs, final configuration
//! and [`TransitionLog`]. The invariant is property-tested in the
//! workspace suite `tests/sharded.rs` (and in this module's tests).
//!
//! The thread count honours the `RTX_NET_THREADS` environment variable
//! (see [`ExecMode::sharded_auto`]).

use crate::config::{
    wipe_memory_relations, Configuration, TransitionKind, TransitionLog, TransitionRecord,
};
use crate::error::NetError;
use crate::fault::{FaultHook, NodeFault};
use crate::partition::HorizontalPartition;
use crate::run::{RunBudget, RunOutcome};
use crate::topology::{Network, NodeId};
use rtx_obs::trace;
use rtx_relational::{Fact, Instance, Relation};
use rtx_transducer::Transducer;
use std::collections::BTreeMap;
use std::sync::mpsc;

/// How rounds are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded reference executor (the ablation baseline): the
    /// same round-synchronous algorithm, all steps on the caller's
    /// thread.
    Serial,
    /// Multi-threaded executor: node states are partitioned across
    /// `threads` worker shards; each phase's transitions are computed in
    /// parallel and merged deterministically.
    Sharded {
        /// Number of worker threads (clamped to at least 1 and at most
        /// the node count).
        threads: usize,
    },
}

impl ExecMode {
    /// Sharded execution with an automatically chosen thread count: the
    /// `RTX_NET_THREADS` environment variable when set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    pub fn sharded_auto() -> ExecMode {
        ExecMode::Sharded {
            threads: auto_threads(),
        }
    }

    /// The configured thread count (1 for [`ExecMode::Serial`]).
    pub fn threads(&self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Sharded { threads } => (*threads).max(1),
        }
    }
}

/// The `RTX_NET_THREADS` override, else available parallelism, else 1.
fn auto_threads() -> usize {
    rtx_core::env::parse_positive_usize("RTX_NET_THREADS").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// How nodes are assigned to worker shards.
///
/// The assignment affects load balance only — never results: the
/// barrier merge is in node order regardless of which shard computed a
/// step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPlan {
    /// Contiguous blocks of the node order (topology-aware for
    /// line/ring/grid namings, where adjacent nodes tend to be adjacent
    /// in the order).
    #[default]
    Contiguous,
    /// Node `i` goes to shard `i mod shards`.
    RoundRobin,
    /// FNV-1a hash of the node id modulo the shard count.
    Hash,
}

impl ShardPlan {
    /// The shard owning node `idx` (of `n_nodes`) under `shards` shards.
    pub fn assign(&self, idx: usize, node: &NodeId, n_nodes: usize, shards: usize) -> usize {
        debug_assert!(idx < n_nodes);
        let shards = shards.max(1);
        match self {
            ShardPlan::Contiguous => idx * shards / n_nodes.max(1),
            ShardPlan::RoundRobin => idx % shards,
            ShardPlan::Hash => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in node.to_string().bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                (h % shards as u64) as usize
            }
        }
    }
}

/// Which buffered fact each node delivers per round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoundScheduling {
    /// Deliver the oldest buffered fact (FIFO buffers — the
    /// round-synchronous runs used in the proof of Theorem 16).
    #[default]
    Fifo,
    /// Deliver a uniformly random buffered fact, drawn from a splitmix
    /// stream keyed by `(seed, round, node)` — deterministic for a given
    /// seed and independent of thread count, but exercising non-FIFO
    /// reorderings.
    Random {
        /// Stream seed.
        seed: u64,
    },
}

impl RoundScheduling {
    /// The buffer index to deliver at `node_idx` in `round` from a
    /// buffer of length `len` (which must be nonzero).
    pub(crate) fn pick(&self, round: usize, node_idx: usize, len: usize) -> usize {
        match self {
            RoundScheduling::Fifo => 0,
            RoundScheduling::Random { seed } => {
                let mut x = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((round as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
                    .wrapping_add((node_idx as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
                // splitmix64 finalizer
                x ^= x >> 30;
                x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                (x % len as u64) as usize
            }
        }
    }
}

/// How many buffered facts each node may deliver per round.
///
/// Batching amortizes the per-round barrier cost over up to `k`
/// delivery transitions: a round becomes one heartbeat phase followed
/// by up to `k` delivery sub-phases, each delivering one fact per node
/// with mail in deterministic prefix order. Every batched run is still
/// a legal run of the paper's one-transition-at-a-time semantics (the
/// sub-phases are just scheduled back to back), and serial ≡ sharded
/// is preserved by the same barrier construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// One delivery per node per round (the PR 3 behavior).
    #[default]
    One,
    /// Up to `k` deliveries per node per round (clamped to ≥ 1).
    Batch(usize),
}

impl DeliveryPolicy {
    /// Maximum delivery sub-phases per round.
    pub fn per_round(&self) -> usize {
        match self {
            DeliveryPolicy::One => 1,
            DeliveryPolicy::Batch(k) => (*k).max(1),
        }
    }
}

/// Options for a sharded run.
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Serial reference or sharded execution.
    pub mode: ExecMode,
    /// Node-to-shard assignment.
    pub plan: ShardPlan,
    /// Per-round delivery choice.
    pub scheduling: RoundScheduling,
    /// Per-round delivery batching.
    pub delivery: DeliveryPolicy,
    /// Record the full [`TransitionLog`] (costly on long runs; used by
    /// the determinism property tests).
    pub record_log: bool,
}

impl Default for ShardOptions {
    /// Auto-sharded FIFO execution. Resolves the thread count (env
    /// read + parallelism probe) at construction — inside tight loops
    /// prefer [`ShardOptions::serial`] / [`ShardOptions::sharded`],
    /// which don't probe.
    fn default() -> Self {
        ShardOptions {
            mode: ExecMode::sharded_auto(),
            ..ShardOptions::serial()
        }
    }
}

impl ShardOptions {
    /// The serial reference configuration (FIFO, one delivery per
    /// round, no log).
    pub fn serial() -> Self {
        ShardOptions {
            mode: ExecMode::Serial,
            plan: ShardPlan::Contiguous,
            scheduling: RoundScheduling::Fifo,
            delivery: DeliveryPolicy::One,
            record_log: false,
        }
    }

    /// Sharded execution with an explicit thread count.
    pub fn sharded(threads: usize) -> Self {
        ShardOptions {
            mode: ExecMode::Sharded { threads },
            ..ShardOptions::serial()
        }
    }

    /// Replace the shard plan.
    pub fn with_plan(mut self, plan: ShardPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replace the per-round delivery scheduling.
    pub fn with_scheduling(mut self, scheduling: RoundScheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Replace the per-round delivery batching policy.
    pub fn with_delivery(mut self, delivery: DeliveryPolicy) -> Self {
        self.delivery = delivery;
        self
    }

    /// Record the transition log.
    pub fn with_log(mut self) -> Self {
        self.record_log = true;
        self
    }
}

/// The result of a round-synchronous run.
#[derive(Clone, Debug)]
pub struct ShardRunOutcome {
    /// The observable outcome, in the same shape as [`crate::run`].
    pub outcome: RunOutcome,
    /// Rounds executed (each round is one heartbeat phase and at most
    /// one delivery phase).
    pub rounds: usize,
    /// Worker threads actually used (1 for [`ExecMode::Serial`]).
    pub threads_used: usize,
    /// High-water mark of a single phase's job count — the active
    /// frontier. The dense round-synchronous executor heartbeats every
    /// up node each round, so here this is typically the node count;
    /// the sparse executor's ([`crate::sparse`]) whole point is keeping
    /// it small.
    pub max_active: usize,
    /// The transition log, when [`ShardOptions::record_log`] was set.
    pub log: Option<TransitionLog>,
}

/// One computed local transition, before the barrier merge.
pub(crate) struct StepOut {
    pub(crate) output: Relation,
    pub(crate) sent: Vec<Fact>,
    pub(crate) state_changed: bool,
    /// Trace events recorded while computing this step (empty below
    /// `RTX_TRACE=full`). Drained from the executing thread's buffer
    /// per job, so the coordinator can splice them back in node order
    /// at the barrier — the merged trace is deterministic regardless
    /// of which shard ran the job.
    pub(crate) events: Vec<rtx_obs::Event>,
}

/// What a phase job does at its node.
#[derive(Clone, Debug)]
pub(crate) enum JobKind {
    /// A heartbeat transition.
    Heartbeat,
    /// A delivery transition of the given fact.
    Deliver(Fact),
    /// A fault event, not a paper transition: clear the node's memory
    /// relations (restart under the persistent-EDB semantics). Produces
    /// no output and no sends, and is excluded from step counts and the
    /// transition log.
    WipeMemory,
}

/// A phase job: the target node index plus what to do there.
pub(crate) type Job = (usize, JobKind);

/// Phase execution backends. Both compute, for each job `(idx, rcv)`,
/// the local transition of node `idx` and update that node's state;
/// the coordinator merges the results identically for both, which is
/// what makes sharded ≡ serial hold by construction. Shared with the
/// event-driven executor in [`crate::sparse`], whose coordinator feeds
/// the same engines much smaller phases.
pub(crate) enum Engine<'scope> {
    Serial {
        states: Vec<Instance>,
        transducer: &'scope Transducer,
    },
    Sharded(ShardedEngine<'scope>),
}

pub(crate) struct ShardedEngine<'scope> {
    /// Shard owning each node index.
    owner: Vec<usize>,
    /// Per-worker job senders.
    to_workers: Vec<mpsc::Sender<Vec<Job>>>,
    /// Shared reply channel.
    from_workers: mpsc::Receiver<WorkerReply>,
    /// Scoped worker handles (joined on drop of the scope).
    #[allow(dead_code)]
    handles: Vec<std::thread::ScopedJoinHandle<'scope, ()>>,
}

enum WorkerReply {
    /// Phase results, or the failing node's index plus its error.
    Phase(Result<Vec<(usize, StepOut)>, (usize, NetError)>),
    Final(Vec<(usize, Instance)>),
}

impl Engine<'_> {
    /// Execute one phase. Returns the step results keyed by node index.
    pub(crate) fn execute(&mut self, jobs: Vec<Job>) -> Result<BTreeMap<usize, StepOut>, NetError> {
        match self {
            Engine::Serial { states, transducer } => {
                let mut out = BTreeMap::new();
                for (idx, received) in jobs {
                    let res = step_node(transducer, &mut states[idx], received, idx)?;
                    out.insert(idx, res);
                }
                Ok(out)
            }
            Engine::Sharded(sh) => {
                let mut batches: Vec<Vec<Job>> = vec![Vec::new(); sh.to_workers.len()];
                for (idx, received) in jobs {
                    batches[sh.owner[idx]].push((idx, received));
                }
                for (tx, batch) in sh.to_workers.iter().zip(batches) {
                    tx.send(batch).map_err(|_| worker_gone())?;
                }
                let mut out = BTreeMap::new();
                // Keep the error of the lowest node index, so the
                // reported error matches the serial engine's (which
                // fails at the first erroring job in node order)
                // regardless of worker timing.
                let mut first_err: Option<(usize, NetError)> = None;
                for _ in 0..sh.to_workers.len() {
                    match sh.from_workers.recv().map_err(|_| worker_gone())? {
                        WorkerReply::Phase(Ok(results)) => {
                            for (idx, res) in results {
                                out.insert(idx, res);
                            }
                        }
                        WorkerReply::Phase(Err((idx, e))) => {
                            if first_err.as_ref().is_none_or(|(i, _)| idx < *i) {
                                first_err = Some((idx, e));
                            }
                        }
                        WorkerReply::Final(_) => return Err(worker_gone()),
                    }
                }
                match first_err {
                    Some((_, e)) => Err(e),
                    None => Ok(out),
                }
            }
        }
    }

    /// Tear down the engine and return the final states, in node order.
    pub(crate) fn finish(self, n_nodes: usize) -> Result<Vec<Instance>, NetError> {
        match self {
            Engine::Serial { states, .. } => Ok(states),
            Engine::Sharded(sh) => {
                drop(sh.to_workers); // workers see the hangup and reply Final
                let mut slots: Vec<Option<Instance>> = (0..n_nodes).map(|_| None).collect();
                for _ in 0..sh.handles.len() {
                    match sh.from_workers.recv().map_err(|_| worker_gone())? {
                        WorkerReply::Final(states) => {
                            for (idx, st) in states {
                                slots[idx] = Some(st);
                            }
                        }
                        WorkerReply::Phase(_) => return Err(worker_gone()),
                    }
                }
                slots
                    .into_iter()
                    .map(|s| s.ok_or_else(worker_gone))
                    .collect()
            }
        }
    }
}

pub(crate) fn worker_gone() -> NetError {
    NetError::Topology("sharded runtime: a worker shard terminated unexpectedly".into())
}

/// Perform one job on `state` in place, returning the observable
/// parts. `idx` is the node index, carried only by the trace events.
pub(crate) fn step_node(
    transducer: &Transducer,
    state: &mut Instance,
    kind: JobKind,
    idx: usize,
) -> Result<StepOut, NetError> {
    let tracing = rtx_obs::tracing();
    let mark = if tracing { trace::mark() } else { 0 };
    let span_name = match &kind {
        JobKind::Heartbeat => "step.heartbeat",
        JobKind::Deliver(_) => "step.deliver",
        JobKind::WipeMemory => "step.wipe",
    };
    if tracing {
        trace::begin("net", span_name, &[("node", idx as i64)]);
    }
    let mut out = step_node_inner(transducer, state, kind)?;
    if tracing {
        if !out.sent.is_empty() {
            trace::instant(
                "net",
                "sent",
                &[("node", idx as i64), ("facts", out.sent.len() as i64)],
            );
        }
        trace::end("net", span_name);
        out.events = trace::take_since(mark);
    }
    Ok(out)
}

fn step_node_inner(
    transducer: &Transducer,
    state: &mut Instance,
    kind: JobKind,
) -> Result<StepOut, NetError> {
    let mut rcv = Instance::empty(transducer.schema().message().clone());
    match kind {
        JobKind::Heartbeat => {}
        JobKind::Deliver(f) => {
            rcv.insert_fact(f).map_err(NetError::Rel)?;
        }
        JobKind::WipeMemory => {
            let cleared = wipe_memory_relations(transducer, state).map_err(NetError::Rel)?;
            return Ok(StepOut {
                output: Relation::empty(transducer.schema().output_arity()),
                sent: Vec::new(),
                state_changed: cleared,
                events: Vec::new(),
            });
        }
    }
    let res = transducer.step(state, &rcv).map_err(NetError::Eval)?;
    let state_changed = res.new_state != *state;
    *state = res.new_state;
    Ok(StepOut {
        output: res.output,
        sent: res.sent.facts().collect(),
        state_changed,
        events: Vec::new(),
    })
}

/// Drive a round-synchronous run of `(net, transducer)` from the
/// initial configuration for `partition`.
///
/// See the module docs for the round structure. The budget's
/// `max_steps` counts individual transitions exactly as [`crate::run`]
/// does; a phase is truncated (in node order) rather than overshooting
/// the budget, so `steps ≤ max_steps` always holds.
pub fn run_sharded(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
) -> Result<ShardRunOutcome, NetError> {
    let cfg = Configuration::initial(net, transducer, partition)?;
    run_sharded_from(net, transducer, cfg, opts, budget)
}

/// Drive a round-synchronous run from an explicit configuration.
pub fn run_sharded_from(
    net: &Network,
    transducer: &Transducer,
    cfg: Configuration,
    opts: &ShardOptions,
    budget: &RunBudget,
) -> Result<ShardRunOutcome, NetError> {
    run_sharded_inner(net, transducer, cfg, opts, budget, None)
}

/// [`run_sharded`] under fault injection: every sent copy's fate and
/// every node's per-round status are decided by `faults` (see
/// [`crate::fault`]). The hook is consulted only at the coordinator's
/// deterministic merge points, so serial and sharded execution remain
/// bit-identical under any fault hook, any thread count, and any
/// [`DeliveryPolicy`].
pub fn run_sharded_faulted(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
    faults: &mut dyn FaultHook,
) -> Result<ShardRunOutcome, NetError> {
    let cfg = Configuration::initial(net, transducer, partition)?;
    run_sharded_faulted_from(net, transducer, cfg, opts, budget, faults)
}

/// [`run_sharded_faulted`] from an explicit configuration.
pub fn run_sharded_faulted_from(
    net: &Network,
    transducer: &Transducer,
    cfg: Configuration,
    opts: &ShardOptions,
    budget: &RunBudget,
    faults: &mut dyn FaultHook,
) -> Result<ShardRunOutcome, NetError> {
    run_sharded_inner(net, transducer, cfg, opts, budget, Some(faults))
}

/// A configuration decomposed into indexed parallel arrays: node ids,
/// states, buffers, and adjacency (neighbor indices).
pub(crate) type Decomposed = (Vec<NodeId>, Vec<Instance>, Vec<Vec<Fact>>, Vec<Vec<usize>>);

/// Validate `cfg` against `net` and decompose it into the indexed shape
/// the round executors work on. The adjacency lists are in node-index
/// order; BTreeSet neighbor order coincides with ascending node order,
/// matching the serial drivers' enqueue order. Shared by the
/// round-synchronous and the sparse executor.
pub(crate) fn decompose(net: &Network, cfg: Configuration) -> Result<Decomposed, NetError> {
    let parts = cfg.into_parts();
    if parts.len() != net.len() || !parts.iter().all(|(n, _, _)| net.contains(n)) {
        return Err(NetError::Topology(
            "configuration nodes differ from the network's".into(),
        ));
    }
    let nodes: Vec<NodeId> = parts.iter().map(|(n, _, _)| *n).collect();
    let mut states: Vec<Instance> = Vec::with_capacity(parts.len());
    let mut buffers: Vec<Vec<Fact>> = Vec::with_capacity(parts.len());
    for (_, st, buf) in parts {
        states.push(st);
        buffers.push(buf);
    }
    let index: BTreeMap<&NodeId, usize> = nodes.iter().enumerate().map(|(i, n)| (n, i)).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| net.neighbors(n).map(|m| index[m]).collect())
        .collect();
    Ok((nodes, states, buffers, adj))
}

/// Spawn the worker shards for a sharded run inside `scope` and return
/// the engine facade. Callers with `threads <= 1` should construct
/// [`Engine::Serial`] directly instead.
pub(crate) fn spawn_sharded_engine<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    transducer: &'env Transducer,
    nodes: &[NodeId],
    states: Vec<Instance>,
    plan: ShardPlan,
    threads: usize,
) -> Engine<'scope> {
    let owner: Vec<usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| plan.assign(i, n, nodes.len(), threads))
        .collect();
    let mut shard_states: Vec<Vec<(usize, Instance)>> = vec![Vec::new(); threads];
    for (i, st) in states.into_iter().enumerate() {
        shard_states[owner[i]].push((i, st));
    }
    let (reply_tx, from_workers) = mpsc::channel();
    let mut to_workers = Vec::with_capacity(threads);
    let mut handles = Vec::with_capacity(threads);
    for shard in shard_states {
        let (job_tx, job_rx) = mpsc::channel::<Vec<Job>>();
        to_workers.push(job_tx);
        let reply_tx = reply_tx.clone();
        handles.push(scope.spawn(move || worker_loop(transducer, shard, job_rx, reply_tx)));
    }
    Engine::Sharded(ShardedEngine {
        owner,
        to_workers,
        from_workers,
        handles,
    })
}

fn run_sharded_inner(
    net: &Network,
    transducer: &Transducer,
    cfg: Configuration,
    opts: &ShardOptions,
    budget: &RunBudget,
    faults: Option<&mut dyn FaultHook>,
) -> Result<ShardRunOutcome, NetError> {
    let (nodes, states, buffers, adj) = decompose(net, cfg)?;
    let threads = opts.mode.threads().min(nodes.len()).max(1);
    match opts.mode {
        ExecMode::Sharded { .. } if threads > 1 => std::thread::scope(|scope| {
            let engine =
                spawn_sharded_engine(scope, transducer, &nodes, states, opts.plan, threads);
            drive(
                net, transducer, &nodes, &adj, buffers, engine, threads, opts, budget, faults,
            )
        }),
        _ => {
            let engine = Engine::Serial { states, transducer };
            drive(
                net, transducer, &nodes, &adj, buffers, engine, 1, opts, budget, faults,
            )
        }
    }
}

/// A worker shard: owns the states of its nodes for the whole run,
/// executes its slice of each phase, and hands the states back when the
/// job channel closes.
fn worker_loop(
    transducer: &Transducer,
    mut shard: Vec<(usize, Instance)>,
    jobs: mpsc::Receiver<Vec<Job>>,
    replies: mpsc::Sender<WorkerReply>,
) {
    let mut slot: BTreeMap<usize, usize> = shard
        .iter()
        .enumerate()
        .map(|(pos, (idx, _))| (*idx, pos))
        .collect();
    while let Ok(batch) = jobs.recv() {
        let mut results = Vec::with_capacity(batch.len());
        let mut err = None;
        for (idx, received) in batch {
            let pos = match slot.get(&idx) {
                Some(&p) => p,
                None => {
                    err = Some((idx, worker_gone()));
                    break;
                }
            };
            match step_node(transducer, &mut shard[pos].1, received, idx) {
                Ok(res) => results.push((idx, res)),
                Err(e) => {
                    err = Some((idx, e));
                    break;
                }
            }
        }
        let reply = match err {
            Some(e) => WorkerReply::Phase(Err(e)),
            None => WorkerReply::Phase(Ok(results)),
        };
        if replies.send(reply).is_err() {
            return; // coordinator went away
        }
    }
    slot.clear();
    let _ = replies.send(WorkerReply::Final(shard));
}

/// The coordinator loop shared by both engines. All ordering decisions
/// (phase truncation, delivery picks, outbox merge, record order) are
/// made here from engine-independent data, which is why the two engines
/// agree bit for bit.
#[allow(clippy::too_many_arguments)]
fn drive(
    net: &Network,
    transducer: &Transducer,
    nodes: &[NodeId],
    adj: &[Vec<usize>],
    mut buffers: Vec<Vec<Fact>>,
    mut engine: Engine<'_>,
    threads_used: usize,
    opts: &ShardOptions,
    budget: &RunBudget,
    mut faults: Option<&mut dyn FaultHook>,
) -> Result<ShardRunOutcome, NetError> {
    let n = nodes.len();
    let t0 = rtx_obs::counting().then(std::time::Instant::now);
    let arity = transducer.schema().output_arity();
    let mut output = Relation::empty(arity);
    let mut outputs_per_node: BTreeMap<NodeId, Relation> = nodes
        .iter()
        .map(|nd| (*nd, Relation::empty(arity)))
        .collect();
    let mut steps = 0usize;
    let mut heartbeats = 0usize;
    let mut deliveries = 0usize;
    let mut messages_enqueued = 0usize;
    let mut rounds = 0usize;
    let mut max_active = 0usize;
    let mut quiescent = false;
    let mut reached_target = false;
    let mut log = opts.record_log.then(TransitionLog::new);
    // In-flight copies under fault injection: maturity round → the
    // copies released into destination buffers at its start, in the
    // deterministic order the merge produced them.
    let mut held: BTreeMap<u64, Vec<(usize, Fact)>> = BTreeMap::new();
    // Which nodes are down this round (skip heartbeat and delivery).
    let mut down = vec![false; n];
    // Consecutive rounds that executed no transition at all.
    let mut idle_rounds = 0usize;

    // Merge one phase's results at the barrier, in node order: absorb
    // outputs, append outboxes to destination buffers (consulting the
    // fault hook for each copy's fate), build records.
    let merge = |now: u64,
                 jobs: Vec<Job>,
                 results: &mut BTreeMap<usize, StepOut>,
                 buffers: &mut Vec<Vec<Fact>>,
                 held: &mut BTreeMap<u64, Vec<(usize, Fact)>>,
                 faults: &mut Option<&mut dyn FaultHook>,
                 output: &mut Relation,
                 outputs_per_node: &mut BTreeMap<NodeId, Relation>,
                 messages_enqueued: &mut usize,
                 log: &mut Option<TransitionLog>|
     -> Result<bool, NetError> {
        let mut all_quiet = true;
        for (idx, kind) in jobs {
            let mut res = results.remove(&idx).ok_or_else(worker_gone)?;
            trace::splice(std::mem::take(&mut res.events));
            let new_out = !res.output.is_subset(output);
            if res.state_changed || !res.sent.is_empty() || new_out {
                all_quiet = false;
            }
            *output = output.union(&res.output).map_err(NetError::Rel)?;
            let per = outputs_per_node.get_mut(&nodes[idx]).expect("known node");
            *per = per.union(&res.output).map_err(NetError::Rel)?;
            let mut enqueued = 0usize;
            for &d in &adj[idx] {
                match faults {
                    None => {
                        for f in &res.sent {
                            buffers[d].push(f.clone());
                            enqueued += 1;
                        }
                    }
                    Some(fh) => {
                        for (k, f) in res.sent.iter().enumerate() {
                            let fate = fh.on_send(now, idx, d, k, f);
                            if rtx_obs::tracing() {
                                match fate.delays.len() {
                                    0 => trace::instant(
                                        "net",
                                        "fault.drop",
                                        &[("node", idx as i64), ("dst", d as i64)],
                                    ),
                                    1 if fate.delays[0] == 0 => {}
                                    _ => trace::instant(
                                        "net",
                                        "fault.fate",
                                        &[
                                            ("node", idx as i64),
                                            ("dst", d as i64),
                                            ("copies", fate.delays.len() as i64),
                                            (
                                                "max_delay",
                                                fate.delays.iter().copied().max().unwrap_or(0)
                                                    as i64,
                                            ),
                                        ],
                                    ),
                                }
                            }
                            for &delay in &fate.delays {
                                if delay == 0 {
                                    buffers[d].push(f.clone());
                                } else {
                                    held.entry(now + delay).or_default().push((d, f.clone()));
                                }
                                enqueued += 1;
                            }
                        }
                    }
                }
            }
            *messages_enqueued += enqueued;
            if let Some(log) = log {
                log.push(TransitionRecord {
                    node: nodes[idx],
                    round: now,
                    kind: match kind {
                        JobKind::Heartbeat => TransitionKind::Heartbeat,
                        JobKind::Deliver(f) => TransitionKind::Delivery(f),
                        JobKind::WipeMemory => unreachable!("wipes are not merged"),
                    },
                    output: res.output,
                    sent_facts: res.sent.len(),
                    enqueued,
                    state_changed: res.state_changed,
                });
            }
        }
        Ok(all_quiet)
    };

    while steps < budget.max_steps {
        if let Some(target) = &budget.target_output {
            if !target.is_empty() && &output == target {
                reached_target = true;
                break;
            }
        }
        rounds += 1;
        let now = rounds as u64;
        let _round_span = trace::span("net", "round", &[("round", now as i64)]);

        // Fault phase (coordinator-only, deterministic): release
        // matured in-flight copies, resolve node statuses, run restart
        // wipes. None of this counts as paper transitions.
        let mut fault_horizon_passed = true;
        if let Some(fh) = faults.as_deref_mut() {
            let _fault_span = trace::span("net", "phase.fault", &[]);
            let due: Vec<u64> = held.range(..=now).map(|(k, _)| *k).collect();
            for k in due {
                for (dst, fact) in held.remove(&k).unwrap_or_default() {
                    rtx_obs::event!("net", "fault.release", "node" => dst);
                    buffers[dst].push(fact);
                }
            }
            let mut wipes: Vec<Job> = Vec::new();
            for (i, d) in down.iter_mut().enumerate() {
                match fh.node_fault(now, i) {
                    NodeFault::Up => *d = false,
                    NodeFault::CrashNow { lose_buffer } => {
                        *d = true;
                        rtx_obs::event!("net", "fault.crash", "node" => i, "lose_buffer" => lose_buffer as i64);
                        if lose_buffer {
                            buffers[i].clear();
                        }
                    }
                    NodeFault::Down => *d = true,
                    NodeFault::RestartNow { wipe_memory } => {
                        *d = false;
                        rtx_obs::event!("net", "fault.restart", "node" => i, "wipe_memory" => wipe_memory as i64);
                        if wipe_memory {
                            wipes.push((i, JobKind::WipeMemory));
                        }
                    }
                }
            }
            if !wipes.is_empty() {
                // Execute the wipes as their own phase; the StepOuts
                // carry no outputs or sends by construction, so only
                // their trace events are kept (in node order).
                let mut results = engine.execute(wipes.clone())?;
                for (idx, _) in wipes {
                    if let Some(mut res) = results.remove(&idx) {
                        trace::splice(std::mem::take(&mut res.events));
                    }
                }
            }
            fault_horizon_passed = now > fh.quiet_after() && held.is_empty();
        }

        let stable_probe = buffers.iter().all(Vec::is_empty);

        // Heartbeat phase: every up node, truncated at the budget.
        let quota = budget.max_steps - steps;
        let hb_jobs: Vec<Job> = (0..n)
            .filter(|&i| !down[i])
            .take(quota)
            .map(|i| (i, JobKind::Heartbeat))
            .collect();
        let hb_count = hb_jobs.len();
        max_active = max_active.max(hb_count);
        let hb_span = trace::span("net", "phase.heartbeat", &[("jobs", hb_count as i64)]);
        let mut results = engine.execute(hb_jobs.clone())?;
        let all_quiet = merge(
            now,
            hb_jobs,
            &mut results,
            &mut buffers,
            &mut held,
            &mut faults,
            &mut output,
            &mut outputs_per_node,
            &mut messages_enqueued,
            &mut log,
        )?;
        drop(hb_span);
        steps += hb_count;
        heartbeats += hb_count;
        if stable_probe && all_quiet && hb_count == n && fault_horizon_passed {
            // A whole round of no-op heartbeats on empty buffers, with
            // no in-flight copies and no future node fault events: the
            // configuration repeats forever — quiescence.
            quiescent = true;
            break;
        }
        if steps >= budget.max_steps {
            break;
        }
        if let Some(target) = &budget.target_output {
            if !target.is_empty() && &output == target {
                reached_target = true;
                break;
            }
        }

        // Delivery phase(s): one fact per node with mail per sub-phase,
        // up to the batching policy's cap, truncated at the budget.
        // Facts are removed before each sub-phase, so the deliveries of
        // a sub-phase are independent and run in parallel; their
        // outboxes merge at the sub-phase barrier (visible to the next
        // sub-phase, exactly as in back-to-back singleton rounds).
        let mut delivered_this_round = 0usize;
        for sub in 0..opts.delivery.per_round() {
            if steps >= budget.max_steps {
                break;
            }
            let quota = budget.max_steps - steps;
            let mut dl_jobs: Vec<Job> = Vec::new();
            for (i, buf) in buffers.iter_mut().enumerate() {
                if dl_jobs.len() >= quota {
                    break;
                }
                if !buf.is_empty() && !down[i] {
                    let pick = opts.scheduling.pick(rounds, i, buf.len());
                    dl_jobs.push((i, JobKind::Deliver(buf.remove(pick))));
                }
            }
            if dl_jobs.is_empty() {
                break;
            }
            let dl_count = dl_jobs.len();
            max_active = max_active.max(dl_count);
            let _dl_span = trace::span(
                "net",
                "phase.deliver",
                &[("sub", sub as i64), ("jobs", dl_count as i64)],
            );
            let mut results = engine.execute(dl_jobs.clone())?;
            merge(
                now,
                dl_jobs,
                &mut results,
                &mut buffers,
                &mut held,
                &mut faults,
                &mut output,
                &mut outputs_per_node,
                &mut messages_enqueued,
                &mut log,
            )?;
            steps += dl_count;
            deliveries += dl_count;
            delivered_this_round += dl_count;
        }
        if hb_count == 0 && delivered_this_round == 0 {
            if fault_horizon_passed {
                // Every node is down, nothing matured, and the fault
                // plan has no further node events: the network is dead
                // forever. Stop (non-quiescent) instead of spinning.
                break;
            }
            // All nodes down but a restart (or an in-flight copy) is
            // still ahead. Idle rounds consume no budget steps, so a
            // hook with a distant horizon could spin unboundedly —
            // cap consecutive idle rounds at the step budget (an idle
            // streak longer than the budget could never be followed by
            // that much work anyway).
            idle_rounds += 1;
            if idle_rounds > budget.max_steps {
                break;
            }
        } else {
            idle_rounds = 0;
        }
    }

    if let Some(target) = &budget.target_output {
        if &output == target && (quiescent || !target.is_empty()) {
            reached_target = true;
        }
    }

    let states = engine.finish(n)?;
    let final_config = Configuration::from_parts(
        nodes
            .iter()
            .cloned()
            .zip(states)
            .zip(buffers)
            .map(|((nd, st), buf)| (nd, st, buf)),
    );
    debug_assert_eq!(net.len(), n);
    let out = ShardRunOutcome {
        outcome: RunOutcome {
            output,
            outputs_per_node,
            steps,
            heartbeats,
            deliveries,
            messages_enqueued,
            quiescent,
            reached_target,
            final_config,
        },
        rounds,
        threads_used,
        max_active,
        log,
    };
    if let Some(t0) = t0 {
        out.publish();
        rtx_obs::registry::record("net.run_ns", t0.elapsed().as_nanos() as u64);
    }
    Ok(out)
}

impl ShardRunOutcome {
    /// Publish this run's counters into the global metrics registry
    /// (`net.*`), making the ad-hoc outcome counters a view over the
    /// registry: a registry snapshot diff across the run reconciles
    /// exactly with these fields (asserted in `tests/obs.rs`).
    pub fn publish(&self) {
        if !rtx_obs::counting() {
            return;
        }
        rtx_obs::registry::add("net.runs", 1);
        rtx_obs::registry::add("net.rounds", self.rounds as u64);
        rtx_obs::registry::add("net.steps", self.outcome.steps as u64);
        rtx_obs::registry::add("net.heartbeats", self.outcome.heartbeats as u64);
        rtx_obs::registry::add("net.deliveries", self.outcome.deliveries as u64);
        rtx_obs::registry::add(
            "net.messages_enqueued",
            self.outcome.messages_enqueued as u64,
        );
        if self.outcome.quiescent {
            rtx_obs::registry::add("net.quiescent_runs", 1);
        }
        rtx_obs::registry::record("net.max_active", self.max_active as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run, FifoRoundRobin};
    use rtx_query::{atom, CqBuilder, QueryRef, Term, UcqQuery};
    use rtx_relational::{fact, Instance, Schema};
    use rtx_transducer::TransducerBuilder;
    use std::sync::Arc;

    // The whole simulation stack must be shareable across shard
    // threads: a compile-time check of the ownership story.
    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Transducer>();
        assert_send_sync::<Network>();
        assert_send_sync::<Configuration>();
        assert_send_sync::<Arc<Transducer>>();
        assert_send_sync::<QueryRef>();
    };

    fn cq(rule: rtx_query::CqRule) -> QueryRef {
        Arc::new(UcqQuery::single(rule))
    }

    /// Deduplicating flooder (same machine as the run.rs tests).
    fn dedup_flooder() -> Transducer {
        let send = rtx_query::UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        let store = rtx_query::UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        TransducerBuilder::new("dedup-flooder")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .output_arity(1)
            .send("M", Arc::new(send))
            .insert("T", Arc::new(store))
            .output(cq(CqBuilder::head(vec![Term::var("X")])
                .when(atom!("T"; @"X"))
                .build()
                .unwrap()))
            .build()
            .unwrap()
    }

    fn input_s(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn serial_round_run_quiesces_and_disseminates() {
        let net = Network::line(4).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3]));
        let out = run_sharded(
            &net,
            &t,
            &p,
            &ShardOptions::serial(),
            &RunBudget::steps(100_000),
        )
        .unwrap();
        assert!(out.outcome.quiescent);
        assert_eq!(out.outcome.output.len(), 3);
        assert_eq!(out.threads_used, 1);
        assert!(out.rounds > 0);
        for per in out.outcome.outputs_per_node.values() {
            assert_eq!(per.len(), 3);
        }
    }

    #[test]
    fn sharded_matches_serial_bit_for_bit() {
        let net = Network::ring(6).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[10, 20, 30, 40]));
        let budget = RunBudget::steps(100_000);
        let serial =
            run_sharded(&net, &t, &p, &ShardOptions::serial().with_log(), &budget).unwrap();
        for threads in [2, 3, 4, 8] {
            for plan in [
                ShardPlan::Contiguous,
                ShardPlan::RoundRobin,
                ShardPlan::Hash,
            ] {
                let opts = ShardOptions::sharded(threads).with_plan(plan).with_log();
                let sharded = run_sharded(&net, &t, &p, &opts, &budget).unwrap();
                assert_eq!(sharded.outcome.output, serial.outcome.output);
                assert_eq!(
                    sharded.outcome.outputs_per_node,
                    serial.outcome.outputs_per_node
                );
                assert_eq!(sharded.outcome.steps, serial.outcome.steps);
                assert_eq!(sharded.outcome.final_config, serial.outcome.final_config);
                assert_eq!(sharded.log, serial.log, "threads={threads} plan={plan:?}");
                assert_eq!(sharded.rounds, serial.rounds);
            }
        }
    }

    #[test]
    fn round_run_agrees_with_seed_fifo_driver() {
        let net = Network::ring4_with_chord();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[7, 8, 9]));
        let budget = RunBudget::steps(100_000);
        let seed = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        let rounds = run_sharded(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        assert!(seed.quiescent && rounds.outcome.quiescent);
        assert_eq!(seed.output, rounds.outcome.output);
    }

    #[test]
    fn random_scheduling_is_deterministic_and_confluent_here() {
        let net = Network::grid(3, 3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4, 5]));
        let budget = RunBudget::steps(200_000);
        let fifo = run_sharded(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        for seed in [1u64, 42, 1337] {
            let opts = ShardOptions::sharded(4)
                .with_scheduling(RoundScheduling::Random { seed })
                .with_log();
            let a = run_sharded(&net, &t, &p, &opts, &budget).unwrap();
            let b = run_sharded(&net, &t, &p, &opts, &budget).unwrap();
            assert_eq!(a.log, b.log, "same seed must replay identically");
            assert!(a.outcome.quiescent);
            assert_eq!(a.outcome.output, fifo.outcome.output);
        }
    }

    #[test]
    fn budget_truncation_is_exact_and_deterministic() {
        let net = Network::line(5).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4]));
        for cap in [1usize, 3, 7, 12] {
            let budget = RunBudget::steps(cap);
            let serial =
                run_sharded(&net, &t, &p, &ShardOptions::serial().with_log(), &budget).unwrap();
            let sharded =
                run_sharded(&net, &t, &p, &ShardOptions::sharded(3).with_log(), &budget).unwrap();
            assert_eq!(serial.outcome.steps, cap);
            assert!(!serial.outcome.quiescent);
            assert_eq!(sharded.log, serial.log, "cap={cap}");
        }
    }

    #[test]
    fn target_output_stops_early() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::concentrate(&net, &input_s(&[5]), &NodeId::sym("n0")).unwrap();
        let target = Relation::from_tuples(1, vec![rtx_relational::tuple![5]]).unwrap();
        let budget = RunBudget::steps(10_000).until_output(target);
        let out = run_sharded(&net, &t, &p, &ShardOptions::sharded(2), &budget).unwrap();
        assert!(out.outcome.reached_target);
    }

    #[test]
    fn single_node_network_only_heartbeats() {
        let net = Network::single();
        let t = dedup_flooder();
        let p = HorizontalPartition::replicate(&net, &input_s(&[1, 2]));
        let out = run_sharded(
            &net,
            &t,
            &p,
            &ShardOptions::sharded(8),
            &RunBudget::default(),
        )
        .unwrap();
        assert!(out.outcome.quiescent);
        assert_eq!(out.outcome.deliveries, 0);
        assert_eq!(out.outcome.output.len(), 2);
        assert_eq!(out.threads_used, 1, "thread count clamps to node count");
    }

    #[test]
    fn shard_plans_cover_all_shards() {
        let nodes: Vec<NodeId> = (0..16).map(|i| NodeId::sym(format!("n{i}"))).collect();
        for plan in [
            ShardPlan::Contiguous,
            ShardPlan::RoundRobin,
            ShardPlan::Hash,
        ] {
            let mut hit = [false; 4];
            for (i, n) in nodes.iter().enumerate() {
                let s = plan.assign(i, n, nodes.len(), 4);
                assert!(s < 4);
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "{plan:?} left a shard empty");
        }
    }

    #[test]
    fn batched_delivery_is_confluent_and_saves_rounds() {
        let net = Network::grid(3, 3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4, 5]));
        let budget = RunBudget::steps(200_000);
        let one = run_sharded(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        for k in [2usize, 4, 16] {
            let opts = ShardOptions::serial().with_delivery(DeliveryPolicy::Batch(k));
            let batched = run_sharded(&net, &t, &p, &opts, &budget).unwrap();
            assert!(batched.outcome.quiescent);
            assert_eq!(batched.outcome.output, one.outcome.output, "k={k}");
            assert!(
                batched.rounds < one.rounds,
                "k={k}: {} !< {}",
                batched.rounds,
                one.rounds
            );
        }
    }

    #[test]
    fn batched_delivery_sharded_matches_serial_bit_for_bit() {
        let net = Network::ring(6).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[10, 20, 30, 40]));
        let budget = RunBudget::steps(100_000);
        for k in [3usize, 8] {
            let base = ShardOptions::serial()
                .with_delivery(DeliveryPolicy::Batch(k))
                .with_log();
            let serial = run_sharded(&net, &t, &p, &base, &budget).unwrap();
            for threads in [2, 4] {
                let opts = ShardOptions::sharded(threads)
                    .with_delivery(DeliveryPolicy::Batch(k))
                    .with_log();
                let sharded = run_sharded(&net, &t, &p, &opts, &budget).unwrap();
                assert_eq!(sharded.log, serial.log, "k={k} threads={threads}");
                assert_eq!(sharded.outcome.final_config, serial.outcome.final_config);
                assert_eq!(sharded.rounds, serial.rounds);
            }
        }
    }

    #[test]
    fn batched_delivery_respects_step_budget_exactly() {
        let net = Network::line(5).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4]));
        for cap in [1usize, 6, 11] {
            let budget = RunBudget::steps(cap);
            let opts = ShardOptions::serial().with_delivery(DeliveryPolicy::Batch(4));
            let out = run_sharded(&net, &t, &p, &opts, &budget).unwrap();
            assert_eq!(out.outcome.steps, cap);
        }
    }

    #[test]
    fn delivery_policy_per_round_clamps() {
        assert_eq!(DeliveryPolicy::One.per_round(), 1);
        assert_eq!(DeliveryPolicy::Batch(0).per_round(), 1);
        assert_eq!(DeliveryPolicy::Batch(7).per_round(), 7);
        assert_eq!(DeliveryPolicy::default(), DeliveryPolicy::One);
    }

    #[test]
    fn exec_mode_threads_and_auto() {
        assert_eq!(ExecMode::Serial.threads(), 1);
        assert_eq!(ExecMode::Sharded { threads: 0 }.threads(), 1);
        assert_eq!(ExecMode::Sharded { threads: 6 }.threads(), 6);
        assert!(ExecMode::sharded_auto().threads() >= 1);
    }

    /// A hand-written hook: delays every copy on edge (0→1) by 2
    /// rounds, duplicates everything sent to node 2, crashes node 3 at
    /// round 2 and restarts it (memory wiped) at round 4.
    struct TestHook;
    impl FaultHook for TestHook {
        fn on_send(&mut self, _t: u64, src: usize, dst: usize, _k: usize, _f: &Fact) -> SendFate {
            if src == 0 && dst == 1 {
                SendFate::delayed(2)
            } else if dst == 2 {
                SendFate::copies(vec![0, 0])
            } else {
                SendFate::deliver()
            }
        }
        fn node_fault(&mut self, t: u64, node: usize) -> NodeFault {
            match (node, t) {
                (3, 2) => NodeFault::CrashNow { lose_buffer: true },
                (3, 3) => NodeFault::Down,
                (3, 4) => NodeFault::RestartNow { wipe_memory: true },
                _ => NodeFault::Up,
            }
        }
        fn quiet_after(&self) -> u64 {
            4
        }
    }

    use crate::fault::{FaultHook, NodeFault, SendFate};

    #[test]
    fn faulted_run_quiesces_and_stays_serial_sharded_identical() {
        let net = Network::ring(6).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[10, 20, 30, 40]));
        let budget = RunBudget::steps(100_000);
        let serial = run_sharded_faulted(
            &net,
            &t,
            &p,
            &ShardOptions::serial().with_log(),
            &budget,
            &mut TestHook,
        )
        .unwrap();
        assert!(serial.outcome.quiescent);
        for threads in [2, 4] {
            for delivery in [DeliveryPolicy::One, DeliveryPolicy::Batch(4)] {
                let opts = ShardOptions::sharded(threads)
                    .with_delivery(delivery)
                    .with_log();
                let base_opts = ShardOptions::serial().with_delivery(delivery).with_log();
                let base =
                    run_sharded_faulted(&net, &t, &p, &base_opts, &budget, &mut TestHook).unwrap();
                let sharded =
                    run_sharded_faulted(&net, &t, &p, &opts, &budget, &mut TestHook).unwrap();
                assert_eq!(sharded.log, base.log, "threads={threads} {delivery:?}");
                assert_eq!(sharded.outcome.final_config, base.outcome.final_config);
                assert_eq!(sharded.outcome.output, base.outcome.output);
                assert_eq!(sharded.rounds, base.rounds);
            }
        }
    }

    #[test]
    fn faulted_run_replays_identically() {
        let net = Network::grid(3, 3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3]));
        let budget = RunBudget::steps(100_000);
        let opts = ShardOptions::serial().with_log();
        let a = run_sharded_faulted(&net, &t, &p, &opts, &budget, &mut TestHook).unwrap();
        let b = run_sharded_faulted(&net, &t, &p, &opts, &budget, &mut TestHook).unwrap();
        assert_eq!(a.log, b.log);
        assert_eq!(a.outcome.final_config, b.outcome.final_config);
    }

    #[test]
    fn no_faults_hook_matches_plain_run_bit_for_bit() {
        let net = Network::line(5).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4]));
        let budget = RunBudget::steps(100_000);
        let opts = ShardOptions::serial().with_log();
        let plain = run_sharded(&net, &t, &p, &opts, &budget).unwrap();
        let hooked =
            run_sharded_faulted(&net, &t, &p, &opts, &budget, &mut crate::fault::NoFaults).unwrap();
        assert_eq!(plain.log, hooked.log);
        assert_eq!(plain.outcome.final_config, hooked.outcome.final_config);
        assert_eq!(plain.rounds, hooked.rounds);
    }

    #[test]
    fn dead_forever_network_terminates_without_quiescence() {
        struct AllDown;
        impl FaultHook for AllDown {
            fn on_send(&mut self, _: u64, _: usize, _: usize, _: usize, _: &Fact) -> SendFate {
                SendFate::deliver()
            }
            fn node_fault(&mut self, t: u64, _n: usize) -> NodeFault {
                if t == 1 {
                    NodeFault::CrashNow { lose_buffer: true }
                } else {
                    NodeFault::Down
                }
            }
            fn quiet_after(&self) -> u64 {
                1
            }
        }
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2]));
        let out = run_sharded_faulted(
            &net,
            &t,
            &p,
            &ShardOptions::serial(),
            &RunBudget::steps(100_000),
            &mut AllDown,
        )
        .unwrap();
        assert!(!out.outcome.quiescent);
        assert_eq!(out.outcome.steps, 0, "no node ever transitioned");
    }

    #[test]
    fn round_scheduling_picks_in_range() {
        let r = RoundScheduling::Random { seed: 9 };
        for round in 0..20 {
            for node in 0..10 {
                for len in 1..6 {
                    let i = r.pick(round, node, len);
                    assert!(i < len);
                }
            }
        }
        assert_eq!(RoundScheduling::Fifo.pick(3, 4, 5), 0);
    }
}

//! Network simulation errors.

use rtx_query::EvalError;
use rtx_relational::RelError;
use std::fmt;

/// Errors from building or running transducer networks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// An invalid network topology (empty, disconnected, unknown node…).
    Topology(String),
    /// An invalid horizontal partition.
    Partition(String),
    /// A kernel error.
    Rel(RelError),
    /// A query evaluation error inside a transition.
    Eval(EvalError),
    /// The step budget was exhausted before the stop condition was met.
    Budget {
        /// Number of steps executed.
        steps: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Topology(s) => write!(f, "invalid topology: {s}"),
            NetError::Partition(s) => write!(f, "invalid partition: {s}"),
            NetError::Rel(e) => write!(f, "{e}"),
            NetError::Eval(e) => write!(f, "{e}"),
            NetError::Budget { steps } => {
                write!(f, "step budget exhausted after {steps} steps")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Rel(e) => Some(e),
            NetError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for NetError {
    fn from(e: RelError) -> Self {
        NetError::Rel(e)
    }
}

impl From<EvalError> for NetError {
    fn from(e: EvalError) -> Self {
        NetError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(NetError::Topology("empty".into())
            .to_string()
            .contains("topology"));
        assert!(NetError::Partition("bad".into())
            .to_string()
            .contains("partition"));
        assert!(NetError::Budget { steps: 5 }.to_string().contains('5'));
        let e: NetError = RelError::NotInjective.into();
        assert!(e.to_string().contains("injective"));
        let e: NetError = EvalError::Diverged { fuel: 3 }.into();
        assert!(e.to_string().contains('3'));
    }
}

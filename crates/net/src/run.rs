//! Run drivers and schedulers.
//!
//! The paper's runs are infinite fair sequences of heartbeat and delivery
//! transitions; their *output* reaches a quiescence point after finitely
//! many steps (Proposition 1). The driver executes a finite prefix: it
//! follows a pluggable [`Scheduler`] while messages are in flight, probes
//! for stability when all buffers are empty, and stops at quiescence, at
//! a target output, or at the step budget.

use crate::config::{Configuration, TransitionRecord};
use crate::error::NetError;
use crate::partition::HorizontalPartition;
use crate::topology::{Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtx_relational::Relation;
use rtx_transducer::Transducer;
use std::collections::{BTreeMap, VecDeque};

/// One schedulable global transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Heartbeat at a node.
    Heartbeat(NodeId),
    /// Deliver the buffered fact at the given index of a node's buffer.
    Deliver(NodeId, usize),
}

/// Chooses the next transition. The driver only consults the scheduler
/// while at least one buffer is nonempty; all-empty configurations are
/// handled by deterministic stability rounds.
pub trait Scheduler {
    /// Pick the next action for the configuration.
    fn next_action(&mut self, cfg: &Configuration, net: &Network) -> Action;

    /// Diagnostic name.
    fn name(&self) -> &'static str;
}

/// Round-based FIFO scheduler: each round heartbeats every node once,
/// then delivers the *oldest* buffered fact at every node that has mail.
///
/// This realizes the FIFO-buffer, round-synchronous runs used in the
/// proof of Theorem 16.
#[derive(Debug, Default)]
pub struct FifoRoundRobin {
    pending: VecDeque<PlannedAction>,
    rounds: usize,
}

#[derive(Debug, Clone)]
enum PlannedAction {
    Heartbeat(NodeId),
    DeliverOldest(NodeId),
    DeliverNewest(NodeId),
}

impl FifoRoundRobin {
    /// New FIFO round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of *completed* scheduling rounds: a round is counted only
    /// once every action planned for it has been consumed — returned to
    /// the driver or skipped because its target buffer was empty. After
    /// the first action of a fresh round this still reports the previous
    /// total, and a round cut short by a step budget is not counted.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// Shared round-robin drain loop: pop planned actions, skipping
/// deliveries whose buffer is empty, replanning via `plan` when the
/// queue runs dry, and crediting `rounds` exactly when the last planned
/// action of a round is consumed.
fn drain_round_robin(
    pending: &mut VecDeque<PlannedAction>,
    rounds: &mut usize,
    cfg: &Configuration,
    plan: impl Fn(&mut VecDeque<PlannedAction>),
) -> Action {
    loop {
        let planned = match pending.pop_front() {
            Some(p) => p,
            None => {
                plan(pending);
                continue;
            }
        };
        let round_done = pending.is_empty();
        let action = match planned {
            PlannedAction::Heartbeat(n) => Some(Action::Heartbeat(n)),
            PlannedAction::DeliverOldest(n) => {
                (!cfg.buffer(&n).is_empty()).then_some(Action::Deliver(n, 0))
            }
            PlannedAction::DeliverNewest(n) => {
                let len = cfg.buffer(&n).len();
                (len > 0).then(|| Action::Deliver(n, len - 1))
            }
        };
        if round_done {
            *rounds += 1;
        }
        if let Some(a) = action {
            return a;
        }
    }
}

impl Scheduler for FifoRoundRobin {
    fn next_action(&mut self, cfg: &Configuration, net: &Network) -> Action {
        drain_round_robin(&mut self.pending, &mut self.rounds, cfg, |pending| {
            for n in net.nodes() {
                pending.push_back(PlannedAction::Heartbeat(*n));
            }
            for n in net.nodes() {
                pending.push_back(PlannedAction::DeliverOldest(*n));
            }
        })
    }

    fn name(&self) -> &'static str {
        "fifo-round-robin"
    }
}

/// Like [`FifoRoundRobin`] but delivers the *newest* buffered fact —
/// an adversarial ordering that exhibits the non-FIFO behaviour the
/// paper explicitly allows ("messages are not necessarily received in
/// the order they have been sent").
#[derive(Debug, Default)]
pub struct LifoRoundRobin {
    pending: VecDeque<PlannedAction>,
    rounds: usize,
}

impl LifoRoundRobin {
    /// New LIFO round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of *completed* scheduling rounds, with the same
    /// consumed-not-planned semantics as [`FifoRoundRobin::rounds`].
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl Scheduler for LifoRoundRobin {
    fn next_action(&mut self, cfg: &Configuration, net: &Network) -> Action {
        drain_round_robin(&mut self.pending, &mut self.rounds, cfg, |pending| {
            for n in net.nodes() {
                pending.push_back(PlannedAction::Heartbeat(*n));
            }
            for n in net.nodes() {
                pending.push_back(PlannedAction::DeliverNewest(*n));
            }
        })
    }

    fn name(&self) -> &'static str {
        "lifo-round-robin"
    }
}

/// Seeded random scheduler: picks a random node; delivers a uniformly
/// random buffered fact with high probability, heartbeats otherwise.
/// Statistically fair — every buffered fact is eventually delivered with
/// probability 1, and every node heartbeats infinitely often.
///
/// Fairness is enforced, not merely probable: the heartbeat probability
/// is clamped strictly below 1 (see [`RandomScheduler::MAX_HEARTBEAT_PROB`]),
/// and after [`RandomScheduler::MAX_HEARTBEAT_RUN`] consecutive heartbeat
/// picks while mail is buffered the scheduler forces a delivery. At the
/// default probability the backstop is statistically unreachable, so
/// seeded runs are unchanged; near the boundary it bounds the time until
/// any buffered fact is delivered.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
    heartbeat_prob: f64,
    consecutive_heartbeats: u32,
}

impl RandomScheduler {
    /// Upper clamp for [`Self::with_heartbeat_prob`]. Exactly 1.0 would
    /// make `next_action` heartbeat forever while mail is buffered, so
    /// the driver would spin until `max_steps` without ever delivering —
    /// precisely the unfair schedule the paper's runs exclude.
    pub const MAX_HEARTBEAT_PROB: f64 = 0.999_999;

    /// Deterministic fairness backstop: after this many consecutive
    /// heartbeat picks with mail buffered, the next pick is a delivery.
    pub const MAX_HEARTBEAT_RUN: u32 = 512;

    /// New random scheduler from a seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
            heartbeat_prob: 0.25,
            consecutive_heartbeats: 0,
        }
    }

    /// Adjust the heartbeat probability.
    ///
    /// The value is clamped to `[0.0, Self::MAX_HEARTBEAT_PROB]` —
    /// strictly below 1, so that a delivery always has positive
    /// probability; together with the [`Self::MAX_HEARTBEAT_RUN`]
    /// backstop this guarantees buffers drain within a bounded number
    /// of steps even for `with_heartbeat_prob(1.0)`.
    pub fn with_heartbeat_prob(mut self, p: f64) -> Self {
        self.heartbeat_prob = p.clamp(0.0, Self::MAX_HEARTBEAT_PROB);
        self
    }
}

impl Scheduler for RandomScheduler {
    fn next_action(&mut self, cfg: &Configuration, net: &Network) -> Action {
        let nodes: Vec<&NodeId> = net.nodes().collect();
        // The forced-delivery check precedes the RNG draw so that on the
        // non-degenerate path the draw sequence (and thus every existing
        // seeded run) is unchanged.
        let force_delivery = self.consecutive_heartbeats >= Self::MAX_HEARTBEAT_RUN;
        if !force_delivery && self.rng.gen_bool(self.heartbeat_prob) {
            self.consecutive_heartbeats += 1;
            let n = nodes[self.rng.gen_range(0..nodes.len())];
            return Action::Heartbeat(*n);
        }
        let with_mail: Vec<&NodeId> = cfg.nodes_with_mail().collect();
        if with_mail.is_empty() {
            // No starvation possible without mail (the driver only
            // consults schedulers while some buffer is nonempty).
            self.consecutive_heartbeats = 0;
            let n = nodes[self.rng.gen_range(0..nodes.len())];
            return Action::Heartbeat(*n);
        }
        self.consecutive_heartbeats = 0;
        let n = with_mail[self.rng.gen_range(0..with_mail.len())];
        let idx = self.rng.gen_range(0..cfg.buffer(n).len());
        Action::Deliver(*n, idx)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Stop conditions and budgets for a run.
#[derive(Clone, Debug)]
pub struct RunBudget {
    /// Maximum number of global transitions.
    pub max_steps: usize,
    /// Stop early once the accumulated global output equals this relation
    /// (used to drive paper-faithful but non-draining transducers, whose
    /// buffers never empty although the output quiesces).
    ///
    /// An **empty** target is ignored: the initial output trivially equals
    /// it, so an empty expected answer can only be certified by reaching
    /// quiescence. Note also that outputs accumulate monotonically, so a
    /// run that would eventually *overshoot* the target passes through it;
    /// treat `reached_target` as "produced exactly the target so far".
    pub target_output: Option<Relation>,
}

impl RunBudget {
    /// A budget with the given step cap and no output target.
    pub fn steps(max_steps: usize) -> Self {
        RunBudget {
            max_steps,
            target_output: None,
        }
    }

    /// Add an output target.
    pub fn until_output(mut self, target: Relation) -> Self {
        self.target_output = Some(target);
        self
    }
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget::steps(100_000)
    }
}

/// The observable result of a (finite prefix of a) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Global accumulated output `out(ρ)` = union over all transitions.
    pub output: Relation,
    /// Output accumulated per node.
    pub outputs_per_node: BTreeMap<NodeId, Relation>,
    /// Total global transitions executed.
    pub steps: usize,
    /// Heartbeat transitions executed.
    pub heartbeats: usize,
    /// Delivery transitions executed.
    pub deliveries: usize,
    /// Total facts sent (a fact sent to `d` neighbors counts `d` times).
    pub messages_enqueued: usize,
    /// Did the run reach quiescence (all buffers empty, every heartbeat a
    /// no-op)?
    pub quiescent: bool,
    /// Did the run reach the requested target output?
    pub reached_target: bool,
    /// The final configuration.
    pub final_config: Configuration,
}

impl RunOutcome {
    /// Publish this run's counters into the global metrics registry
    /// (`net.*`), under the same names the round executors use — one
    /// schema for every driver (see `rtx_obs`).
    pub fn publish(&self) {
        if !rtx_obs::counting() {
            return;
        }
        rtx_obs::registry::add("net.runs", 1);
        rtx_obs::registry::add("net.steps", self.steps as u64);
        rtx_obs::registry::add("net.heartbeats", self.heartbeats as u64);
        rtx_obs::registry::add("net.deliveries", self.deliveries as u64);
        rtx_obs::registry::add("net.messages_enqueued", self.messages_enqueued as u64);
        if self.quiescent {
            rtx_obs::registry::add("net.quiescent_runs", 1);
        }
    }
}

/// Drive a run of `(net, transducer)` from the initial configuration for
/// `partition`, following `scheduler`.
pub fn run(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    scheduler: &mut dyn Scheduler,
    budget: &RunBudget,
) -> Result<RunOutcome, NetError> {
    let cfg = Configuration::initial(net, transducer, partition)?;
    run_from(net, transducer, cfg, scheduler, budget)
}

/// Drive a run from an explicit starting configuration.
pub fn run_from(
    net: &Network,
    transducer: &Transducer,
    mut cfg: Configuration,
    scheduler: &mut dyn Scheduler,
    budget: &RunBudget,
) -> Result<RunOutcome, NetError> {
    let t0 = rtx_obs::counting().then(std::time::Instant::now);
    let arity = transducer.schema().output_arity();
    let mut outputs_per_node: BTreeMap<NodeId, Relation> =
        net.nodes().map(|n| (*n, Relation::empty(arity))).collect();
    let mut output = Relation::empty(arity);
    let mut steps = 0usize;
    let mut heartbeats = 0usize;
    let mut deliveries = 0usize;
    let mut messages_enqueued = 0usize;
    let mut quiescent = false;
    let mut reached_target = false;

    let absorb = |rec: &TransitionRecord,
                  output: &mut Relation,
                  outputs_per_node: &mut BTreeMap<NodeId, Relation>|
     -> Result<(), NetError> {
        *output = output.union(&rec.output).map_err(NetError::Rel)?;
        let per = outputs_per_node.get_mut(&rec.node).expect("known node");
        *per = per.union(&rec.output).map_err(NetError::Rel)?;
        Ok(())
    };

    'outer: while steps < budget.max_steps {
        if let Some(target) = &budget.target_output {
            if !target.is_empty() && &output == target {
                reached_target = true;
                break;
            }
        }
        if cfg.all_buffers_empty() {
            // Stability round: heartbeat every node once. If the whole
            // round is a no-op (and produced no new output), the
            // configuration repeats forever: quiescence.
            let mut all_quiet = true;
            for n in net.node_set() {
                if steps >= budget.max_steps {
                    break 'outer;
                }
                let rec = cfg.apply_heartbeat(net, transducer, &n)?;
                steps += 1;
                heartbeats += 1;
                messages_enqueued += rec.enqueued;
                let new_out = !rec.output.is_subset(&output);
                absorb(&rec, &mut output, &mut outputs_per_node)?;
                if rec.state_changed || rec.sent_facts > 0 || new_out {
                    all_quiet = false;
                }
            }
            if all_quiet {
                quiescent = true;
                break;
            }
            continue;
        }
        let action = scheduler.next_action(&cfg, net);
        let rec = match action {
            Action::Heartbeat(n) => {
                heartbeats += 1;
                cfg.apply_heartbeat(net, transducer, &n)?
            }
            Action::Deliver(n, idx) => {
                deliveries += 1;
                cfg.apply_delivery(net, transducer, &n, idx)?
            }
        };
        steps += 1;
        messages_enqueued += rec.enqueued;
        absorb(&rec, &mut output, &mut outputs_per_node)?;
    }

    if let Some(target) = &budget.target_output {
        if &output == target && (quiescent || !target.is_empty()) {
            reached_target = true;
        }
    }

    let out = RunOutcome {
        output,
        outputs_per_node,
        steps,
        heartbeats,
        deliveries,
        messages_enqueued,
        quiescent,
        reached_target,
        final_config: cfg,
    };
    if let Some(t0) = t0 {
        out.publish();
        rtx_obs::registry::record("net.run_ns", t0.elapsed().as_nanos() as u64);
    }
    Ok(out)
}

/// Outcome of a heartbeat-only run (the coordination-freeness probe).
#[derive(Clone, Debug)]
pub struct HeartbeatOnlyOutcome {
    /// Accumulated output.
    pub output: Relation,
    /// Rounds executed (each round heartbeats every node once).
    pub rounds: usize,
    /// Whether a global heartbeat fixpoint was reached. Note: facts may
    /// have been *sent* (they pile up in buffers and are never delivered);
    /// quiescence of the *output* is what the definition asks for.
    pub fixpoint: bool,
    /// Final configuration (with possibly nonempty buffers).
    pub final_config: Configuration,
}

/// Run only heartbeat transitions, round-robin, until the output and
/// all states stabilize or `max_rounds` is hit.
///
/// This implements the paper's coordination-freeness probe: "a run in
/// which a quiescence point is reached by only performing heartbeat
/// transitions". Messages may be sent — they are simply never delivered
/// within the probe (a legal run prefix: delivery is merely postponed).
pub fn run_heartbeats_only(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    max_rounds: usize,
) -> Result<HeartbeatOnlyOutcome, NetError> {
    let mut cfg = Configuration::initial(net, transducer, partition)?;
    let arity = transducer.schema().output_arity();
    let mut output = Relation::empty(arity);
    for round in 0..max_rounds {
        let mut quiet = true;
        for n in net.node_set() {
            let rec = cfg.apply_heartbeat(net, transducer, &n)?;
            let new_out = !rec.output.is_subset(&output);
            output = output.union(&rec.output).map_err(NetError::Rel)?;
            if rec.state_changed || new_out {
                quiet = false;
            }
            // sends do not break the fixpoint: the probe never delivers,
            // and resending the same messages does not change any state.
        }
        if quiet {
            return Ok(HeartbeatOnlyOutcome {
                output,
                rounds: round + 1,
                fixpoint: true,
                final_config: cfg,
            });
        }
    }
    Ok(HeartbeatOnlyOutcome {
        output,
        rounds: max_rounds,
        fixpoint: false,
        final_config: cfg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{atom, CqBuilder, QueryRef, Term, UcqQuery};
    use rtx_relational::{fact, tuple, Instance, Schema};
    use rtx_transducer::TransducerBuilder;
    use std::sync::Arc;

    fn cq(rule: rtx_query::CqRule) -> QueryRef {
        Arc::new(UcqQuery::single(rule))
    }

    /// Deduplicating flooder: sends unseen S/M facts, stores everything
    /// in T, outputs T. Terminates (buffers drain) on every topology.
    fn dedup_flooder() -> Transducer {
        let send = rtx_query::UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        let store = rtx_query::UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        TransducerBuilder::new("dedup-flooder")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .output_arity(1)
            .send("M", Arc::new(send))
            .insert("T", Arc::new(store))
            .output(cq(CqBuilder::head(vec![Term::var("X")])
                .when(atom!("T"; @"X"))
                .build()
                .unwrap()))
            .build()
            .unwrap()
    }

    fn input_s(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn flooding_reaches_quiescence_on_line() {
        let net = Network::line(4).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2, 3]);
        let p = HorizontalPartition::round_robin(&net, &full);
        let mut sched = FifoRoundRobin::new();
        let out = run(&net, &t, &p, &mut sched, &RunBudget::steps(10_000)).unwrap();
        assert!(out.quiescent, "dedup flooding must quiesce");
        assert_eq!(out.output.len(), 3);
        // every node ends with the full set
        for per in out.outputs_per_node.values() {
            assert_eq!(per.len(), 3);
        }
        assert!(out.deliveries > 0);
        assert!(out.messages_enqueued > 0);
    }

    #[test]
    fn schedulers_agree_on_consistent_transducer() {
        let net = Network::ring(5).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[10, 20, 30, 40]);
        let p = HorizontalPartition::round_robin(&net, &full);
        let budget = RunBudget::steps(50_000);
        let fifo = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        let lifo = run(&net, &t, &p, &mut LifoRoundRobin::new(), &budget).unwrap();
        let rand1 = run(&net, &t, &p, &mut RandomScheduler::seeded(42), &budget).unwrap();
        let rand2 = run(&net, &t, &p, &mut RandomScheduler::seeded(1337), &budget).unwrap();
        assert_eq!(fifo.output, lifo.output);
        assert_eq!(fifo.output, rand1.output);
        assert_eq!(fifo.output, rand2.output);
        assert!(fifo.quiescent && lifo.quiescent && rand1.quiescent && rand2.quiescent);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let net = Network::star(4).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2]);
        let p = HorizontalPartition::round_robin(&net, &full);
        let budget = RunBudget::default();
        let a = run(&net, &t, &p, &mut RandomScheduler::seeded(7), &budget).unwrap();
        let b = run(&net, &t, &p, &mut RandomScheduler::seeded(7), &budget).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.messages_enqueued, b.messages_enqueued);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn target_output_stops_early() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[5]);
        let p = HorizontalPartition::concentrate(&net, &full, &rtx_relational::Value::sym("n0"))
            .unwrap();
        let target = Relation::from_tuples(1, vec![tuple![5]]).unwrap();
        let budget = RunBudget::steps(10_000).until_output(target);
        let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        assert!(out.reached_target);
    }

    #[test]
    fn budget_exhaustion_reports_non_quiescent() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2, 3, 4]);
        let p = HorizontalPartition::round_robin(&net, &full);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(3),
        )
        .unwrap();
        assert!(!out.quiescent);
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn heartbeat_only_probe_with_full_replication() {
        // with the full input everywhere, the dedup flooder outputs
        // everything in round 1 without any delivery
        let net = Network::ring(4).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2]);
        let p = HorizontalPartition::replicate(&net, &full);
        let probe = run_heartbeats_only(&net, &t, &p, 50).unwrap();
        assert!(probe.fixpoint);
        assert_eq!(probe.output.len(), 2);
    }

    #[test]
    fn heartbeat_only_probe_fails_on_concentrated_partition() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2]);
        let p = HorizontalPartition::concentrate(&net, &full, &rtx_relational::Value::sym("n0"))
            .unwrap();
        let probe = run_heartbeats_only(&net, &t, &p, 50).unwrap();
        // only n0's own facts are output; others never hear of them
        assert!(probe.fixpoint);
        assert_eq!(probe.output.len(), 2); // n0 outputs its own copy
                                           // (output is global union; n1, n2 output nothing)
        let n2 = rtx_relational::Value::sym("n2");
        let st = probe.final_config.state(&n2).unwrap();
        assert!(st.relation(&"T".into()).unwrap().is_empty());
    }

    #[test]
    fn single_node_network_only_heartbeats() {
        let net = Network::single();
        let t = dedup_flooder();
        let full = input_s(&[1, 2]);
        let p = HorizontalPartition::replicate(&net, &full);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::default(),
        )
        .unwrap();
        assert!(out.quiescent);
        assert_eq!(out.deliveries, 0);
        assert_eq!(out.output.len(), 2);
    }

    /// Regression: `rounds()` used to increment when a round was
    /// *planned*, reporting 1 immediately after the first action of the
    /// run. It must report a round only once all its planned actions
    /// have been consumed (returned or skipped).
    #[test]
    fn fifo_rounds_count_consumed_rounds_only() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[]));
        let mut cfg = Configuration::initial(&net, &t, &p).unwrap();
        // one buffered fact at n1; never applied, so the plan's skip
        // logic sees a stable configuration
        let n1 = rtx_relational::Value::sym("n1");
        cfg.enqueue_fact(&n1, fact!("M", 7)).unwrap();
        let mut sched = FifoRoundRobin::new();
        // round plan: HB n0, n1, n2 then DeliverOldest n0 (skip), n1, n2 (skip)
        for expected_rounds in [0usize, 0, 0] {
            assert!(matches!(
                sched.next_action(&cfg, &net),
                Action::Heartbeat(_)
            ));
            assert_eq!(sched.rounds(), expected_rounds);
        }
        // the delivery at n1 consumes the skipped n0 entry but leaves n2
        // planned: the round is not yet complete
        assert!(matches!(
            sched.next_action(&cfg, &net),
            Action::Deliver(_, 0)
        ));
        assert_eq!(sched.rounds(), 0);
        // the next call drains the skipped n2 entry (completing round 1)
        // and starts round 2
        assert!(matches!(
            sched.next_action(&cfg, &net),
            Action::Heartbeat(_)
        ));
        assert_eq!(sched.rounds(), 1);
    }

    /// Regression companion: a run interrupted by its step budget in the
    /// middle of a round must not count the partial round.
    #[test]
    fn fifo_rounds_not_counted_on_interrupted_budget() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[]));
        let mut cfg = Configuration::initial(&net, &t, &p).unwrap();
        let n1 = rtx_relational::Value::sym("n1");
        cfg.enqueue_fact(&n1, fact!("M", 7)).unwrap();
        let mut sched = FifoRoundRobin::new();
        let out = run_from(&net, &t, cfg, &mut sched, &RunBudget::steps(2)).unwrap();
        assert_eq!(out.steps, 2);
        assert_eq!(sched.rounds(), 0, "partial rounds must not be counted");
    }

    #[test]
    fn lifo_rounds_counter_matches_fifo_semantics() {
        let net = Network::line(2).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[]));
        let mut cfg = Configuration::initial(&net, &t, &p).unwrap();
        let n0 = rtx_relational::Value::sym("n0");
        cfg.enqueue_fact(&n0, fact!("M", 1)).unwrap();
        let mut sched = LifoRoundRobin::new();
        // plan: HB n0, HB n1, DeliverNewest n0, DeliverNewest n1 (skip)
        sched.next_action(&cfg, &net);
        sched.next_action(&cfg, &net);
        assert_eq!(sched.rounds(), 0);
        // delivering at n0 leaves n1 planned; the skip on the *next* call
        // completes the round
        assert!(matches!(
            sched.next_action(&cfg, &net),
            Action::Deliver(_, _)
        ));
        assert_eq!(sched.rounds(), 0);
        sched.next_action(&cfg, &net);
        assert_eq!(sched.rounds(), 1);
    }

    /// Regression: `with_heartbeat_prob(1.0)` used to heartbeat forever
    /// while mail was buffered, spinning until `max_steps`. The clamp +
    /// forced-delivery backstop must drain the dedup flooder within a
    /// modest budget.
    #[test]
    fn heartbeat_prob_one_still_drains() {
        let net = Network::line(4).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3]));
        let mut sched = RandomScheduler::seeded(9).with_heartbeat_prob(1.0);
        let out = run(&net, &t, &p, &mut sched, &RunBudget::steps(50_000)).unwrap();
        assert!(out.quiescent, "p=1.0 must still drain: {} steps", out.steps);
        assert_eq!(out.output.len(), 3);
        assert!(out.deliveries > 0);
    }

    #[test]
    fn heartbeat_prob_near_one_still_drains() {
        let net = Network::line(4).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3]));
        let mut sched = RandomScheduler::seeded(11).with_heartbeat_prob(0.999);
        let out = run(&net, &t, &p, &mut sched, &RunBudget::steps(200_000)).unwrap();
        assert!(out.quiescent, "p=0.999 must drain: {} steps", out.steps);
        assert_eq!(out.output.len(), 3);
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(FifoRoundRobin::new().name(), "fifo-round-robin");
        assert_eq!(LifoRoundRobin::new().name(), "lifo-round-robin");
        assert_eq!(RandomScheduler::seeded(1).name(), "random");
    }
}

//! Run drivers and schedulers.
//!
//! The paper's runs are infinite fair sequences of heartbeat and delivery
//! transitions; their *output* reaches a quiescence point after finitely
//! many steps (Proposition 1). The driver executes a finite prefix: it
//! follows a pluggable [`Scheduler`] while messages are in flight, probes
//! for stability when all buffers are empty, and stops at quiescence, at
//! a target output, or at the step budget.

use crate::config::{Configuration, TransitionRecord};
use crate::error::NetError;
use crate::partition::HorizontalPartition;
use crate::topology::{Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtx_relational::Relation;
use rtx_transducer::Transducer;
use std::collections::{BTreeMap, VecDeque};

/// One schedulable global transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Heartbeat at a node.
    Heartbeat(NodeId),
    /// Deliver the buffered fact at the given index of a node's buffer.
    Deliver(NodeId, usize),
}

/// Chooses the next transition. The driver only consults the scheduler
/// while at least one buffer is nonempty; all-empty configurations are
/// handled by deterministic stability rounds.
pub trait Scheduler {
    /// Pick the next action for the configuration.
    fn next_action(&mut self, cfg: &Configuration, net: &Network) -> Action;

    /// Diagnostic name.
    fn name(&self) -> &'static str;
}

/// Round-based FIFO scheduler: each round heartbeats every node once,
/// then delivers the *oldest* buffered fact at every node that has mail.
///
/// This realizes the FIFO-buffer, round-synchronous runs used in the
/// proof of Theorem 16.
#[derive(Debug, Default)]
pub struct FifoRoundRobin {
    pending: VecDeque<PlannedAction>,
    rounds: usize,
}

#[derive(Debug, Clone)]
enum PlannedAction {
    Heartbeat(NodeId),
    DeliverOldest(NodeId),
    DeliverNewest(NodeId),
}

impl FifoRoundRobin {
    /// New FIFO round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of completed scheduling rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl Scheduler for FifoRoundRobin {
    fn next_action(&mut self, cfg: &Configuration, net: &Network) -> Action {
        loop {
            match self.pending.pop_front() {
                Some(PlannedAction::Heartbeat(n)) => return Action::Heartbeat(n),
                Some(PlannedAction::DeliverOldest(n)) => {
                    if !cfg.buffer(&n).is_empty() {
                        return Action::Deliver(n, 0);
                    }
                }
                Some(PlannedAction::DeliverNewest(n)) => {
                    let len = cfg.buffer(&n).len();
                    if len > 0 {
                        return Action::Deliver(n, len - 1);
                    }
                }
                None => {
                    self.rounds += 1;
                    for n in net.nodes() {
                        self.pending.push_back(PlannedAction::Heartbeat(n.clone()));
                    }
                    for n in net.nodes() {
                        self.pending
                            .push_back(PlannedAction::DeliverOldest(n.clone()));
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "fifo-round-robin"
    }
}

/// Like [`FifoRoundRobin`] but delivers the *newest* buffered fact —
/// an adversarial ordering that exhibits the non-FIFO behaviour the
/// paper explicitly allows ("messages are not necessarily received in
/// the order they have been sent").
#[derive(Debug, Default)]
pub struct LifoRoundRobin {
    pending: VecDeque<PlannedAction>,
}

impl LifoRoundRobin {
    /// New LIFO round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LifoRoundRobin {
    fn next_action(&mut self, cfg: &Configuration, net: &Network) -> Action {
        loop {
            match self.pending.pop_front() {
                Some(PlannedAction::Heartbeat(n)) => return Action::Heartbeat(n),
                Some(PlannedAction::DeliverNewest(n)) => {
                    let len = cfg.buffer(&n).len();
                    if len > 0 {
                        return Action::Deliver(n, len - 1);
                    }
                }
                Some(PlannedAction::DeliverOldest(_)) => unreachable!("lifo plans no fifo"),
                None => {
                    for n in net.nodes() {
                        self.pending.push_back(PlannedAction::Heartbeat(n.clone()));
                    }
                    for n in net.nodes() {
                        self.pending
                            .push_back(PlannedAction::DeliverNewest(n.clone()));
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "lifo-round-robin"
    }
}

/// Seeded random scheduler: picks a random node; delivers a uniformly
/// random buffered fact with high probability, heartbeats otherwise.
/// Statistically fair — every buffered fact is eventually delivered with
/// probability 1, and every node heartbeats infinitely often.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
    heartbeat_prob: f64,
}

impl RandomScheduler {
    /// New random scheduler from a seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
            heartbeat_prob: 0.25,
        }
    }

    /// Adjust the heartbeat probability.
    pub fn with_heartbeat_prob(mut self, p: f64) -> Self {
        self.heartbeat_prob = p.clamp(0.0, 1.0);
        self
    }
}

impl Scheduler for RandomScheduler {
    fn next_action(&mut self, cfg: &Configuration, net: &Network) -> Action {
        let nodes: Vec<&NodeId> = net.nodes().collect();
        if self.rng.gen_bool(self.heartbeat_prob) {
            let n = nodes[self.rng.gen_range(0..nodes.len())];
            return Action::Heartbeat(n.clone());
        }
        let with_mail: Vec<&NodeId> = cfg.nodes_with_mail().collect();
        if with_mail.is_empty() {
            let n = nodes[self.rng.gen_range(0..nodes.len())];
            return Action::Heartbeat(n.clone());
        }
        let n = with_mail[self.rng.gen_range(0..with_mail.len())];
        let idx = self.rng.gen_range(0..cfg.buffer(n).len());
        Action::Deliver(n.clone(), idx)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Stop conditions and budgets for a run.
#[derive(Clone, Debug)]
pub struct RunBudget {
    /// Maximum number of global transitions.
    pub max_steps: usize,
    /// Stop early once the accumulated global output equals this relation
    /// (used to drive paper-faithful but non-draining transducers, whose
    /// buffers never empty although the output quiesces).
    ///
    /// An **empty** target is ignored: the initial output trivially equals
    /// it, so an empty expected answer can only be certified by reaching
    /// quiescence. Note also that outputs accumulate monotonically, so a
    /// run that would eventually *overshoot* the target passes through it;
    /// treat `reached_target` as "produced exactly the target so far".
    pub target_output: Option<Relation>,
}

impl RunBudget {
    /// A budget with the given step cap and no output target.
    pub fn steps(max_steps: usize) -> Self {
        RunBudget {
            max_steps,
            target_output: None,
        }
    }

    /// Add an output target.
    pub fn until_output(mut self, target: Relation) -> Self {
        self.target_output = Some(target);
        self
    }
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget::steps(100_000)
    }
}

/// The observable result of a (finite prefix of a) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Global accumulated output `out(ρ)` = union over all transitions.
    pub output: Relation,
    /// Output accumulated per node.
    pub outputs_per_node: BTreeMap<NodeId, Relation>,
    /// Total global transitions executed.
    pub steps: usize,
    /// Heartbeat transitions executed.
    pub heartbeats: usize,
    /// Delivery transitions executed.
    pub deliveries: usize,
    /// Total facts sent (a fact sent to `d` neighbors counts `d` times).
    pub messages_enqueued: usize,
    /// Did the run reach quiescence (all buffers empty, every heartbeat a
    /// no-op)?
    pub quiescent: bool,
    /// Did the run reach the requested target output?
    pub reached_target: bool,
    /// The final configuration.
    pub final_config: Configuration,
}

/// Drive a run of `(net, transducer)` from the initial configuration for
/// `partition`, following `scheduler`.
pub fn run(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    scheduler: &mut dyn Scheduler,
    budget: &RunBudget,
) -> Result<RunOutcome, NetError> {
    let cfg = Configuration::initial(net, transducer, partition)?;
    run_from(net, transducer, cfg, scheduler, budget)
}

/// Drive a run from an explicit starting configuration.
pub fn run_from(
    net: &Network,
    transducer: &Transducer,
    mut cfg: Configuration,
    scheduler: &mut dyn Scheduler,
    budget: &RunBudget,
) -> Result<RunOutcome, NetError> {
    let arity = transducer.schema().output_arity();
    let mut outputs_per_node: BTreeMap<NodeId, Relation> = net
        .nodes()
        .map(|n| (n.clone(), Relation::empty(arity)))
        .collect();
    let mut output = Relation::empty(arity);
    let mut steps = 0usize;
    let mut heartbeats = 0usize;
    let mut deliveries = 0usize;
    let mut messages_enqueued = 0usize;
    let mut quiescent = false;
    let mut reached_target = false;

    let absorb = |rec: &TransitionRecord,
                  output: &mut Relation,
                  outputs_per_node: &mut BTreeMap<NodeId, Relation>|
     -> Result<(), NetError> {
        *output = output.union(&rec.output).map_err(NetError::Rel)?;
        let per = outputs_per_node.get_mut(&rec.node).expect("known node");
        *per = per.union(&rec.output).map_err(NetError::Rel)?;
        Ok(())
    };

    'outer: while steps < budget.max_steps {
        if let Some(target) = &budget.target_output {
            if !target.is_empty() && &output == target {
                reached_target = true;
                break;
            }
        }
        if cfg.all_buffers_empty() {
            // Stability round: heartbeat every node once. If the whole
            // round is a no-op (and produced no new output), the
            // configuration repeats forever: quiescence.
            let mut all_quiet = true;
            for n in net.node_set() {
                if steps >= budget.max_steps {
                    break 'outer;
                }
                let rec = cfg.apply_heartbeat(net, transducer, &n)?;
                steps += 1;
                heartbeats += 1;
                messages_enqueued += rec.enqueued;
                let new_out = !rec.output.is_subset(&output);
                absorb(&rec, &mut output, &mut outputs_per_node)?;
                if rec.state_changed || rec.sent_facts > 0 || new_out {
                    all_quiet = false;
                }
            }
            if all_quiet {
                quiescent = true;
                break;
            }
            continue;
        }
        let action = scheduler.next_action(&cfg, net);
        let rec = match action {
            Action::Heartbeat(n) => {
                heartbeats += 1;
                cfg.apply_heartbeat(net, transducer, &n)?
            }
            Action::Deliver(n, idx) => {
                deliveries += 1;
                cfg.apply_delivery(net, transducer, &n, idx)?
            }
        };
        steps += 1;
        messages_enqueued += rec.enqueued;
        absorb(&rec, &mut output, &mut outputs_per_node)?;
    }

    if let Some(target) = &budget.target_output {
        if &output == target && (quiescent || !target.is_empty()) {
            reached_target = true;
        }
    }

    Ok(RunOutcome {
        output,
        outputs_per_node,
        steps,
        heartbeats,
        deliveries,
        messages_enqueued,
        quiescent,
        reached_target,
        final_config: cfg,
    })
}

/// Outcome of a heartbeat-only run (the coordination-freeness probe).
#[derive(Clone, Debug)]
pub struct HeartbeatOnlyOutcome {
    /// Accumulated output.
    pub output: Relation,
    /// Rounds executed (each round heartbeats every node once).
    pub rounds: usize,
    /// Whether a global heartbeat fixpoint was reached. Note: facts may
    /// have been *sent* (they pile up in buffers and are never delivered);
    /// quiescence of the *output* is what the definition asks for.
    pub fixpoint: bool,
    /// Final configuration (with possibly nonempty buffers).
    pub final_config: Configuration,
}

/// Run only heartbeat transitions, round-robin, until the output and
/// all states stabilize or `max_rounds` is hit.
///
/// This implements the paper's coordination-freeness probe: "a run in
/// which a quiescence point is reached by only performing heartbeat
/// transitions". Messages may be sent — they are simply never delivered
/// within the probe (a legal run prefix: delivery is merely postponed).
pub fn run_heartbeats_only(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    max_rounds: usize,
) -> Result<HeartbeatOnlyOutcome, NetError> {
    let mut cfg = Configuration::initial(net, transducer, partition)?;
    let arity = transducer.schema().output_arity();
    let mut output = Relation::empty(arity);
    for round in 0..max_rounds {
        let mut quiet = true;
        for n in net.node_set() {
            let rec = cfg.apply_heartbeat(net, transducer, &n)?;
            let new_out = !rec.output.is_subset(&output);
            output = output.union(&rec.output).map_err(NetError::Rel)?;
            if rec.state_changed || new_out {
                quiet = false;
            }
            // sends do not break the fixpoint: the probe never delivers,
            // and resending the same messages does not change any state.
        }
        if quiet {
            return Ok(HeartbeatOnlyOutcome {
                output,
                rounds: round + 1,
                fixpoint: true,
                final_config: cfg,
            });
        }
    }
    Ok(HeartbeatOnlyOutcome {
        output,
        rounds: max_rounds,
        fixpoint: false,
        final_config: cfg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{atom, CqBuilder, QueryRef, Term, UcqQuery};
    use rtx_relational::{fact, tuple, Instance, Schema};
    use rtx_transducer::TransducerBuilder;
    use std::sync::Arc;

    fn cq(rule: rtx_query::CqRule) -> QueryRef {
        Arc::new(UcqQuery::single(rule))
    }

    /// Deduplicating flooder: sends unseen S/M facts, stores everything
    /// in T, outputs T. Terminates (buffers drain) on every topology.
    fn dedup_flooder() -> Transducer {
        let send = rtx_query::UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        let store = rtx_query::UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        TransducerBuilder::new("dedup-flooder")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .output_arity(1)
            .send("M", Arc::new(send))
            .insert("T", Arc::new(store))
            .output(cq(CqBuilder::head(vec![Term::var("X")])
                .when(atom!("T"; @"X"))
                .build()
                .unwrap()))
            .build()
            .unwrap()
    }

    fn input_s(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn flooding_reaches_quiescence_on_line() {
        let net = Network::line(4).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2, 3]);
        let p = HorizontalPartition::round_robin(&net, &full);
        let mut sched = FifoRoundRobin::new();
        let out = run(&net, &t, &p, &mut sched, &RunBudget::steps(10_000)).unwrap();
        assert!(out.quiescent, "dedup flooding must quiesce");
        assert_eq!(out.output.len(), 3);
        // every node ends with the full set
        for per in out.outputs_per_node.values() {
            assert_eq!(per.len(), 3);
        }
        assert!(out.deliveries > 0);
        assert!(out.messages_enqueued > 0);
    }

    #[test]
    fn schedulers_agree_on_consistent_transducer() {
        let net = Network::ring(5).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[10, 20, 30, 40]);
        let p = HorizontalPartition::round_robin(&net, &full);
        let budget = RunBudget::steps(50_000);
        let fifo = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        let lifo = run(&net, &t, &p, &mut LifoRoundRobin::new(), &budget).unwrap();
        let rand1 = run(&net, &t, &p, &mut RandomScheduler::seeded(42), &budget).unwrap();
        let rand2 = run(&net, &t, &p, &mut RandomScheduler::seeded(1337), &budget).unwrap();
        assert_eq!(fifo.output, lifo.output);
        assert_eq!(fifo.output, rand1.output);
        assert_eq!(fifo.output, rand2.output);
        assert!(fifo.quiescent && lifo.quiescent && rand1.quiescent && rand2.quiescent);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let net = Network::star(4).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2]);
        let p = HorizontalPartition::round_robin(&net, &full);
        let budget = RunBudget::default();
        let a = run(&net, &t, &p, &mut RandomScheduler::seeded(7), &budget).unwrap();
        let b = run(&net, &t, &p, &mut RandomScheduler::seeded(7), &budget).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.messages_enqueued, b.messages_enqueued);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn target_output_stops_early() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[5]);
        let p = HorizontalPartition::concentrate(&net, &full, &rtx_relational::Value::sym("n0"))
            .unwrap();
        let target = Relation::from_tuples(1, vec![tuple![5]]).unwrap();
        let budget = RunBudget::steps(10_000).until_output(target);
        let out = run(&net, &t, &p, &mut FifoRoundRobin::new(), &budget).unwrap();
        assert!(out.reached_target);
    }

    #[test]
    fn budget_exhaustion_reports_non_quiescent() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2, 3, 4]);
        let p = HorizontalPartition::round_robin(&net, &full);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(3),
        )
        .unwrap();
        assert!(!out.quiescent);
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn heartbeat_only_probe_with_full_replication() {
        // with the full input everywhere, the dedup flooder outputs
        // everything in round 1 without any delivery
        let net = Network::ring(4).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2]);
        let p = HorizontalPartition::replicate(&net, &full);
        let probe = run_heartbeats_only(&net, &t, &p, 50).unwrap();
        assert!(probe.fixpoint);
        assert_eq!(probe.output.len(), 2);
    }

    #[test]
    fn heartbeat_only_probe_fails_on_concentrated_partition() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let full = input_s(&[1, 2]);
        let p = HorizontalPartition::concentrate(&net, &full, &rtx_relational::Value::sym("n0"))
            .unwrap();
        let probe = run_heartbeats_only(&net, &t, &p, 50).unwrap();
        // only n0's own facts are output; others never hear of them
        assert!(probe.fixpoint);
        assert_eq!(probe.output.len(), 2); // n0 outputs its own copy
                                           // (output is global union; n1, n2 output nothing)
        let n2 = rtx_relational::Value::sym("n2");
        let st = probe.final_config.state(&n2).unwrap();
        assert!(st.relation(&"T".into()).unwrap().is_empty());
    }

    #[test]
    fn single_node_network_only_heartbeats() {
        let net = Network::single();
        let t = dedup_flooder();
        let full = input_s(&[1, 2]);
        let p = HorizontalPartition::replicate(&net, &full);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::default(),
        )
        .unwrap();
        assert!(out.quiescent);
        assert_eq!(out.deliveries, 0);
        assert_eq!(out.output.len(), 2);
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(FifoRoundRobin::new().name(), "fifo-round-robin");
        assert_eq!(LifoRoundRobin::new().name(), "lifo-round-robin");
        assert_eq!(RandomScheduler::seeded(1).name(), "random");
    }
}

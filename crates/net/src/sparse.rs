//! Event-driven sparse execution for huge networks.
//!
//! The round-synchronous executor ([`crate::run_sharded`]) heartbeats
//! every node every round. That is faithful and simple, but on a
//! million-node network with a hundred active nodes it pays 10⁶ steps
//! per round for 10² steps of progress. This module adds an
//! **event-driven** executor: quiescent nodes *park*, and only nodes
//! that are *armed* (their next heartbeat might do something) or have
//! *mail* (undelivered buffered facts) are scheduled.
//!
//! The work queue is a deterministic priority queue — the armed and
//! mail sets of [`ActivationSet`], ordered by node index — and its jobs
//! are dispatched to the same worker shards as the dense executor (the
//! shared [`Engine`](crate::shard) backend), so thread count and shard
//! plan still never affect results.
//!
//! ## Soundness of parking
//!
//! A heartbeat is a pure function of the node's own state. If a
//! heartbeat changed no state, sent nothing, and produced no new
//! output, then — until that node's state changes — every further
//! heartbeat is the same no-op, so the node can park. Its state can
//! only change through one of its own transitions, and the only
//! transition a parked node can still perform is a delivery; therefore
//! re-arming on (a) every fact enqueued to a node, (b) every delivery a
//! node performs, and (c) every fault that touches a node's state
//! (restart wipe, heal) preserves the invariant:
//!
//! > **a parked node's next heartbeat is provably a no-op.**
//!
//! Two corollaries drive the executor:
//!
//! * **No starvation.** Every node with undelivered mail is offered a
//!   delivery every round, whether parked or not — exactly the fairness
//!   property the paper's runs require (and which the satellite
//!   scheduler bugs of this PR violated in the seed drivers).
//! * **O(active) quiescence certification.** When no node is armed, no
//!   node has mail, nothing is in flight, and the fault horizon has
//!   passed, the configuration repeats forever. The stability probe is
//!   a set-emptiness check — it never wakes the whole network.
//!
//! One wrinkle: every node must heartbeat at least once before it may
//! park, since an initial state can produce output or sends on its
//! own. The executor schedules this arming sweep through a warm-up
//! queue rate-limited to 1% of the network per round, so warm-up costs
//! exactly `n` heartbeats in total but never floods a single phase.
//!
//! The price is that the executor is *not* step-for-step identical to
//! the dense one: it skips the no-op heartbeats the dense executor
//! performs, so step counters and transition logs differ. Outputs,
//! per-node outputs, and the quiescence verdict agree with the fair
//! serial reference on confluent transducers — property-tested in
//! `tests/sparse.rs` across random topologies, thread counts, budgets,
//! and fault plans.

use crate::config::{
    ActivationSet, Configuration, TransitionKind, TransitionLog, TransitionRecord,
};
use crate::error::NetError;
use crate::fault::{FaultHook, NodeFault};
use crate::partition::HorizontalPartition;
use crate::run::{RunBudget, RunOutcome};
use crate::shard::{
    decompose, run_sharded, run_sharded_faulted, spawn_sharded_engine, Engine, Job, JobKind,
    ShardOptions, ShardRunOutcome, StepOut,
};
use crate::shard::{worker_gone, ExecMode};
use crate::topology::{Network, NodeId};
use rtx_obs::trace;
use rtx_relational::{Fact, Relation};
use rtx_transducer::Transducer;
use std::collections::{BTreeMap, BTreeSet};

/// Which executor drives a round-based run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutorKind {
    /// The dense round-synchronous executor ([`crate::run_sharded`]):
    /// every up node heartbeats every round.
    #[default]
    Rounds,
    /// The event-driven sparse executor ([`run_sparse`]): parked nodes
    /// are skipped; only armed or mailed nodes are scheduled.
    Sparse,
}

impl ExecutorKind {
    /// Parse an executor name (the accepted values of
    /// `RTX_NET_EXECUTOR`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "rounds" | "dense" => Some(ExecutorKind::Rounds),
            "sparse" | "event" => Some(ExecutorKind::Sparse),
            _ => None,
        }
    }

    /// The executor selected by the `RTX_NET_EXECUTOR` environment
    /// variable (`rounds` or `sparse`), defaulting to
    /// [`ExecutorKind::Rounds`]. Parsed through [`rtx_core::env`], so a
    /// typo'd value warns loudly and falls back to the default.
    pub fn auto() -> Self {
        rtx_core::env::parse_choice("RTX_NET_EXECUTOR", "rounds or sparse", Self::parse)
            .unwrap_or_default()
    }

    /// Diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            ExecutorKind::Rounds => "rounds",
            ExecutorKind::Sparse => "sparse",
        }
    }
}

/// Run under an explicit executor choice.
pub fn run_executor(
    kind: ExecutorKind,
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
) -> Result<ShardRunOutcome, NetError> {
    match kind {
        ExecutorKind::Rounds => run_sharded(net, transducer, partition, opts, budget),
        ExecutorKind::Sparse => run_sparse(net, transducer, partition, opts, budget),
    }
}

/// [`run_executor`] under fault injection.
pub fn run_executor_faulted(
    kind: ExecutorKind,
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
    faults: &mut dyn FaultHook,
) -> Result<ShardRunOutcome, NetError> {
    match kind {
        ExecutorKind::Rounds => {
            run_sharded_faulted(net, transducer, partition, opts, budget, faults)
        }
        ExecutorKind::Sparse => {
            run_sparse_faulted(net, transducer, partition, opts, budget, faults)
        }
    }
}

/// Run with the executor selected by `RTX_NET_EXECUTOR` (see
/// [`ExecutorKind::auto`]). This is the entry point CI's
/// `RTX_NET_EXECUTOR=sparse` pass pivots on.
pub fn run_auto(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
) -> Result<ShardRunOutcome, NetError> {
    run_executor(
        ExecutorKind::auto(),
        net,
        transducer,
        partition,
        opts,
        budget,
    )
}

/// [`run_auto`] under fault injection.
pub fn run_auto_faulted(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
    faults: &mut dyn FaultHook,
) -> Result<ShardRunOutcome, NetError> {
    run_executor_faulted(
        ExecutorKind::auto(),
        net,
        transducer,
        partition,
        opts,
        budget,
        faults,
    )
}

/// Drive an event-driven sparse run of `(net, transducer)` from the
/// initial configuration for `partition`.
///
/// Accepts the same [`ShardOptions`] as [`crate::run_sharded`]
/// (execution mode, shard plan, per-round delivery scheduling and
/// batching, transition log) and the same [`RunBudget`] semantics:
/// `max_steps` counts executed transitions, phases truncate in node
/// order, `steps ≤ max_steps` always holds.
pub fn run_sparse(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
) -> Result<ShardRunOutcome, NetError> {
    let cfg = Configuration::initial(net, transducer, partition)?;
    run_sparse_from(net, transducer, cfg, opts, budget)
}

/// [`run_sparse`] from an explicit configuration (pair with
/// [`Configuration::initial_lean`] at large scales).
pub fn run_sparse_from(
    net: &Network,
    transducer: &Transducer,
    cfg: Configuration,
    opts: &ShardOptions,
    budget: &RunBudget,
) -> Result<ShardRunOutcome, NetError> {
    run_sparse_inner(net, transducer, cfg, opts, budget, None)
}

/// [`run_sparse`] under fault injection. Fault events feed the
/// activation tracker: released in-flight copies mark mail, restarted
/// (and memory-wiped) nodes are re-armed, lost buffers drop their mail
/// marks — so adversarial fault plans drive the sparse executor exactly
/// like the dense one.
pub fn run_sparse_faulted(
    net: &Network,
    transducer: &Transducer,
    partition: &HorizontalPartition,
    opts: &ShardOptions,
    budget: &RunBudget,
    faults: &mut dyn FaultHook,
) -> Result<ShardRunOutcome, NetError> {
    let cfg = Configuration::initial(net, transducer, partition)?;
    run_sparse_faulted_from(net, transducer, cfg, opts, budget, faults)
}

/// [`run_sparse_faulted`] from an explicit configuration.
pub fn run_sparse_faulted_from(
    net: &Network,
    transducer: &Transducer,
    cfg: Configuration,
    opts: &ShardOptions,
    budget: &RunBudget,
    faults: &mut dyn FaultHook,
) -> Result<ShardRunOutcome, NetError> {
    run_sparse_inner(net, transducer, cfg, opts, budget, Some(faults))
}

fn run_sparse_inner(
    net: &Network,
    transducer: &Transducer,
    cfg: Configuration,
    opts: &ShardOptions,
    budget: &RunBudget,
    faults: Option<&mut dyn FaultHook>,
) -> Result<ShardRunOutcome, NetError> {
    let (nodes, states, buffers, adj) = decompose(net, cfg)?;
    let threads = opts.mode.threads().min(nodes.len()).max(1);
    match opts.mode {
        ExecMode::Sharded { .. } if threads > 1 => std::thread::scope(|scope| {
            let engine =
                spawn_sharded_engine(scope, transducer, &nodes, states, opts.plan, threads);
            drive_sparse(
                net, transducer, &nodes, &adj, buffers, engine, threads, opts, budget, faults,
            )
        }),
        _ => {
            let engine = Engine::Serial { states, transducer };
            drive_sparse(
                net, transducer, &nodes, &adj, buffers, engine, 1, opts, budget, faults,
            )
        }
    }
}

/// The sparse coordinator loop. Mirrors the dense coordinator's merge
/// discipline (node-order barriers, fault hook consulted only here) but
/// schedules phases from the activation tracker instead of the full
/// node range.
#[allow(clippy::too_many_arguments)]
fn drive_sparse(
    net: &Network,
    transducer: &Transducer,
    nodes: &[NodeId],
    adj: &[Vec<usize>],
    mut buffers: Vec<Vec<Fact>>,
    mut engine: Engine<'_>,
    threads_used: usize,
    opts: &ShardOptions,
    budget: &RunBudget,
    mut faults: Option<&mut dyn FaultHook>,
) -> Result<ShardRunOutcome, NetError> {
    let n = nodes.len();
    let t0 = rtx_obs::counting().then(std::time::Instant::now);
    let arity = transducer.schema().output_arity();
    let mut output = Relation::empty(arity);
    let mut outputs_per_node: BTreeMap<NodeId, Relation> = nodes
        .iter()
        .map(|nd| (*nd, Relation::empty(arity)))
        .collect();
    let mut steps = 0usize;
    let mut heartbeats = 0usize;
    let mut deliveries = 0usize;
    let mut messages_enqueued = 0usize;
    let mut rounds = 0usize;
    let mut max_active = 0usize;
    let mut quiescent = false;
    let mut reached_target = false;
    let mut log = opts.record_log.then(TransitionLog::new);
    // Every node must heartbeat once before it may park (an initial
    // state can produce output or sends). Sweeping them all in round 1
    // would schedule the whole network in a single phase, so the arming
    // sweep is rate-limited to 1% of the network (at least one node)
    // per round: warm-up still costs exactly n heartbeats in total, but
    // the scheduled frontier stays bounded by the event-driven frontier
    // plus the sweep chunk. A node consumed from the sweep is one that
    // actually ran, so budget truncation and down-phases never skip a
    // node's first heartbeat.
    let mut warmup: BTreeSet<usize> = (0..n).collect();
    let warmup_chunk = n.div_ceil(100);
    let mut act = ActivationSet::default();
    for (i, buf) in buffers.iter().enumerate() {
        if !buf.is_empty() {
            act.note_enqueue(i);
        }
    }
    let mut held: BTreeMap<u64, Vec<(usize, Fact)>> = BTreeMap::new();
    let mut down = vec![false; n];
    let mut idle_rounds = 0usize;

    // The barrier merge, identical in discipline to the dense
    // executor's: absorb outputs and sends in job (= node) order, with
    // every enqueued copy feeding the activation tracker. Returns, for
    // each job, whether the step was quiet (no state change, no sends,
    // no new output).
    let merge = |now: u64,
                 jobs: &[Job],
                 results: &mut BTreeMap<usize, StepOut>,
                 buffers: &mut Vec<Vec<Fact>>,
                 act: &mut ActivationSet,
                 held: &mut BTreeMap<u64, Vec<(usize, Fact)>>,
                 faults: &mut Option<&mut dyn FaultHook>,
                 output: &mut Relation,
                 outputs_per_node: &mut BTreeMap<NodeId, Relation>,
                 messages_enqueued: &mut usize,
                 log: &mut Option<TransitionLog>|
     -> Result<Vec<(usize, bool)>, NetError> {
        let mut quiet_flags = Vec::with_capacity(jobs.len());
        for (idx, kind) in jobs {
            let idx = *idx;
            let mut res = results.remove(&idx).ok_or_else(worker_gone)?;
            trace::splice(std::mem::take(&mut res.events));
            let new_out = !res.output.is_subset(output);
            let quiet = !res.state_changed && res.sent.is_empty() && !new_out;
            quiet_flags.push((idx, quiet));
            *output = output.union(&res.output).map_err(NetError::Rel)?;
            let per = outputs_per_node.get_mut(&nodes[idx]).expect("known node");
            *per = per.union(&res.output).map_err(NetError::Rel)?;
            let mut enqueued = 0usize;
            for &d in &adj[idx] {
                match faults {
                    None => {
                        for f in &res.sent {
                            buffers[d].push(f.clone());
                            act.note_enqueue(d);
                            enqueued += 1;
                        }
                    }
                    Some(fh) => {
                        for (k, f) in res.sent.iter().enumerate() {
                            let fate = fh.on_send(now, idx, d, k, f);
                            for &delay in &fate.delays {
                                if delay == 0 {
                                    buffers[d].push(f.clone());
                                    act.note_enqueue(d);
                                } else {
                                    held.entry(now + delay).or_default().push((d, f.clone()));
                                }
                                enqueued += 1;
                            }
                        }
                    }
                }
            }
            *messages_enqueued += enqueued;
            if let Some(log) = log {
                log.push(TransitionRecord {
                    node: nodes[idx],
                    round: now,
                    kind: match kind {
                        JobKind::Heartbeat => TransitionKind::Heartbeat,
                        JobKind::Deliver(f) => TransitionKind::Delivery(f.clone()),
                        JobKind::WipeMemory => unreachable!("wipes are not merged"),
                    },
                    output: res.output,
                    sent_facts: res.sent.len(),
                    enqueued,
                    state_changed: res.state_changed,
                });
            }
        }
        Ok(quiet_flags)
    };

    while steps < budget.max_steps {
        if let Some(target) = &budget.target_output {
            if !target.is_empty() && &output == target {
                reached_target = true;
                break;
            }
        }
        rounds += 1;
        let now = rounds as u64;
        let _round_span = trace::span("net", "round", &[("round", now as i64)]);

        // Fault phase (coordinator-only). Note this resolves node
        // statuses for *all* nodes — fault plans key decisions on
        // (round, node), so skipping parked nodes would change fates.
        // Plain (fault-free) sparse runs skip this entirely and do no
        // O(n) work per round.
        let mut fault_horizon_passed = true;
        if let Some(fh) = faults.as_deref_mut() {
            let _fault_span = trace::span("net", "phase.fault", &[]);
            let due: Vec<u64> = held.range(..=now).map(|(k, _)| *k).collect();
            for k in due {
                for (dst, fact) in held.remove(&k).unwrap_or_default() {
                    rtx_obs::event!("net", "fault.release", "node" => dst);
                    buffers[dst].push(fact);
                    act.note_enqueue(dst);
                }
            }
            let mut wipes: Vec<Job> = Vec::new();
            for (i, d) in down.iter_mut().enumerate() {
                match fh.node_fault(now, i) {
                    NodeFault::Up => {
                        if *d {
                            // implicit restart (a heal): re-arm
                            act.note_restart(i);
                            rtx_obs::event!("sparse", "arm.heal", "node" => i);
                        }
                        *d = false;
                    }
                    NodeFault::CrashNow { lose_buffer } => {
                        *d = true;
                        rtx_obs::event!("net", "fault.crash", "node" => i, "lose_buffer" => lose_buffer as i64);
                        if lose_buffer {
                            buffers[i].clear();
                            act.note_buffer_lost(i);
                        }
                    }
                    NodeFault::Down => *d = true,
                    NodeFault::RestartNow { wipe_memory } => {
                        *d = false;
                        act.note_restart(i);
                        rtx_obs::event!("net", "fault.restart", "node" => i, "wipe_memory" => wipe_memory as i64);
                        rtx_obs::event!("sparse", "arm.restart", "node" => i);
                        if wipe_memory {
                            wipes.push((i, JobKind::WipeMemory));
                        }
                    }
                }
            }
            if !wipes.is_empty() {
                let mut results = engine.execute(wipes.clone())?;
                for (idx, _) in wipes {
                    if let Some(mut res) = results.remove(&idx) {
                        trace::splice(std::mem::take(&mut res.events));
                    }
                }
            }
            fault_horizon_passed = now > fh.quiet_after() && held.is_empty();
        }

        // O(active) stability probe: nothing armed, no mail, nothing in
        // flight, no future fault events — the configuration repeats
        // forever. Parked nodes need not be woken: their heartbeats are
        // provably no-ops (module docs).
        if warmup.is_empty() && act.is_quiet() && held.is_empty() && fault_horizon_passed {
            debug_assert!(buffers.iter().all(Vec::is_empty));
            quiescent = true;
            break;
        }

        // Heartbeat phase: armed up nodes plus this round's warm-up
        // chunk, ascending, budget-truncated.
        let quota = budget.max_steps - steps;
        let mut hb_set: BTreeSet<usize> = act.armed_nodes().filter(|&i| !down[i]).collect();
        for i in warmup
            .iter()
            .copied()
            .filter(|&i| !down[i])
            .take(warmup_chunk)
        {
            hb_set.insert(i);
        }
        let hb_jobs: Vec<Job> = hb_set
            .into_iter()
            .take(quota)
            .map(|i| (i, JobKind::Heartbeat))
            .collect();
        for (i, _) in &hb_jobs {
            warmup.remove(i);
        }
        let hb_count = hb_jobs.len();
        max_active = max_active.max(hb_count);
        let hb_span = trace::span("net", "phase.heartbeat", &[("jobs", hb_count as i64)]);
        let mut results = engine.execute(hb_jobs.clone())?;
        let quiet_flags = merge(
            now,
            &hb_jobs,
            &mut results,
            &mut buffers,
            &mut act,
            &mut held,
            &mut faults,
            &mut output,
            &mut outputs_per_node,
            &mut messages_enqueued,
            &mut log,
        )?;
        let arm_tracing = rtx_obs::tracing();
        for (idx, quiet) in quiet_flags {
            act.note_heartbeat(idx, quiet);
            if arm_tracing {
                // The executor's arm/park decision for this node: a
                // quiet heartbeat parks it until re-armed by mail,
                // delivery, or a fault; a productive one keeps it armed.
                if quiet {
                    trace::instant("sparse", "park", &[("node", idx as i64)]);
                } else {
                    trace::instant("sparse", "arm.active", &[("node", idx as i64)]);
                }
            }
        }
        drop(hb_span);
        steps += hb_count;
        heartbeats += hb_count;
        if steps >= budget.max_steps {
            break;
        }
        if let Some(target) = &budget.target_output {
            if !target.is_empty() && &output == target {
                reached_target = true;
                break;
            }
        }

        // Delivery sub-phases: one fact per mailed up node per
        // sub-phase, same batching and scheduling knobs as the dense
        // executor. Facts are removed (and the tracker updated) before
        // each sub-phase executes, so its deliveries are independent.
        let mut delivered_this_round = 0usize;
        for sub in 0..opts.delivery.per_round() {
            if steps >= budget.max_steps {
                break;
            }
            let quota = budget.max_steps - steps;
            let mail_now: Vec<usize> = act.mail_nodes().filter(|&i| !down[i]).collect();
            let mut dl_jobs: Vec<Job> = Vec::new();
            for i in mail_now {
                if dl_jobs.len() >= quota {
                    break;
                }
                if buffers[i].is_empty() {
                    // mail marks may outlive a buffer faulted away
                    act.note_buffer_lost(i);
                    continue;
                }
                let pick = opts.scheduling.pick(rounds, i, buffers[i].len());
                dl_jobs.push((i, JobKind::Deliver(buffers[i].remove(pick))));
                act.note_delivery(i, buffers[i].is_empty());
            }
            if dl_jobs.is_empty() {
                break;
            }
            let dl_count = dl_jobs.len();
            max_active = max_active.max(dl_count);
            let _dl_span = trace::span(
                "net",
                "phase.deliver",
                &[("sub", sub as i64), ("jobs", dl_count as i64)],
            );
            let mut results = engine.execute(dl_jobs.clone())?;
            merge(
                now,
                &dl_jobs,
                &mut results,
                &mut buffers,
                &mut act,
                &mut held,
                &mut faults,
                &mut output,
                &mut outputs_per_node,
                &mut messages_enqueued,
                &mut log,
            )?;
            steps += dl_count;
            deliveries += dl_count;
            delivered_this_round += dl_count;
        }

        if hb_count == 0 && delivered_this_round == 0 {
            if fault_horizon_passed {
                // Everything armed or mailed is down forever (the
                // quiescence probe above already handled the
                // nothing-left-to-do case): stop, non-quiescent.
                break;
            }
            // A restart or an in-flight copy is still ahead. Idle
            // rounds consume no budget steps; cap the streak like the
            // dense executor does.
            idle_rounds += 1;
            if idle_rounds > budget.max_steps {
                break;
            }
        } else {
            idle_rounds = 0;
        }
    }

    if let Some(target) = &budget.target_output {
        if &output == target && (quiescent || !target.is_empty()) {
            reached_target = true;
        }
    }

    let states = engine.finish(n)?;
    let final_config = Configuration::from_parts(
        nodes
            .iter()
            .cloned()
            .zip(states)
            .zip(buffers)
            .map(|((nd, st), buf)| (nd, st, buf)),
    );
    debug_assert_eq!(net.len(), n);
    let out = ShardRunOutcome {
        outcome: RunOutcome {
            output,
            outputs_per_node,
            steps,
            heartbeats,
            deliveries,
            messages_enqueued,
            quiescent,
            reached_target,
            final_config,
        },
        rounds,
        threads_used,
        max_active,
        log,
    };
    if let Some(t0) = t0 {
        out.publish();
        rtx_obs::registry::record("net.run_ns", t0.elapsed().as_nanos() as u64);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SendFate;
    use crate::shard::{DeliveryPolicy, RoundScheduling, ShardPlan};
    use rtx_query::{atom, CqBuilder, QueryRef, Term, UcqQuery};
    use rtx_relational::{fact, Instance, Schema};
    use rtx_transducer::TransducerBuilder;
    use std::sync::Arc;

    fn cq(rule: rtx_query::CqRule) -> QueryRef {
        Arc::new(UcqQuery::single(rule))
    }

    /// Deduplicating flooder (same machine as the shard.rs tests).
    fn dedup_flooder() -> Transducer {
        let send = UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .unless(atom!("T"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        let store = UcqQuery::new(
            1,
            vec![
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .build()
                    .unwrap(),
                CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        TransducerBuilder::new("dedup-flooder")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .output_arity(1)
            .send("M", Arc::new(send))
            .insert("T", Arc::new(store))
            .output(cq(CqBuilder::head(vec![Term::var("X")])
                .when(atom!("T"; @"X"))
                .build()
                .unwrap()))
            .build()
            .unwrap()
    }

    fn input_s(vals: &[i64]) -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn executor_kind_parses_and_defaults() {
        assert_eq!(ExecutorKind::parse("rounds"), Some(ExecutorKind::Rounds));
        assert_eq!(ExecutorKind::parse("Dense"), Some(ExecutorKind::Rounds));
        assert_eq!(ExecutorKind::parse("SPARSE"), Some(ExecutorKind::Sparse));
        assert_eq!(ExecutorKind::parse("event"), Some(ExecutorKind::Sparse));
        assert_eq!(ExecutorKind::parse("nope"), None);
        assert_eq!(ExecutorKind::default(), ExecutorKind::Rounds);
        assert_eq!(ExecutorKind::Sparse.name(), "sparse");
        assert_eq!(ExecutorKind::Rounds.name(), "rounds");
    }

    #[test]
    fn sparse_matches_dense_output_and_quiescence() {
        let t = dedup_flooder();
        for net in [
            Network::line(6).unwrap(),
            Network::ring(7).unwrap(),
            Network::grid(3, 4).unwrap(),
        ] {
            let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4]));
            let budget = RunBudget::steps(200_000);
            let dense = run_sharded(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
            let sparse = run_sparse(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
            assert!(dense.outcome.quiescent && sparse.outcome.quiescent);
            assert_eq!(sparse.outcome.output, dense.outcome.output);
            assert_eq!(
                sparse.outcome.outputs_per_node,
                dense.outcome.outputs_per_node
            );
            assert!(
                sparse.outcome.steps <= dense.outcome.steps,
                "sparse must not do more work than dense"
            );
        }
    }

    #[test]
    fn sparse_sharded_matches_sparse_serial_bit_for_bit() {
        let net = Network::ring(6).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[10, 20, 30, 40]));
        let budget = RunBudget::steps(100_000);
        let serial = run_sparse(&net, &t, &p, &ShardOptions::serial().with_log(), &budget).unwrap();
        assert!(serial.outcome.quiescent);
        for threads in [2, 3, 4, 8] {
            for plan in [
                ShardPlan::Contiguous,
                ShardPlan::RoundRobin,
                ShardPlan::Hash,
            ] {
                let opts = ShardOptions::sharded(threads).with_plan(plan).with_log();
                let sharded = run_sparse(&net, &t, &p, &opts, &budget).unwrap();
                assert_eq!(sharded.log, serial.log, "threads={threads} plan={plan:?}");
                assert_eq!(sharded.outcome.final_config, serial.outcome.final_config);
                assert_eq!(sharded.outcome.steps, serial.outcome.steps);
                assert_eq!(sharded.rounds, serial.rounds);
                assert_eq!(sharded.max_active, serial.max_active);
            }
        }
    }

    #[test]
    fn sparse_parks_idle_nodes_on_a_long_line() {
        // One seeded fact at the end of a 100-node line: the active
        // frontier is the BFS wave, never the whole network.
        let net = Network::line(100).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::concentrate(&net, &input_s(&[5]), &NodeId::sym("n0")).unwrap();
        let budget = RunBudget::steps(1_000_000);
        let dense = run_sharded(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        let sparse = run_sparse(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        assert!(dense.outcome.quiescent && sparse.outcome.quiescent);
        assert_eq!(sparse.outcome.output, dense.outcome.output);
        assert_eq!(dense.max_active, 100, "dense heartbeats everyone");
        assert!(
            sparse.max_active <= 8,
            "sparse frontier stayed tiny, got {}",
            sparse.max_active
        );
        assert!(
            sparse.outcome.steps * 10 <= dense.outcome.steps,
            "expected >=10x fewer node-steps: sparse={} dense={}",
            sparse.outcome.steps,
            dense.outcome.steps
        );
    }

    #[test]
    fn sparse_respects_step_budget() {
        let net = Network::line(5).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4]));
        for cap in [1usize, 3, 7] {
            let budget = RunBudget::steps(cap);
            let out = run_sparse(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
            assert!(out.outcome.steps <= cap);
            assert!(!out.outcome.quiescent);
            // Truncation is deterministic across thread counts too.
            let sharded = run_sparse(&net, &t, &p, &ShardOptions::sharded(3), &budget).unwrap();
            assert_eq!(sharded.outcome.final_config, out.outcome.final_config);
        }
    }

    #[test]
    fn sparse_honours_delivery_batching_and_random_scheduling() {
        let net = Network::grid(3, 3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3, 4, 5]));
        let budget = RunBudget::steps(200_000);
        let base = run_sparse(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        for opts in [
            ShardOptions::serial().with_delivery(DeliveryPolicy::Batch(4)),
            ShardOptions::serial().with_scheduling(RoundScheduling::Random { seed: 42 }),
        ] {
            let out = run_sparse(&net, &t, &p, &opts, &budget).unwrap();
            assert!(out.outcome.quiescent);
            assert_eq!(out.outcome.output, base.outcome.output);
        }
    }

    #[test]
    fn sparse_target_output_stops_early() {
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::concentrate(&net, &input_s(&[5]), &NodeId::sym("n0")).unwrap();
        let target = Relation::from_tuples(1, vec![rtx_relational::tuple![5]]).unwrap();
        let budget = RunBudget::steps(10_000).until_output(target);
        let out = run_sparse(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        assert!(out.outcome.reached_target);
    }

    /// Same hand-written hook as the shard.rs tests: delays on edge
    /// (0→1), duplication into node 2, crash/restart of node 3.
    struct TestHook;
    impl FaultHook for TestHook {
        fn on_send(&mut self, _t: u64, src: usize, dst: usize, _k: usize, _f: &Fact) -> SendFate {
            if src == 0 && dst == 1 {
                SendFate::delayed(2)
            } else if dst == 2 {
                SendFate::copies(vec![0, 0])
            } else {
                SendFate::deliver()
            }
        }
        fn node_fault(&mut self, t: u64, node: usize) -> NodeFault {
            match (node, t) {
                (3, 2) => NodeFault::CrashNow { lose_buffer: true },
                (3, 3) => NodeFault::Down,
                (3, 4) => NodeFault::RestartNow { wipe_memory: true },
                _ => NodeFault::Up,
            }
        }
        fn quiet_after(&self) -> u64 {
            4
        }
    }

    #[test]
    fn sparse_faulted_matches_dense_faulted_outcome() {
        let net = Network::ring(6).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[10, 20, 30, 40]));
        let budget = RunBudget::steps(100_000);
        let dense = run_sharded_faulted(
            &net,
            &t,
            &p,
            &ShardOptions::serial(),
            &budget,
            &mut TestHook,
        )
        .unwrap();
        let sparse = run_sparse_faulted(
            &net,
            &t,
            &p,
            &ShardOptions::serial(),
            &budget,
            &mut TestHook,
        )
        .unwrap();
        assert!(dense.outcome.quiescent && sparse.outcome.quiescent);
        assert_eq!(sparse.outcome.output, dense.outcome.output);
        assert_eq!(
            sparse.outcome.outputs_per_node,
            dense.outcome.outputs_per_node
        );
        // And the sparse faulted run replays bit-identically across
        // thread counts.
        let serial_log = run_sparse_faulted(
            &net,
            &t,
            &p,
            &ShardOptions::serial().with_log(),
            &budget,
            &mut TestHook,
        )
        .unwrap();
        for threads in [2, 4] {
            let sharded = run_sparse_faulted(
                &net,
                &t,
                &p,
                &ShardOptions::sharded(threads).with_log(),
                &budget,
                &mut TestHook,
            )
            .unwrap();
            assert_eq!(sharded.log, serial_log.log, "threads={threads}");
            assert_eq!(
                sharded.outcome.final_config,
                serial_log.outcome.final_config
            );
        }
    }

    #[test]
    fn sparse_dead_forever_network_terminates_without_quiescence() {
        struct AllDown;
        impl FaultHook for AllDown {
            fn on_send(&mut self, _: u64, _: usize, _: usize, _: usize, _: &Fact) -> SendFate {
                SendFate::deliver()
            }
            fn node_fault(&mut self, t: u64, _n: usize) -> NodeFault {
                if t == 1 {
                    NodeFault::CrashNow { lose_buffer: true }
                } else {
                    NodeFault::Down
                }
            }
            fn quiet_after(&self) -> u64 {
                1
            }
        }
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2]));
        let out = run_sparse_faulted(
            &net,
            &t,
            &p,
            &ShardOptions::serial(),
            &RunBudget::steps(100_000),
            &mut AllDown,
        )
        .unwrap();
        assert!(!out.outcome.quiescent);
        assert_eq!(out.outcome.steps, 0, "no node ever transitioned");
    }

    #[test]
    fn sparse_restart_rearms_wiped_node() {
        // Crash node 1 before it can store anything, restart it with
        // memory wiped after the flood has passed: re-arming on restart
        // must wake it so the still-buffered mail reaches it.
        struct CrashMiddle;
        impl FaultHook for CrashMiddle {
            fn on_send(&mut self, _: u64, _: usize, _: usize, _: usize, _: &Fact) -> SendFate {
                SendFate::deliver()
            }
            fn node_fault(&mut self, t: u64, node: usize) -> NodeFault {
                match (node, t) {
                    (1, 1..=5) => NodeFault::Down,
                    (1, 6) => NodeFault::RestartNow { wipe_memory: true },
                    _ => NodeFault::Up,
                }
            }
            fn quiet_after(&self) -> u64 {
                6
            }
        }
        let net = Network::line(3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::concentrate(&net, &input_s(&[9]), &NodeId::sym("n0")).unwrap();
        let budget = RunBudget::steps(100_000);
        let out = run_sparse_faulted(
            &net,
            &t,
            &p,
            &ShardOptions::serial(),
            &budget,
            &mut CrashMiddle,
        )
        .unwrap();
        assert!(out.outcome.quiescent);
        assert_eq!(out.outcome.output.len(), 1);
        for per in out.outcome.outputs_per_node.values() {
            assert_eq!(
                per.len(),
                1,
                "every node, including the wiped one, caught up"
            );
        }
    }

    #[test]
    fn run_executor_dispatches_both_kinds() {
        let net = Network::line(4).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3]));
        let budget = RunBudget::steps(100_000);
        let a = run_executor(
            ExecutorKind::Rounds,
            &net,
            &t,
            &p,
            &ShardOptions::serial(),
            &budget,
        )
        .unwrap();
        let b = run_executor(
            ExecutorKind::Sparse,
            &net,
            &t,
            &p,
            &ShardOptions::serial(),
            &budget,
        )
        .unwrap();
        assert!(a.outcome.quiescent && b.outcome.quiescent);
        assert_eq!(a.outcome.output, b.outcome.output);
        // run_auto honours the default (rounds) when the env var is
        // unset; the CI sparse pass pins it process-wide instead.
        let c = run_auto(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        assert_eq!(c.outcome.output, a.outcome.output);
    }

    #[test]
    fn sparse_lean_initial_config_agrees_on_oblivious_machines() {
        let net = Network::grid(3, 3).unwrap();
        let t = dedup_flooder();
        let p = HorizontalPartition::round_robin(&net, &input_s(&[1, 2, 3]));
        let budget = RunBudget::steps(200_000);
        let eager = run_sparse(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
        let lean_cfg = Configuration::initial_lean(&net, &t, &p).unwrap();
        let lean = run_sparse_from(&net, &t, lean_cfg, &ShardOptions::serial(), &budget).unwrap();
        assert!(lean.outcome.quiescent);
        assert_eq!(lean.outcome.output, eager.outcome.output);
        assert_eq!(
            lean.outcome.outputs_per_node,
            eager.outcome.outputs_per_node
        );
    }
}

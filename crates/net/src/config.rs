//! System configurations and global transitions (paper, Section 3).
//!
//! A configuration maps every node to a transducer state and a buffer of
//! undelivered messages. The paper's buffers are multisets; ours keep
//! arrival order as well, so that schedulers can realize FIFO behaviour
//! (the proof of Theorem 16 constructs a run with FIFO buffers), LIFO
//! behaviour, or arbitrary reorderings — the multiset semantics is
//! recovered by ignoring the order.

use crate::error::NetError;
use crate::fault::SendFate;
use crate::partition::HorizontalPartition;
use crate::topology::{Network, NodeId};
use rtx_relational::{Fact, FactMultiset, Instance, Relation};
use rtx_transducer::Transducer;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A send interceptor for the scheduler-driven executor: decides the
/// fate of the `k`-th fact a transitioning node sends to one neighbor.
/// See [`crate::fault::FaultHook::on_send`] — this is the same decision
/// surface, shaped for [`Configuration::apply_heartbeat_intercepted`] /
/// [`Configuration::apply_delivery_intercepted`], which work in node
/// ids rather than indices.
pub type SendInterceptor<'a> = dyn FnMut(&NodeId, &NodeId, usize, &Fact) -> SendFate + 'a;

/// Where intercepted copies with a nonzero delay go: `(destination,
/// extra delay, fact)`, owned by the driver that manages maturity.
pub type DelayedSends = Vec<(NodeId, u64, Fact)>;

/// What kind of global transition happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransitionKind {
    /// `γ1 --v,∅--> γ2`: a node transitions without reading messages.
    Heartbeat,
    /// `γ1 --v,{f}--> γ2`: a node reads a single fact from its buffer.
    Delivery(Fact),
}

/// A record of one applied global transition.
#[derive(Clone, Debug, PartialEq)]
pub struct TransitionRecord {
    /// The node that transitioned.
    pub node: NodeId,
    /// The 1-based round the transition executed in, when the record
    /// was produced by a round executor ([`crate::run_sharded`],
    /// [`crate::run_sparse`]); 0 for scheduler-driven applications
    /// ([`Configuration::apply_heartbeat`] and friends), which have no
    /// round structure.
    pub round: u64,
    /// Heartbeat or delivery (with the delivered fact).
    pub kind: TransitionKind,
    /// The output `J_out` of the local transition.
    pub output: Relation,
    /// Number of facts sent (each is enqueued at every neighbor).
    pub sent_facts: usize,
    /// Number of buffer entries added across all neighbors.
    pub enqueued: usize,
    /// Did the node's state change?
    pub state_changed: bool,
}

impl TransitionRecord {
    /// A transition that changed nothing observable.
    pub fn is_noop(&self) -> bool {
        !self.state_changed && self.sent_facts == 0 && self.output.is_empty()
    }
}

/// An ordered log of applied transitions.
///
/// The sharded runtime builds one log per run by appending phase records
/// in a fixed node order, so two runs agree step for step exactly when
/// their logs are equal — the determinism invariant of
/// [`crate::run_sharded`] is stated (and property-tested) as log
/// equality. Logs from disjoint shards merge by concatenation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TransitionLog {
    records: Vec<TransitionRecord>,
}

impl TransitionLog {
    /// An empty log.
    pub fn new() -> Self {
        TransitionLog::default()
    }

    /// Append one record.
    pub fn push(&mut self, rec: TransitionRecord) {
        self.records.push(rec);
    }

    /// Append every record of `other`, in order (shard merge).
    pub fn merge(&mut self, other: TransitionLog) {
        self.records.extend(other.records);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in application order.
    pub fn records(&self) -> &[TransitionRecord] {
        &self.records
    }

    /// Iterate over the records.
    pub fn iter(&self) -> impl Iterator<Item = &TransitionRecord> {
        self.records.iter()
    }
}

impl FromIterator<TransitionRecord> for TransitionLog {
    fn from_iter<I: IntoIterator<Item = TransitionRecord>>(iter: I) -> Self {
        TransitionLog {
            records: iter.into_iter().collect(),
        }
    }
}

/// A configuration of a transducer network.
#[derive(Clone, PartialEq, Eq)]
pub struct Configuration {
    states: BTreeMap<NodeId, Instance>,
    buffers: BTreeMap<NodeId, Vec<Fact>>,
}

impl Configuration {
    /// The initial configuration for a horizontal partition: every node
    /// holds its input fragment, `Id`/`All` are set, memory and buffers
    /// are empty (paper, Section 4).
    pub fn initial(
        net: &Network,
        transducer: &Transducer,
        partition: &HorizontalPartition,
    ) -> Result<Self, NetError> {
        let all = net.node_set();
        let mut states = BTreeMap::new();
        let mut buffers = BTreeMap::new();
        for node in net.nodes() {
            let fragment = partition
                .fragment(node)
                .ok_or_else(|| NetError::Partition(format!("no fragment for node {node}")))?;
            let state = transducer
                .schema()
                .initial_state(fragment, node, &all)
                .map_err(NetError::Rel)?;
            states.insert(*node, state);
            buffers.insert(*node, Vec::new());
        }
        Ok(Configuration { states, buffers })
    }

    /// Like [`Configuration::initial`], but the `All` system relation is
    /// populated *on demand*: only when some query of the transducer
    /// actually references `All` (per [`rtx_transducer::Classification`],
    /// the same syntactic check the obliviousness analysis uses).
    ///
    /// Eagerly materializing `All` at every node costs Θ(n²) facts on an
    /// n-node network — prohibitive at the 10⁵–10⁶ node scales the
    /// sparse executor targets — while `All`-free transducers (every
    /// oblivious machine, including the flooding constructions) never
    /// read it. For transducers that do reference `All` this is
    /// identical to [`Configuration::initial`]; for the rest, the only
    /// difference is the absent (never-consulted) `All` tuples, so run
    /// outputs, logs, and quiescence verdicts are unaffected — only
    /// `final_config` comparisons against eagerly-built configurations
    /// would notice.
    pub fn initial_lean(
        net: &Network,
        transducer: &Transducer,
        partition: &HorizontalPartition,
    ) -> Result<Self, NetError> {
        let uses_all = rtx_transducer::Classification::of(transducer)
            .system_usage
            .uses_all;
        let all = if uses_all {
            net.node_set()
        } else {
            BTreeSet::new()
        };
        let mut states = BTreeMap::new();
        let mut buffers = BTreeMap::new();
        for node in net.nodes() {
            let fragment = partition
                .fragment(node)
                .ok_or_else(|| NetError::Partition(format!("no fragment for node {node}")))?;
            let state = transducer
                .schema()
                .initial_state(fragment, node, &all)
                .map_err(NetError::Rel)?;
            states.insert(*node, state);
            buffers.insert(*node, Vec::new());
        }
        Ok(Configuration { states, buffers })
    }

    /// Decompose into per-node `(state, buffer)` pairs, in node order.
    ///
    /// This is the shape the sharded runtime works on: states are
    /// distributed to worker shards (each node's state is only ever read
    /// and written by its owning shard) while buffers stay with the
    /// coordinator, which merges outboxes into them in a fixed order.
    /// [`Configuration::from_parts`] reassembles the configuration.
    pub fn into_parts(self) -> Vec<(NodeId, Instance, Vec<Fact>)> {
        let mut buffers = self.buffers;
        self.states
            .into_iter()
            .map(|(n, st)| {
                let buf = buffers.remove(&n).unwrap_or_default();
                (n, st, buf)
            })
            .collect()
    }

    /// Reassemble a configuration from per-node parts (inverse of
    /// [`Configuration::into_parts`]).
    pub fn from_parts(parts: impl IntoIterator<Item = (NodeId, Instance, Vec<Fact>)>) -> Self {
        let mut states = BTreeMap::new();
        let mut buffers = BTreeMap::new();
        for (n, st, buf) in parts {
            states.insert(n, st);
            buffers.insert(n, buf);
        }
        Configuration { states, buffers }
    }

    /// The state of a node.
    pub fn state(&self, node: &NodeId) -> Option<&Instance> {
        self.states.get(node)
    }

    /// The message buffer of a node, in arrival order.
    pub fn buffer(&self, node: &NodeId) -> &[Fact] {
        self.buffers.get(node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The buffer of a node as a multiset (order-insensitive view).
    pub fn buffer_multiset(&self, node: &NodeId) -> FactMultiset {
        self.buffer(node).iter().cloned().collect()
    }

    /// Are all buffers empty?
    pub fn all_buffers_empty(&self) -> bool {
        self.buffers.values().all(Vec::is_empty)
    }

    /// Total number of undelivered messages.
    pub fn buffered_total(&self) -> usize {
        self.buffers.values().map(Vec::len).sum()
    }

    /// Nodes with a nonempty buffer, in order.
    pub fn nodes_with_mail(&self) -> impl Iterator<Item = &NodeId> {
        self.buffers
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(n, _)| n)
    }

    /// Apply a heartbeat transition at `node`.
    pub fn apply_heartbeat(
        &mut self,
        net: &Network,
        transducer: &Transducer,
        node: &NodeId,
    ) -> Result<TransitionRecord, NetError> {
        let empty = Instance::empty(transducer.schema().message().clone());
        self.apply(
            net,
            transducer,
            node,
            empty,
            TransitionKind::Heartbeat,
            None,
        )
    }

    /// Apply a delivery transition at `node`, reading the buffered fact
    /// at `index` (single-fact delivery, per the paper).
    pub fn apply_delivery(
        &mut self,
        net: &Network,
        transducer: &Transducer,
        node: &NodeId,
        index: usize,
    ) -> Result<TransitionRecord, NetError> {
        let (received, kind) = self.take_delivery(transducer, node, index)?;
        self.apply(net, transducer, node, received, kind, None)
    }

    /// Like [`Configuration::apply_heartbeat`], but every sent copy's
    /// fate is decided by `intercept`; copies fated with a nonzero delay
    /// are pushed onto `delayed` as `(destination, extra delay, fact)`
    /// instead of being enqueued — the caller owns their maturity (see
    /// [`Configuration::enqueue_fact`]).
    pub fn apply_heartbeat_intercepted(
        &mut self,
        net: &Network,
        transducer: &Transducer,
        node: &NodeId,
        intercept: &mut SendInterceptor<'_>,
        delayed: &mut DelayedSends,
    ) -> Result<TransitionRecord, NetError> {
        let empty = Instance::empty(transducer.schema().message().clone());
        self.apply(
            net,
            transducer,
            node,
            empty,
            TransitionKind::Heartbeat,
            Some((intercept, delayed)),
        )
    }

    /// Like [`Configuration::apply_delivery`], with send interception
    /// (see [`Configuration::apply_heartbeat_intercepted`]).
    pub fn apply_delivery_intercepted(
        &mut self,
        net: &Network,
        transducer: &Transducer,
        node: &NodeId,
        index: usize,
        intercept: &mut SendInterceptor<'_>,
        delayed: &mut DelayedSends,
    ) -> Result<TransitionRecord, NetError> {
        let (received, kind) = self.take_delivery(transducer, node, index)?;
        self.apply(
            net,
            transducer,
            node,
            received,
            kind,
            Some((intercept, delayed)),
        )
    }

    /// Remove the buffered fact at `index` of `node` and wrap it as a
    /// received message instance.
    fn take_delivery(
        &mut self,
        transducer: &Transducer,
        node: &NodeId,
        index: usize,
    ) -> Result<(Instance, TransitionKind), NetError> {
        let buf = self
            .buffers
            .get_mut(node)
            .ok_or_else(|| NetError::Topology(format!("unknown node {node}")))?;
        if index >= buf.len() {
            return Err(NetError::Partition(format!(
                "delivery index {index} out of range for node {node} (buffer has {})",
                buf.len()
            )));
        }
        let fact = buf.remove(index);
        let mut received = Instance::empty(transducer.schema().message().clone());
        received.insert_fact(fact.clone()).map_err(NetError::Rel)?;
        Ok((received, TransitionKind::Delivery(fact)))
    }

    /// Enqueue a fact into a node's buffer directly. Fault-injection
    /// hook: the release of a matured delayed/duplicated in-flight copy.
    pub fn enqueue_fact(&mut self, node: &NodeId, fact: Fact) -> Result<(), NetError> {
        self.buffers
            .get_mut(node)
            .ok_or_else(|| NetError::Topology(format!("unknown node {node}")))?
            .push(fact);
        Ok(())
    }

    /// Drop every buffered message at a node (a lossy crash). Returns
    /// how many messages were lost.
    pub fn clear_buffer(&mut self, node: &NodeId) -> Result<usize, NetError> {
        let buf = self
            .buffers
            .get_mut(node)
            .ok_or_else(|| NetError::Topology(format!("unknown node {node}")))?;
        let n = buf.len();
        buf.clear();
        Ok(n)
    }

    /// Clear a node's memory relations — a restart under the
    /// *persistent-EDB* semantics: the input fragment and `Id`/`All` are
    /// durable, soft state is lost. Returns whether anything was
    /// cleared.
    pub fn wipe_memory(
        &mut self,
        transducer: &Transducer,
        node: &NodeId,
    ) -> Result<bool, NetError> {
        let state = self
            .states
            .get_mut(node)
            .ok_or_else(|| NetError::Topology(format!("unknown node {node}")))?;
        wipe_memory_relations(transducer, state).map_err(NetError::Rel)
    }

    fn apply(
        &mut self,
        net: &Network,
        transducer: &Transducer,
        node: &NodeId,
        received: Instance,
        kind: TransitionKind,
        mut faults: Option<(&mut SendInterceptor<'_>, &mut DelayedSends)>,
    ) -> Result<TransitionRecord, NetError> {
        let state = self
            .states
            .get(node)
            .ok_or_else(|| NetError::Topology(format!("unknown node {node}")))?;
        let res = transducer.step(state, &received).map_err(NetError::Eval)?;
        let state_changed = &res.new_state != state;
        let sent: Vec<Fact> = res.sent.facts().collect();
        let mut enqueued = 0usize;
        for neighbor in net.neighbors(node) {
            match &mut faults {
                None => {
                    let buf = self
                        .buffers
                        .get_mut(neighbor)
                        .expect("all nodes have buffers");
                    for f in &sent {
                        buf.push(f.clone());
                        enqueued += 1;
                    }
                }
                Some((intercept, delayed)) => {
                    for (k, f) in sent.iter().enumerate() {
                        let fate = intercept(node, neighbor, k, f);
                        for &d in &fate.delays {
                            if d == 0 {
                                self.buffers
                                    .get_mut(neighbor)
                                    .expect("all nodes have buffers")
                                    .push(f.clone());
                            } else {
                                delayed.push((*neighbor, d, f.clone()));
                            }
                            enqueued += 1;
                        }
                    }
                }
            }
        }
        self.states.insert(*node, res.new_state);
        Ok(TransitionRecord {
            node: *node,
            round: 0,
            kind,
            output: res.output,
            sent_facts: sent.len(),
            enqueued,
            state_changed,
        })
    }
}

/// Activation tracking for the event-driven sparse executor
/// ([`crate::sparse`]): which node indices are *armed* (must be offered
/// a heartbeat) and which have *mail* (must be offered a delivery).
///
/// The transitions encode the executor's re-arming rules:
///
/// * every node must heartbeat at least once before it may park,
///   because an initial state can produce output or sends — the sparse
///   executor schedules this through a rate-limited warm-up queue
///   (or seed the tracker with [`ActivationSet::all_armed`]);
/// * a fact enqueued to a node marks its mail and re-arms it;
/// * a delivery re-arms the delivering node (its state may have changed,
///   so its next heartbeat is not provably a no-op);
/// * a *quiet* heartbeat (no state change, no sends, no new output)
///   parks the node — unless it still has pending mail;
/// * a crashed node that loses its buffer drops its mail mark;
/// * a restarted or partition-healed node is re-armed.
///
/// Parking can never starve a node with undelivered mail: a node leaves
/// `mail` only when its buffer drains (or is faulted away), and the
/// executor offers every `mail` node a delivery each round regardless
/// of `armed`. Dually, quiescence may be certified from `is_quiet`
/// without waking the whole network: a parked node's heartbeat is a
/// pure function of its state, which cannot change without a delivery —
/// and any delivery would have re-armed it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ActivationSet {
    armed: BTreeSet<usize>,
    mail: BTreeSet<usize>,
}

impl ActivationSet {
    /// The initial tracker for `n` nodes: all armed, no mail.
    pub fn all_armed(n: usize) -> Self {
        ActivationSet {
            armed: (0..n).collect(),
            mail: BTreeSet::new(),
        }
    }

    /// A fact was enqueued to `node`: mark mail and re-arm.
    pub fn note_enqueue(&mut self, node: usize) {
        self.mail.insert(node);
        self.armed.insert(node);
    }

    /// `node` heartbeat; `quiet` means no state change, no sends, and
    /// no new output. A quiet node with no pending mail parks.
    pub fn note_heartbeat(&mut self, node: usize, quiet: bool) {
        if quiet && !self.mail.contains(&node) {
            self.armed.remove(&node);
        } else {
            self.armed.insert(node);
        }
    }

    /// `node` delivered a buffered fact; `buffer_now_empty` reports
    /// whether its buffer drained. Deliveries always re-arm.
    pub fn note_delivery(&mut self, node: usize, buffer_now_empty: bool) {
        self.armed.insert(node);
        if buffer_now_empty {
            self.mail.remove(&node);
        }
    }

    /// `node` restarted (or a partition around it healed): re-arm.
    pub fn note_restart(&mut self, node: usize) {
        self.armed.insert(node);
    }

    /// `node`'s buffer was lost to a crash: drop its mail mark.
    pub fn note_buffer_lost(&mut self, node: usize) {
        self.mail.remove(&node);
    }

    /// Armed node indices, ascending (the deterministic work queue).
    pub fn armed_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.armed.iter().copied()
    }

    /// Node indices with pending mail, ascending.
    pub fn mail_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.mail.iter().copied()
    }

    /// Is `node` armed?
    pub fn is_armed(&self, node: usize) -> bool {
        self.armed.contains(&node)
    }

    /// Does `node` have pending mail?
    pub fn has_mail(&self, node: usize) -> bool {
        self.mail.contains(&node)
    }

    /// Number of armed nodes.
    pub fn armed_count(&self) -> usize {
        self.armed.len()
    }

    /// Number of nodes with pending mail.
    pub fn mail_count(&self) -> usize {
        self.mail.len()
    }

    /// Size of the active frontier: nodes that are armed or have mail.
    pub fn active_count(&self) -> usize {
        self.armed.union(&self.mail).count()
    }

    /// No node is armed and no node has mail — together with empty
    /// in-flight state this certifies quiescence.
    pub fn is_quiet(&self) -> bool {
        self.armed.is_empty() && self.mail.is_empty()
    }
}

/// Clear the memory relations of a transducer state in place; `true`
/// when anything was cleared. Shared by [`Configuration::wipe_memory`]
/// and the sharded executor's restart jobs.
pub(crate) fn wipe_memory_relations(
    transducer: &Transducer,
    state: &mut Instance,
) -> Result<bool, rtx_relational::RelError> {
    let mut cleared = false;
    let mem: Vec<(rtx_relational::RelName, usize)> = transducer
        .schema()
        .memory()
        .iter()
        .map(|(n, a)| (n.clone(), a))
        .collect();
    for (name, arity) in mem {
        let nonempty = state
            .relation_ref(&name)
            .map(|r| !r.is_empty())
            .unwrap_or(false);
        if nonempty {
            state.set_relation(name, Relation::empty(arity))?;
            cleared = true;
        }
    }
    Ok(cleared)
}

impl fmt::Debug for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "configuration:")?;
        for (n, st) in &self.states {
            writeln!(
                f,
                "  {n}: state {} facts, buffer {} msgs",
                st.fact_count(),
                self.buffer(n).len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{atom, CqBuilder, QueryRef, Term, UcqQuery};
    use rtx_relational::{fact, Schema};
    use rtx_transducer::TransducerBuilder;
    use std::sync::Arc;

    fn cq(rule: rtx_query::CqRule) -> QueryRef {
        Arc::new(UcqQuery::single(rule))
    }

    /// Sends local S on every step; stores received M facts in T.
    fn flooder() -> Transducer {
        TransducerBuilder::new("flooder")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .memory_relation("T", 1)
            .output_arity(1)
            .send(
                "M",
                cq(CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("S"; @"X"))
                    .build()
                    .unwrap()),
            )
            .insert(
                "T",
                cq(CqBuilder::head(vec![Term::var("X")])
                    .when(atom!("M"; @"X"))
                    .build()
                    .unwrap()),
            )
            .output(cq(CqBuilder::head(vec![Term::var("X")])
                .when(atom!("T"; @"X"))
                .build()
                .unwrap()))
            .build()
            .unwrap()
    }

    fn setup() -> (Network, Transducer, Configuration) {
        let net = Network::line(2).unwrap();
        let t = flooder();
        let full = Instance::from_facts(Schema::new().with("S", 1), vec![fact!("S", 7)]).unwrap();
        let p = HorizontalPartition::concentrate(&net, &full, &rtx_relational::Value::sym("n0"))
            .unwrap();
        let cfg = Configuration::initial(&net, &t, &p).unwrap();
        (net, t, cfg)
    }

    #[test]
    fn initial_configuration_shape() {
        let (net, _, cfg) = setup();
        assert!(cfg.all_buffers_empty());
        for n in net.nodes() {
            let st = cfg.state(n).unwrap();
            assert!(st.contains_fact(&Fact::new("Id", rtx_relational::Tuple::new(vec![*n]))));
            assert_eq!(st.relation(&"All".into()).unwrap().len(), 2);
        }
        assert_eq!(
            cfg.state(&rtx_relational::Value::sym("n0"))
                .unwrap()
                .relation(&"S".into())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn heartbeat_floods_to_neighbors() {
        let (net, t, mut cfg) = setup();
        let n0 = rtx_relational::Value::sym("n0");
        let n1 = rtx_relational::Value::sym("n1");
        let rec = cfg.apply_heartbeat(&net, &t, &n0).unwrap();
        assert_eq!(rec.sent_facts, 1);
        assert_eq!(rec.enqueued, 1); // one neighbor
        assert_eq!(cfg.buffer(&n1).len(), 1);
        assert!(cfg.buffer(&n0).is_empty()); // no self-delivery
    }

    #[test]
    fn delivery_consumes_one_copy_and_updates_state() {
        let (net, t, mut cfg) = setup();
        let n0 = rtx_relational::Value::sym("n0");
        let n1 = rtx_relational::Value::sym("n1");
        cfg.apply_heartbeat(&net, &t, &n0).unwrap();
        cfg.apply_heartbeat(&net, &t, &n0).unwrap(); // second copy
        assert_eq!(cfg.buffer(&n1).len(), 2);
        let rec = cfg.apply_delivery(&net, &t, &n1, 0).unwrap();
        assert!(matches!(rec.kind, TransitionKind::Delivery(_)));
        assert!(rec.state_changed);
        assert_eq!(cfg.buffer(&n1).len(), 1);
        assert!(cfg.state(&n1).unwrap().contains_fact(&fact!("T", 7)));
        // second delivery of the same fact: state no longer changes
        let rec2 = cfg.apply_delivery(&net, &t, &n1, 0).unwrap();
        assert!(!rec2.state_changed);
    }

    #[test]
    fn delivery_index_out_of_range() {
        let (net, t, mut cfg) = setup();
        let n1 = rtx_relational::Value::sym("n1");
        assert!(cfg.apply_delivery(&net, &t, &n1, 0).is_err());
    }

    #[test]
    fn buffer_multiset_view() {
        let (net, t, mut cfg) = setup();
        let n0 = rtx_relational::Value::sym("n0");
        let n1 = rtx_relational::Value::sym("n1");
        cfg.apply_heartbeat(&net, &t, &n0).unwrap();
        cfg.apply_heartbeat(&net, &t, &n0).unwrap();
        let ms = cfg.buffer_multiset(&n1);
        assert_eq!(ms.count(&fact!("M", 7)), 2);
        assert_eq!(cfg.buffered_total(), 2);
        assert_eq!(cfg.nodes_with_mail().count(), 1);
    }

    #[test]
    fn unknown_node_errors() {
        let (net, t, mut cfg) = setup();
        let zz = rtx_relational::Value::sym("zz");
        assert!(cfg.apply_heartbeat(&net, &t, &zz).is_err());
    }

    #[test]
    fn parts_round_trip() {
        let (net, t, mut cfg) = setup();
        let n0 = rtx_relational::Value::sym("n0");
        cfg.apply_heartbeat(&net, &t, &n0).unwrap(); // nonempty buffer at n1
        let copy = cfg.clone();
        let parts = cfg.into_parts();
        assert_eq!(parts.len(), 2);
        let back = Configuration::from_parts(parts);
        assert_eq!(back, copy);
    }

    #[test]
    fn transition_log_merge_and_equality() {
        let (net, t, mut cfg) = setup();
        let n0 = rtx_relational::Value::sym("n0");
        let n1 = rtx_relational::Value::sym("n1");
        let r0 = cfg.apply_heartbeat(&net, &t, &n0).unwrap();
        let r1 = cfg.apply_heartbeat(&net, &t, &n1).unwrap();
        let mut a = TransitionLog::new();
        a.push(r0.clone());
        let b: TransitionLog = [r1.clone()].into_iter().collect();
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        let c: TransitionLog = [r0, r1].into_iter().collect();
        assert_eq!(a, c);
        assert_eq!(a.iter().count(), a.records().len());
    }

    #[test]
    fn noop_detection() {
        let (net, t, mut cfg) = setup();
        let n1 = rtx_relational::Value::sym("n1");
        // n1 has no input: heartbeat sends nothing, changes nothing
        let rec = cfg.apply_heartbeat(&net, &t, &n1).unwrap();
        assert!(rec.is_noop());
    }

    #[test]
    fn initial_lean_skips_all_for_oblivious_transducers() {
        let net = Network::line(3).unwrap();
        let t = flooder(); // references neither Id nor All
        let full = Instance::from_facts(Schema::new().with("S", 1), vec![fact!("S", 7)]).unwrap();
        let p = HorizontalPartition::round_robin(&net, &full);
        let lean = Configuration::initial_lean(&net, &t, &p).unwrap();
        let eager = Configuration::initial(&net, &t, &p).unwrap();
        for n in net.nodes() {
            let st = lean.state(n).unwrap();
            assert!(st.relation(&"All".into()).unwrap().is_empty(), "{n}");
            // Id stays: it is O(1) per node and some fault tooling reads it
            assert_eq!(st.relation(&"Id".into()).unwrap().len(), 1);
            // everything except All matches the eager configuration
            let es = eager.state(n).unwrap();
            for rel in ["S", "T", "Id"] {
                assert_eq!(
                    st.relation(&rel.into()).unwrap(),
                    es.relation(&rel.into()).unwrap()
                );
            }
        }
    }

    #[test]
    fn initial_lean_populates_all_when_referenced() {
        // a transducer whose output query reads All
        let t = TransducerBuilder::new("all-reader")
            .input_relation("S", 1)
            .message_relation("M", 1)
            .output_arity(1)
            .output(cq(CqBuilder::head(vec![Term::var("X")])
                .when(atom!("All"; @"X"))
                .build()
                .unwrap()))
            .build()
            .unwrap();
        let net = Network::line(3).unwrap();
        let full = Instance::from_facts(Schema::new().with("S", 1), Vec::new()).unwrap();
        let p = HorizontalPartition::replicate(&net, &full);
        let lean = Configuration::initial_lean(&net, &t, &p).unwrap();
        let eager = Configuration::initial(&net, &t, &p).unwrap();
        assert_eq!(lean, eager, "All-referencing transducers get the full set");
    }

    #[test]
    fn activation_set_parks_and_rearms() {
        let mut act = ActivationSet::all_armed(3);
        assert_eq!(act.armed_count(), 3);
        assert_eq!(act.mail_count(), 0);
        assert!(!act.is_quiet());
        // quiet heartbeats park nodes 0 and 2; node 1 was loud
        act.note_heartbeat(0, true);
        act.note_heartbeat(1, false);
        act.note_heartbeat(2, true);
        assert!(!act.is_armed(0) && act.is_armed(1) && !act.is_armed(2));
        // an enqueue re-arms a parked node and marks mail
        act.note_enqueue(2);
        assert!(act.is_armed(2) && act.has_mail(2));
        assert_eq!(act.mail_nodes().collect::<Vec<_>>(), vec![2]);
        // a quiet heartbeat cannot park a node with pending mail
        act.note_heartbeat(2, true);
        assert!(act.is_armed(2), "parking must never starve pending mail");
        // delivery drains the buffer: mail cleared, still armed
        act.note_delivery(2, true);
        assert!(act.is_armed(2) && !act.has_mail(2));
        // now a quiet heartbeat parks it
        act.note_heartbeat(2, true);
        act.note_heartbeat(1, true);
        assert!(act.is_quiet());
        // restart re-arms
        act.note_restart(1);
        assert_eq!(act.armed_nodes().collect::<Vec<_>>(), vec![1]);
        assert_eq!(act.active_count(), 1);
    }

    #[test]
    fn activation_set_buffer_loss_clears_mail() {
        let mut act = ActivationSet::all_armed(2);
        act.note_enqueue(1);
        act.note_delivery(1, false); // one of two facts delivered
        assert!(act.has_mail(1));
        act.note_buffer_lost(1);
        assert!(!act.has_mail(1));
    }
}

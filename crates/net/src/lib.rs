//! # rtx-net — transducer networks
//!
//! The operational semantics of the paper (Section 3): a copy of one
//! transducer runs at every node of a finite connected undirected graph;
//! nodes exchange facts through multiset message buffers; the system
//! evolves by *heartbeat* transitions (a node steps without reading) and
//! *delivery* transitions (a node reads a single buffered fact); sent
//! facts are enqueued at every neighbor.
//!
//! Nondeterminism (which node moves, which fact is delivered) lives in
//! pluggable, seeded [`Scheduler`]s — FIFO round-robin, LIFO, and random
//! — so the consistency analyses of `rtx-calm` can quantify over delivery
//! orders reproducibly.
//!
//! Two executors drive a network:
//!
//! * [`run`] — the seed's serial driver: one global transition at a
//!   time, delivery order chosen by a [`Scheduler`].
//! * [`run_sharded`] — the round-synchronous executor: each round
//!   heartbeats every node and delivers one buffered fact per node with
//!   mail, with the per-node steps computed in parallel across worker
//!   shards ([`ExecMode::Sharded`]) or serially ([`ExecMode::Serial`]).
//!   Results are bit-identical across thread counts and
//!   [`ShardPlan`]s; see [`run_sharded`] for the round semantics.

#![warn(missing_docs)]

mod config;
mod error;
pub mod fault;
mod partition;
mod run;
mod shard;
mod topology;

pub use config::{
    Configuration, DelayedSends, SendInterceptor, TransitionKind, TransitionLog, TransitionRecord,
};
pub use error::NetError;
pub use fault::{FaultHook, NoFaults, NodeFault, SendFate};
pub use partition::HorizontalPartition;
pub use run::{
    run, run_from, run_heartbeats_only, Action, FifoRoundRobin, HeartbeatOnlyOutcome,
    LifoRoundRobin, RandomScheduler, RunBudget, RunOutcome, Scheduler,
};
pub use shard::{
    run_sharded, run_sharded_faulted, run_sharded_faulted_from, run_sharded_from, DeliveryPolicy,
    ExecMode, RoundScheduling, ShardOptions, ShardPlan, ShardRunOutcome,
};
pub use topology::{Network, NodeId};

//! # rtx-net — transducer networks
//!
//! The operational semantics of the paper (Section 3): a copy of one
//! transducer runs at every node of a finite connected undirected graph;
//! nodes exchange facts through multiset message buffers; the system
//! evolves by *heartbeat* transitions (a node steps without reading) and
//! *delivery* transitions (a node reads a single buffered fact); sent
//! facts are enqueued at every neighbor.
//!
//! Nondeterminism (which node moves, which fact is delivered) lives in
//! pluggable, seeded [`Scheduler`]s — FIFO round-robin, LIFO, and random
//! — so the consistency analyses of `rtx-calm` can quantify over delivery
//! orders reproducibly.
//!
//! Two executors drive a network:
//!
//! * [`run`] — the seed's serial driver: one global transition at a
//!   time, delivery order chosen by a [`Scheduler`].
//! * [`run_sharded`] — the round-synchronous executor: each round
//!   heartbeats every node and delivers one buffered fact per node with
//!   mail, with the per-node steps computed in parallel across worker
//!   shards ([`ExecMode::Sharded`]) or serially ([`ExecMode::Serial`]).
//!   Results are bit-identical across thread counts and
//!   [`ShardPlan`]s; see [`run_sharded`] for the round semantics.
//! * [`run_sparse`] — the event-driven executor for huge, mostly-idle
//!   networks: quiescent nodes park; only armed or mailed nodes are
//!   scheduled, through the same worker shards. Same outputs and
//!   quiescence verdict on confluent machines, ≥10× fewer node-steps
//!   when the active frontier is small; see [`sparse`](crate::sparse)
//!   module docs for the parking/re-arming model.
//!
//! [`run_auto`] dispatches between the last two by the
//! `RTX_NET_EXECUTOR` environment variable ([`ExecutorKind::auto`]).

#![warn(missing_docs)]

mod config;
mod error;
pub mod fault;
mod partition;
mod run;
mod shard;
pub mod sparse;
mod topology;

pub use config::{
    ActivationSet, Configuration, DelayedSends, SendInterceptor, TransitionKind, TransitionLog,
    TransitionRecord,
};
pub use error::NetError;
pub use fault::{FaultHook, NoFaults, NodeFault, SendFate};
pub use partition::HorizontalPartition;
pub use run::{
    run, run_from, run_heartbeats_only, Action, FifoRoundRobin, HeartbeatOnlyOutcome,
    LifoRoundRobin, RandomScheduler, RunBudget, RunOutcome, Scheduler,
};
pub use shard::{
    run_sharded, run_sharded_faulted, run_sharded_faulted_from, run_sharded_from, DeliveryPolicy,
    ExecMode, RoundScheduling, ShardOptions, ShardPlan, ShardRunOutcome,
};
pub use sparse::{
    run_auto, run_auto_faulted, run_executor, run_executor_faulted, run_sparse, run_sparse_faulted,
    run_sparse_faulted_from, run_sparse_from, ExecutorKind,
};
pub use topology::{Network, NodeId};

//! Horizontal partitions of an input instance over a network.
//!
//! A horizontal partition of `I` on network `N` maps every node `v` to a
//! subset `H(v) ⊆ I` with `I = ⋃_v H(v)` (paper, Section 4). Fragments
//! may overlap; a fact may live at several nodes.

use crate::error::NetError;
use crate::topology::{Network, NodeId};
use rand::Rng;
use rtx_relational::{Fact, Instance, Schema};
use std::collections::BTreeMap;
use std::fmt;

/// A horizontal partition: a fragment of the input per node.
#[derive(Clone, PartialEq, Eq)]
pub struct HorizontalPartition {
    fragments: BTreeMap<NodeId, Instance>,
    schema: Schema,
}

impl HorizontalPartition {
    /// Build from explicit fragments, validating that every network node
    /// has a fragment (possibly empty) and that the union equals `full`.
    pub fn new(
        net: &Network,
        full: &Instance,
        fragments: BTreeMap<NodeId, Instance>,
    ) -> Result<Self, NetError> {
        for node in net.nodes() {
            if !fragments.contains_key(node) {
                return Err(NetError::Partition(format!("node {node} has no fragment")));
            }
        }
        for node in fragments.keys() {
            if !net.contains(node) {
                return Err(NetError::Partition(format!(
                    "fragment for unknown node {node}"
                )));
            }
        }
        let mut union = Instance::empty(full.schema().clone());
        for frag in fragments.values() {
            for f in frag.facts() {
                union.insert_fact(f).map_err(NetError::Rel)?;
            }
        }
        if &union != full {
            return Err(NetError::Partition(
                "fragment union differs from the full instance".into(),
            ));
        }
        Ok(HorizontalPartition {
            fragments,
            schema: full.schema().clone(),
        })
    }

    /// Every node holds the entire instance.
    pub fn replicate(net: &Network, full: &Instance) -> Self {
        let fragments = net.nodes().map(|n| (*n, full.clone())).collect();
        HorizontalPartition {
            fragments,
            schema: full.schema().clone(),
        }
    }

    /// One node holds everything; the rest hold nothing.
    pub fn concentrate(net: &Network, full: &Instance, owner: &NodeId) -> Result<Self, NetError> {
        if !net.contains(owner) {
            return Err(NetError::Partition(format!("unknown owner {owner}")));
        }
        let empty = Instance::empty(full.schema().clone());
        let fragments = net
            .nodes()
            .map(|n| {
                (
                    *n,
                    if n == owner {
                        full.clone()
                    } else {
                        empty.clone()
                    },
                )
            })
            .collect();
        Ok(HorizontalPartition {
            fragments,
            schema: full.schema().clone(),
        })
    }

    /// Deal facts round-robin over the nodes (a disjoint partition).
    pub fn round_robin(net: &Network, full: &Instance) -> Self {
        let nodes: Vec<&NodeId> = net.nodes().collect();
        let empty = Instance::empty(full.schema().clone());
        let mut fragments: BTreeMap<NodeId, Instance> =
            nodes.iter().map(|n| (*(*n), empty.clone())).collect();
        for (i, fact) in full.facts().enumerate() {
            let node = nodes[i % nodes.len()];
            fragments
                .get_mut(node)
                .expect("node present")
                .insert_fact(fact)
                .expect("fact from the same schema");
        }
        HorizontalPartition {
            fragments,
            schema: full.schema().clone(),
        }
    }

    /// Assign each fact to one uniformly-random node, then give each fact
    /// independently to extra nodes with probability `overlap`.
    pub fn random(net: &Network, full: &Instance, overlap: f64, rng: &mut impl Rng) -> Self {
        let nodes: Vec<&NodeId> = net.nodes().collect();
        let empty = Instance::empty(full.schema().clone());
        let mut fragments: BTreeMap<NodeId, Instance> =
            nodes.iter().map(|n| (*(*n), empty.clone())).collect();
        for fact in full.facts() {
            let owner = nodes[rng.gen_range(0..nodes.len())];
            fragments
                .get_mut(owner)
                .unwrap()
                .insert_fact(fact.clone())
                .unwrap();
            for n in &nodes {
                if *n != owner && rng.gen_bool(overlap.clamp(0.0, 1.0)) {
                    fragments
                        .get_mut(*n)
                        .unwrap()
                        .insert_fact(fact.clone())
                        .unwrap();
                }
            }
        }
        HorizontalPartition {
            fragments,
            schema: full.schema().clone(),
        }
    }

    /// All single-owner partitions of `full` over the nodes of `net`
    /// (each fact placed at exactly one node), capped at `limit` results.
    ///
    /// There are `|nodes|^|facts|` of them — callers must keep inputs
    /// tiny; this powers the exhaustive coordination-freeness search.
    pub fn enumerate_single_owner(
        net: &Network,
        full: &Instance,
        limit: usize,
    ) -> Vec<HorizontalPartition> {
        let nodes: Vec<NodeId> = net.node_set().into_iter().collect();
        let facts: Vec<Fact> = full.facts().collect();
        let empty = Instance::empty(full.schema().clone());
        let mut out = Vec::new();
        let total = nodes
            .len()
            .checked_pow(facts.len() as u32)
            .unwrap_or(usize::MAX);
        for code in 0..total.min(limit) {
            let mut c = code;
            let mut fragments: BTreeMap<NodeId, Instance> =
                nodes.iter().map(|n| (*n, empty.clone())).collect();
            for fact in &facts {
                let node = &nodes[c % nodes.len()];
                c /= nodes.len();
                fragments
                    .get_mut(node)
                    .unwrap()
                    .insert_fact(fact.clone())
                    .unwrap();
            }
            out.push(HorizontalPartition {
                fragments,
                schema: full.schema().clone(),
            });
        }
        out
    }

    /// The fragment of a node.
    pub fn fragment(&self, node: &NodeId) -> Option<&Instance> {
        self.fragments.get(node)
    }

    /// Iterate over `(node, fragment)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &Instance)> {
        self.fragments.iter()
    }

    /// The input schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Reconstruct the full instance (union of fragments).
    pub fn union(&self) -> Instance {
        let mut out = Instance::empty(self.schema.clone());
        for frag in self.fragments.values() {
            for f in frag.facts() {
                out.insert_fact(f).expect("schema-valid fact");
            }
        }
        out
    }
}

impl fmt::Debug for HorizontalPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition{{")?;
        for (i, (n, frag)) in self.fragments.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{n}: {} facts", frag.fact_count())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtx_relational::fact;

    fn input() -> Instance {
        Instance::from_facts(
            Schema::new().with("S", 1),
            vec![fact!("S", 1), fact!("S", 2), fact!("S", 3)],
        )
        .unwrap()
    }

    #[test]
    fn replicate_gives_everyone_everything() {
        let net = Network::line(3).unwrap();
        let p = HorizontalPartition::replicate(&net, &input());
        for (_, frag) in p.iter() {
            assert_eq!(frag.fact_count(), 3);
        }
        assert_eq!(p.union(), input());
    }

    #[test]
    fn concentrate_gives_one_node_everything() {
        let net = Network::line(3).unwrap();
        let owner = rtx_relational::Value::sym("n1");
        let p = HorizontalPartition::concentrate(&net, &input(), &owner).unwrap();
        assert_eq!(p.fragment(&owner).unwrap().fact_count(), 3);
        assert_eq!(
            p.fragment(&rtx_relational::Value::sym("n0"))
                .unwrap()
                .fact_count(),
            0
        );
        assert_eq!(p.union(), input());
        assert!(HorizontalPartition::concentrate(
            &net,
            &input(),
            &rtx_relational::Value::sym("zz")
        )
        .is_err());
    }

    #[test]
    fn round_robin_is_disjoint_and_covering() {
        let net = Network::line(2).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input());
        let total: usize = p.iter().map(|(_, f)| f.fact_count()).sum();
        assert_eq!(total, 3); // disjoint
        assert_eq!(p.union(), input());
    }

    #[test]
    fn random_covers_across_seeds() {
        let net = Network::ring(4).unwrap();
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = HorizontalPartition::random(&net, &input(), 0.3, &mut rng);
            assert_eq!(p.union(), input());
        }
    }

    #[test]
    fn explicit_partition_validation() {
        let net = Network::line(2).unwrap();
        let full = input();
        // missing node
        let frags: BTreeMap<NodeId, Instance> = [(rtx_relational::Value::sym("n0"), full.clone())]
            .into_iter()
            .collect();
        assert!(HorizontalPartition::new(&net, &full, frags).is_err());
        // union mismatch
        let empty = Instance::empty(full.schema().clone());
        let frags: BTreeMap<NodeId, Instance> = [
            (rtx_relational::Value::sym("n0"), empty.clone()),
            (rtx_relational::Value::sym("n1"), empty),
        ]
        .into_iter()
        .collect();
        assert!(HorizontalPartition::new(&net, &full, frags).is_err());
    }

    #[test]
    fn enumerate_single_owner_counts() {
        let net = Network::line(2).unwrap();
        let ps = HorizontalPartition::enumerate_single_owner(&net, &input(), 100);
        assert_eq!(ps.len(), 8); // 2^3
        for p in &ps {
            assert_eq!(p.union(), input());
        }
        let capped = HorizontalPartition::enumerate_single_owner(&net, &input(), 3);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn overlapping_fragments_are_legal() {
        // the paper allows overlap: I = ⋃ H(v) without disjointness
        let net = Network::line(2).unwrap();
        let full = input();
        let frags: BTreeMap<NodeId, Instance> = [
            (rtx_relational::Value::sym("n0"), full.clone()),
            (rtx_relational::Value::sym("n1"), full.clone()),
        ]
        .into_iter()
        .collect();
        assert!(HorizontalPartition::new(&net, &full, frags).is_ok());
    }
}

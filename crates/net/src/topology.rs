//! Network topologies.
//!
//! A network is a finite, **connected**, undirected graph over a set of
//! nodes drawn from **dom** (paper, Section 3) — connectivity is what
//! lets information flow reach every node.

use crate::error::NetError;
use rand::seq::SliceRandom;
use rand::Rng;
use rtx_relational::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A node identifier — a plain data element, since the paper stores node
/// ids in relations (`Id`, `All`).
pub type NodeId = Value;

/// A finite connected undirected graph.
#[derive(Clone, PartialEq, Eq)]
pub struct Network {
    adj: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl Network {
    /// Build from explicit nodes and undirected edges.
    ///
    /// Validates: at least one node, edges reference known nodes, no
    /// self-loops, and the graph is connected.
    pub fn from_edges(
        nodes: impl IntoIterator<Item = NodeId>,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, NetError> {
        let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> =
            nodes.into_iter().map(|n| (n, BTreeSet::new())).collect();
        if adj.is_empty() {
            return Err(NetError::Topology(
                "a network needs at least one node".into(),
            ));
        }
        for (a, b) in edges {
            if a == b {
                return Err(NetError::Topology(format!("self-loop on node {a}")));
            }
            if !adj.contains_key(&a) || !adj.contains_key(&b) {
                return Err(NetError::Topology(format!(
                    "edge ({a},{b}) references unknown node"
                )));
            }
            adj.get_mut(&a).unwrap().insert(b);
            adj.get_mut(&b).unwrap().insert(a);
        }
        let net = Network { adj };
        if !net.is_connected() {
            return Err(NetError::Topology("network is not connected".into()));
        }
        Ok(net)
    }

    /// Build from edges known to form a connected graph by
    /// construction (the shape generators below): same adjacency
    /// structure as [`Network::from_edges`] but without the O(N+E) BFS
    /// connectivity pass and its per-node clones, which keeps
    /// generation cheap at 10⁵–10⁶ nodes. Connectivity and
    /// self-loop-freedom are still asserted in debug builds.
    fn from_edges_unchecked(
        nodes: impl IntoIterator<Item = NodeId>,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> =
            nodes.into_iter().map(|n| (n, BTreeSet::new())).collect();
        debug_assert!(!adj.is_empty());
        for (a, b) in edges {
            debug_assert_ne!(a, b, "generator produced a self-loop");
            adj.get_mut(&a)
                .expect("generator names a known node")
                .insert(b);
            adj.get_mut(&b)
                .expect("generator names a known node")
                .insert(a);
        }
        let net = Network { adj };
        debug_assert!(
            net.is_connected(),
            "generator produced a disconnected graph"
        );
        net
    }

    fn node_name(i: usize) -> NodeId {
        Value::sym(format!("n{i}"))
    }

    /// The single-node network (no edges; the paper's degenerate case
    /// where only heartbeat transitions exist).
    pub fn single() -> Self {
        Network::from_edges([Self::node_name(0)], []).expect("one node is connected")
    }

    /// A line `n0 – n1 – … – n{k-1}`.
    pub fn line(k: usize) -> Result<Self, NetError> {
        if k == 0 {
            return Err(NetError::Topology(
                "a network needs at least one node".into(),
            ));
        }
        let nodes: Vec<NodeId> = (0..k).map(Self::node_name).collect();
        let edges = (1..k).map(|i| (Self::node_name(i - 1), Self::node_name(i)));
        Ok(Network::from_edges_unchecked(nodes, edges))
    }

    /// A ring `n0 – n1 – … – n{k-1} – n0` (k ≥ 3).
    pub fn ring(k: usize) -> Result<Self, NetError> {
        if k < 3 {
            return Err(NetError::Topology("a ring needs at least 3 nodes".into()));
        }
        let nodes: Vec<NodeId> = (0..k).map(Self::node_name).collect();
        let edges = (0..k).map(|i| (Self::node_name(i), Self::node_name((i + 1) % k)));
        Ok(Network::from_edges_unchecked(nodes, edges))
    }

    /// The 4-ring `1–2–3–4–1` with an added chord `2–4` — the network
    /// `R'` in the proof of Theorem 16.
    pub fn ring4_with_chord() -> Self {
        let nodes: Vec<NodeId> = (0..4).map(Self::node_name).collect();
        let mut edges: Vec<(NodeId, NodeId)> = (0..4)
            .map(|i| (Self::node_name(i), Self::node_name((i + 1) % 4)))
            .collect();
        edges.push((Self::node_name(1), Self::node_name(3)));
        Network::from_edges(nodes, edges).expect("fixed graph is valid")
    }

    /// A star with a hub and `k-1` leaves.
    pub fn star(k: usize) -> Result<Self, NetError> {
        if k == 0 {
            return Err(NetError::Topology(
                "a network needs at least one node".into(),
            ));
        }
        let nodes: Vec<NodeId> = (0..k).map(Self::node_name).collect();
        let edges = (1..k).map(|i| (Self::node_name(0), Self::node_name(i)));
        Ok(Network::from_edges_unchecked(nodes, edges))
    }

    /// The complete graph on `k` nodes.
    pub fn clique(k: usize) -> Result<Self, NetError> {
        let nodes: Vec<NodeId> = (0..k).map(Self::node_name).collect();
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((Self::node_name(i), Self::node_name(j)));
            }
        }
        Network::from_edges(nodes, edges)
    }

    /// A `w × h` grid: node `n{y*w+x}` sits at column `x`, row `y`, and
    /// connects to its right and down neighbors. The workhorse topology
    /// of the scale benches (`bench_net`): diameter `w+h-2` with bounded
    /// degree.
    pub fn grid(w: usize, h: usize) -> Result<Self, NetError> {
        if w == 0 || h == 0 {
            return Err(NetError::Topology(
                "a grid needs at least one row and one column".into(),
            ));
        }
        let at = |x: usize, y: usize| Self::node_name(y * w + x);
        let nodes: Vec<NodeId> = (0..w * h).map(Self::node_name).collect();
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((at(x, y), at(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((at(x, y), at(x, y + 1)));
                }
            }
        }
        Ok(Network::from_edges_unchecked(nodes, edges))
    }

    /// [`Network::random_connected`] from a bare seed — the convenient
    /// form for benches and property tests that don't hold an RNG.
    pub fn random_connected_seeded(
        k: usize,
        extra_edge_prob: f64,
        seed: u64,
    ) -> Result<Self, NetError> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        Network::random_connected(k, extra_edge_prob, &mut rng)
    }

    /// A random connected graph: a random spanning tree plus each extra
    /// edge independently with probability `extra_edge_prob`.
    pub fn random_connected(
        k: usize,
        extra_edge_prob: f64,
        rng: &mut impl Rng,
    ) -> Result<Self, NetError> {
        if k == 0 {
            return Err(NetError::Topology(
                "a network needs at least one node".into(),
            ));
        }
        let nodes: Vec<NodeId> = (0..k).map(Self::node_name).collect();
        let mut order: Vec<usize> = (0..k).collect();
        order.shuffle(rng);
        let mut edges = Vec::new();
        // random spanning tree: attach each node to a random earlier node
        for i in 1..k {
            let parent = order[rng.gen_range(0..i)];
            edges.push((Self::node_name(order[i]), Self::node_name(parent)));
        }
        for i in 0..k {
            for j in (i + 1)..k {
                if rng.gen_bool(extra_edge_prob.clamp(0.0, 1.0)) {
                    edges.push((Self::node_name(i), Self::node_name(j)));
                }
            }
        }
        Network::from_edges(nodes, edges)
    }

    /// A random connected graph with O(N + E) generation cost: a
    /// random spanning tree plus exactly `extra_edges` uniformly random
    /// chords (self-loops skipped, duplicate chords collapse in the
    /// adjacency sets). Unlike [`Network::random_connected`], whose
    /// per-pair extra-edge draws are Θ(k²), this stays cheap at
    /// 10⁵–10⁶ nodes — it is the generator the sparse-executor scale
    /// benches use.
    pub fn random_sparse_seeded(k: usize, extra_edges: usize, seed: u64) -> Result<Self, NetError> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        if k == 0 {
            return Err(NetError::Topology(
                "a network needs at least one node".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes: Vec<NodeId> = (0..k).map(Self::node_name).collect();
        let mut order: Vec<usize> = (0..k).collect();
        order.shuffle(&mut rng);
        let mut edges = Vec::with_capacity(k - 1 + extra_edges);
        // random spanning tree: attach each node to a random earlier one
        for i in 1..k {
            let parent = order[rng.gen_range(0..i)];
            edges.push((Self::node_name(order[i]), Self::node_name(parent)));
        }
        if k > 1 {
            for _ in 0..extra_edges {
                let a = rng.gen_range(0..k);
                let b = rng.gen_range(0..k);
                if a != b {
                    edges.push((Self::node_name(a), Self::node_name(b)));
                }
            }
        }
        Ok(Network::from_edges_unchecked(nodes, edges))
    }

    /// The nodes, in deterministic order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeId> {
        self.adj.keys()
    }

    /// The node set.
    pub fn node_set(&self) -> BTreeSet<NodeId> {
        self.adj.keys().cloned().collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Never true — construction requires at least one node.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Does the network contain this node?
    pub fn contains(&self, n: &NodeId) -> bool {
        self.adj.contains_key(n)
    }

    /// The neighbors of a node.
    pub fn neighbors(&self, n: &NodeId) -> impl Iterator<Item = &NodeId> {
        self.adj.get(n).into_iter().flatten()
    }

    /// Graph diameter (longest shortest path); `0` for a single node.
    pub fn diameter(&self) -> usize {
        let mut best = 0;
        for start in self.adj.keys() {
            let dist = self.bfs(start);
            if let Some(&d) = dist.values().max() {
                best = best.max(d);
            }
        }
        best
    }

    fn bfs(&self, start: &NodeId) -> BTreeMap<NodeId, usize> {
        let mut dist = BTreeMap::new();
        dist.insert(*start, 0usize);
        let mut queue = VecDeque::from([*start]);
        while let Some(n) = queue.pop_front() {
            let d = dist[&n];
            for m in self.neighbors(&n) {
                if !dist.contains_key(m) {
                    dist.insert(*m, d + 1);
                    queue.push_back(*m);
                }
            }
        }
        dist
    }

    fn is_connected(&self) -> bool {
        let start = match self.adj.keys().next() {
            Some(s) => s,
            None => return false,
        };
        self.bfs(start).len() == self.adj.len()
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network[{} nodes: ", self.len())?;
        let mut first = true;
        for (n, nbrs) in &self.adj {
            for m in nbrs {
                if n < m {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "{n}–{m}")?;
                }
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_ring_star_clique_shapes() {
        let l = Network::line(4).unwrap();
        assert_eq!(l.len(), 4);
        assert_eq!(l.edge_count(), 3);
        assert_eq!(l.diameter(), 3);

        let r = Network::ring(5).unwrap();
        assert_eq!(r.edge_count(), 5);
        assert_eq!(r.diameter(), 2);

        let s = Network::star(5).unwrap();
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.diameter(), 2);

        let c = Network::clique(5).unwrap();
        assert_eq!(c.edge_count(), 10);
        assert_eq!(c.diameter(), 1);
    }

    #[test]
    fn single_node_network() {
        let n = Network::single();
        assert_eq!(n.len(), 1);
        assert_eq!(n.edge_count(), 0);
        assert_eq!(n.diameter(), 0);
    }

    #[test]
    fn ring4_with_chord_matches_theorem16() {
        let n = Network::ring4_with_chord();
        assert_eq!(n.len(), 4);
        assert_eq!(n.edge_count(), 5);
        // chord 2–4 is n1–n3 in zero-based naming
        assert!(n
            .neighbors(&Value::sym("n1"))
            .any(|m| m == &Value::sym("n3")));
    }

    #[test]
    fn grid_shape() {
        let g = Network::grid(4, 3).unwrap();
        assert_eq!(g.len(), 12);
        // (w-1)*h horizontal + w*(h-1) vertical
        assert_eq!(g.edge_count(), 3 * 3 + 4 * 2);
        assert_eq!(g.diameter(), 4 + 3 - 2);
        // corner n0 has exactly two neighbors: right (n1) and down (n4)
        let nbrs: Vec<_> = g.neighbors(&Value::sym("n0")).collect();
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.contains(&&Value::sym("n1")));
        assert!(nbrs.contains(&&Value::sym("n4")));
        // degenerate grids are lines / single nodes
        assert_eq!(Network::grid(1, 1).unwrap().len(), 1);
        assert_eq!(Network::grid(5, 1).unwrap().diameter(), 4);
        assert!(Network::grid(0, 3).is_err());
        assert!(Network::grid(3, 0).is_err());
    }

    #[test]
    fn random_connected_seeded_is_reproducible() {
        let a = Network::random_connected_seeded(10, 0.1, 77).unwrap();
        let b = Network::random_connected_seeded(10, 0.1, 77).unwrap();
        assert_eq!(a, b);
        let c = Network::random_connected_seeded(10, 0.1, 78).unwrap();
        assert_eq!(c.len(), 10); // different seed still connected
    }

    #[test]
    fn disconnected_rejected() {
        let nodes = vec![Value::sym("a"), Value::sym("b"), Value::sym("c")];
        let edges = vec![(Value::sym("a"), Value::sym("b"))];
        assert!(matches!(
            Network::from_edges(nodes, edges),
            Err(NetError::Topology(_))
        ));
    }

    #[test]
    fn self_loops_and_unknown_nodes_rejected() {
        let nodes = vec![Value::sym("a"), Value::sym("b")];
        assert!(
            Network::from_edges(nodes.clone(), vec![(Value::sym("a"), Value::sym("a"))]).is_err()
        );
        assert!(Network::from_edges(nodes, vec![(Value::sym("a"), Value::sym("zz"))]).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Network::from_edges([], []).is_err());
        assert!(Network::ring(2).is_err());
    }

    #[test]
    fn random_connected_is_connected_across_seeds() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = Network::random_connected(12, 0.1, &mut rng).unwrap();
            assert_eq!(n.len(), 12);
            // from_edges validated connectivity already; sanity:
            assert!(n.diameter() < 12);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let n = Network::line(3).unwrap();
        let n0 = Value::sym("n0");
        let n1 = Value::sym("n1");
        assert!(n.neighbors(&n0).any(|m| m == &n1));
        assert!(n.neighbors(&n1).any(|m| m == &n0));
    }

    #[test]
    fn debug_render() {
        let n = Network::line(3).unwrap();
        let d = format!("{n:?}");
        assert!(d.contains("n0–n1"));
    }
}

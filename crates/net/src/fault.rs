//! Fault-injection hooks for the executors.
//!
//! The paper's theorems quantify over **all** fair runs of an
//! asynchronous, unordered, duplicating network, but the executors on
//! their own only realize tame schedules (FIFO round-robin, round
//! synchrony). This module is the seam through which an adversary is
//! injected: a [`FaultHook`] decides, at deterministic points of a run,
//! the fate of every sent message copy ([`SendFate`]: extra delay,
//! duplication, loss) and the per-round status of every node
//! ([`NodeFault`]: crash, down, restart). The hook is consulted only by
//! the **coordinator** side of the round-synchronous executor — never
//! by worker shards — so fault injection composes with
//! [`crate::ExecMode::Sharded`] and [`crate::DeliveryPolicy::Batch`]
//! without breaking the serial ≡ sharded bit-identity property: all
//! fault decisions are functions of `(time, node index, edge, send
//! index)`, which are thread-count independent.
//!
//! The concrete seeded fault plans (delay distributions, partitions
//! with healing, crash schedules) live in the `rtx-chaos` crate; this
//! module only defines the hook surface plus the no-op [`NoFaults`]
//! used by the plain entry points.
//!
//! Node indices follow ascending node order (the order of
//! [`crate::Network::nodes`], which is also the order of
//! [`crate::Configuration::into_parts`]).

use rtx_relational::Fact;

/// The fate of one sent fact on one directed edge: one entry per
/// delivered copy, each with an extra delay in scheduling units
/// (rounds for the round-synchronous executor, steps for the
/// scheduler-driven one). The empty fate drops the message; more than
/// one entry duplicates it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SendFate {
    /// Extra delay of each delivered copy, in scheduling units.
    pub delays: Vec<u64>,
}

impl SendFate {
    /// Normal delivery: one copy, no extra delay.
    pub fn deliver() -> SendFate {
        SendFate { delays: vec![0] }
    }

    /// Drop the message (no copy is ever delivered). Fairness-violating:
    /// the confluence explorer does not use this by default.
    pub fn dropped() -> SendFate {
        SendFate { delays: Vec::new() }
    }

    /// One copy, delayed by `d` scheduling units.
    pub fn delayed(d: u64) -> SendFate {
        SendFate { delays: vec![d] }
    }

    /// Several copies with explicit delays.
    pub fn copies(delays: Vec<u64>) -> SendFate {
        SendFate { delays }
    }

    /// Is this the fault-free fate (exactly one prompt copy)?
    pub fn is_prompt_single(&self) -> bool {
        self.delays.len() == 1 && self.delays[0] == 0
    }
}

/// A node's fault status for one scheduling unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFault {
    /// The node runs normally.
    Up,
    /// The crash instant: the node skips this unit, and its message
    /// buffer is dropped when `lose_buffer` is set (undelivered mail at
    /// a crashed node is gone; in-flight delayed copies survive — the
    /// network redelivers them after the restart).
    CrashNow {
        /// Drop the node's buffered messages.
        lose_buffer: bool,
    },
    /// The node is down: it performs no heartbeat and no delivery.
    Down,
    /// The restart instant: the node rejoins this unit. With
    /// `wipe_memory` its memory relations are cleared first —
    /// the *persistent-EDB* semantics (inputs and `Id`/`All` are durable,
    /// soft state is lost). Without it, the crash was a pause (the
    /// *full-state* semantics).
    RestartNow {
        /// Clear the node's memory relations before it rejoins.
        wipe_memory: bool,
    },
}

/// Decides the fate of messages and nodes at deterministic points of a
/// run. Implementations must be deterministic functions of their
/// construction parameters and the call arguments — the replay
/// guarantee of the chaos layer is exactly that determinism.
pub trait FaultHook {
    /// The fate of the `k`-th fact sent by node `src` to neighbor `dst`
    /// during scheduling unit `time`.
    fn on_send(&mut self, time: u64, src: usize, dst: usize, k: usize, fact: &Fact) -> SendFate;

    /// The status of `node` at scheduling unit `time`. Called once per
    /// node per unit, in ascending node order.
    fn node_fault(&mut self, time: u64, node: usize) -> NodeFault;

    /// The last scheduling unit with a node fault event (crash or
    /// restart). The executor refuses to declare quiescence before this
    /// horizon has passed: a future restart could still change state.
    fn quiet_after(&self) -> u64;
}

/// The no-op hook: every message is delivered promptly exactly once,
/// every node is always up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn on_send(&mut self, _t: u64, _s: usize, _d: usize, _k: usize, _f: &Fact) -> SendFate {
        SendFate::deliver()
    }

    fn node_fault(&mut self, _t: u64, _n: usize) -> NodeFault {
        NodeFault::Up
    }

    fn quiet_after(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_constructors() {
        assert!(SendFate::deliver().is_prompt_single());
        assert!(!SendFate::dropped().is_prompt_single());
        assert!(SendFate::dropped().delays.is_empty());
        assert_eq!(SendFate::delayed(3).delays, vec![3]);
        assert!(!SendFate::delayed(3).is_prompt_single());
        assert_eq!(SendFate::copies(vec![0, 2]).delays.len(), 2);
    }

    #[test]
    fn no_faults_is_inert() {
        let mut h = NoFaults;
        let f = rtx_relational::fact!("M", 1);
        assert!(h.on_send(7, 0, 1, 0, &f).is_prompt_single());
        assert_eq!(h.node_fault(7, 0), NodeFault::Up);
        assert_eq!(h.quiet_after(), 0);
    }
}

//! A surface syntax for Dedalus programs.
//!
//! ```text
//! % deductive (same timestamp)
//! reach(X) :- src(X).
//! reach(Y) :- reach(X), edge(X,Y).
//!
//! % inductive (successor timestamp)
//! reach(X)@next :- reach(X).
//!
//! % asynchronous (nondeterministic later timestamp)
//! msg(X)@async :- send(X).
//!
//! % entanglement: `now` is the body timestamp, usable as data
//! minted(X, now)@next :- want(X).
//! ```
//!
//! Conventions follow `rtx-query`'s Datalog parser: variables start
//! uppercase or `_`; constants are integers, `'quoted'` symbols, or
//! lowercase identifiers; negation is `!`; nonequality `X != Y`;
//! comments start with `%` or `#`.

use crate::ast::{DRule, DTime, DedalusProgram};
use rtx_query::{Atom, EvalError, Term, Var};
use rtx_relational::Value;

/// The reserved time keyword.
const NOW: &str = "now";
/// The internal variable `now` is rewritten to.
const NOW_VAR: &str = "__now";

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Dot,
    ColonDash,
    Bang,
    Neq,
    At,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, EvalError> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    let err = |message: String, offset: usize| EvalError::Parse { message, offset };
    while pos < b.len() {
        let start = pos;
        match b[pos] {
            b' ' | b'\t' | b'\n' | b'\r' => pos += 1,
            b'%' | b'#' => {
                while pos < b.len() && b[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                out.push((Tok::LParen, start));
                pos += 1;
            }
            b')' => {
                out.push((Tok::RParen, start));
                pos += 1;
            }
            b',' => {
                out.push((Tok::Comma, start));
                pos += 1;
            }
            b'.' => {
                out.push((Tok::Dot, start));
                pos += 1;
            }
            b'@' => {
                out.push((Tok::At, start));
                pos += 1;
            }
            b'!' => {
                if b.get(pos + 1) == Some(&b'=') {
                    out.push((Tok::Neq, start));
                    pos += 2;
                } else {
                    out.push((Tok::Bang, start));
                    pos += 1;
                }
            }
            b':' => {
                if b.get(pos + 1) == Some(&b'-') {
                    out.push((Tok::ColonDash, start));
                    pos += 2;
                } else {
                    return Err(err("expected `:-`".into(), pos));
                }
            }
            b'\'' => {
                pos += 1;
                let s = pos;
                while pos < b.len() && b[pos] != b'\'' {
                    pos += 1;
                }
                if pos >= b.len() {
                    return Err(err("unterminated quoted symbol".into(), start));
                }
                let text = std::str::from_utf8(&b[s..pos])
                    .map_err(|_| err("invalid UTF-8".into(), s))?
                    .to_string();
                pos += 1;
                out.push((Tok::Quoted(text), start));
            }
            b'-' | b'0'..=b'9' => {
                let s = pos;
                pos += 1;
                while pos < b.len() && b[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text = std::str::from_utf8(&b[s..pos]).unwrap();
                let n: i64 = text
                    .parse()
                    .map_err(|_| err(format!("bad integer `{text}`"), s))?;
                out.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s = pos;
                while pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_') {
                    pos += 1;
                }
                out.push((
                    Tok::Ident(std::str::from_utf8(&b[s..pos]).unwrap().to_string()),
                    start,
                ));
            }
            other => {
                return Err(err(
                    format!("unexpected character `{}`", other as char),
                    pos,
                ))
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    /// Did the current rule mention `now`?
    uses_now: bool,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(usize::MAX)
    }

    fn error(&self, message: impl Into<String>) -> EvalError {
        EvalError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), EvalError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            other => Err(self.error(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn is_var(name: &str) -> bool {
        name.starts_with(|c: char| c.is_ascii_uppercase() || c == '_')
    }

    fn term(&mut self) -> Result<Term, EvalError> {
        match self.next() {
            Some(Tok::Ident(name)) if name == NOW => {
                self.uses_now = true;
                Ok(Term::Var(Var::new(NOW_VAR)))
            }
            Some(Tok::Ident(name)) if Self::is_var(&name) => Ok(Term::var(name)),
            Some(Tok::Ident(name)) => Ok(Term::cons(Value::sym(name))),
            Some(Tok::Int(n)) => Ok(Term::cons(n)),
            Some(Tok::Quoted(s)) => Ok(Term::cons(Value::sym(s))),
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }

    fn atom(&mut self, name: String) -> Result<Atom, EvalError> {
        let mut terms = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            loop {
                terms.push(self.term()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        Ok(Atom::new(name, terms))
    }

    fn rule(&mut self) -> Result<DRule, EvalError> {
        self.uses_now = false;
        let head_name = match self.next() {
            Some(Tok::Ident(n)) => n,
            other => return Err(self.error(format!("expected rule head, found {other:?}"))),
        };
        let head = self.atom(head_name)?;
        let timing = if self.eat(&Tok::At) {
            match self.next() {
                Some(Tok::Ident(kw)) if kw == "next" => DTime::Next,
                Some(Tok::Ident(kw)) if kw == "async" => DTime::Async,
                other => {
                    return Err(self.error(format!(
                        "expected `next` or `async` after `@`, found {other:?}"
                    )))
                }
            }
        } else {
            DTime::Same
        };

        let mut rule = DRule::new(head, timing);
        if self.eat(&Tok::ColonDash) {
            loop {
                if self.eat(&Tok::Bang) {
                    let name = match self.next() {
                        Some(Tok::Ident(n)) => n,
                        other => {
                            return Err(
                                self.error(format!("expected atom after `!`, found {other:?}"))
                            )
                        }
                    };
                    rule = rule.unless(self.atom(name)?);
                } else {
                    // an atom or `term != term`
                    let save = self.pos;
                    let lhs = self.term()?;
                    if self.eat(&Tok::Neq) {
                        let rhs = self.term()?;
                        rule = rule.distinct(lhs, rhs);
                    } else {
                        // must be an atom: rewind and reparse as such
                        self.pos = save;
                        let name = match self.next() {
                            Some(Tok::Ident(n)) if n != NOW => n,
                            other => {
                                return Err(
                                    self.error(format!("expected a body literal, found {other:?}"))
                                )
                            }
                        };
                        rule = rule.when(self.atom(name)?);
                    }
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::Dot)?;
        if self.uses_now {
            rule = rule.with_time_var(NOW_VAR);
        }
        rule.validate()?;
        Ok(rule)
    }
}

/// Parse a Dedalus program.
pub fn parse_dedalus(src: &str) -> Result<DedalusProgram, EvalError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
        uses_now: false,
    };
    let mut rules = Vec::new();
    while p.peek().is_some() {
        rules.push(p.rule()?);
    }
    DedalusProgram::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run_dedalus, DedalusOptions, TemporalFacts};
    use rtx_relational::fact;

    #[test]
    fn parse_and_run_persistence() {
        let p = parse_dedalus(
            "% persistence
             s(X)@next :- s(X).
             seen(X) :- s(X).
             seen(X)@next :- seen(X).",
        )
        .unwrap();
        assert_eq!(p.rules().len(), 3);
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("s", 1));
        edb.insert(2, fact!("s", 2));
        let trace = run_dedalus(&p, &edb, &DedalusOptions::default()).unwrap();
        assert!(trace.converged());
        assert!(trace.last().contains_fact(&fact!("seen", 1)));
        assert!(trace.last().contains_fact(&fact!("seen", 2)));
    }

    #[test]
    fn parse_timings() {
        let p = parse_dedalus(
            "a(X) :- e(X).
             b(X)@next :- e(X).
             c(X)@async :- e(X).",
        )
        .unwrap();
        assert_eq!(p.rules_with(DTime::Same).count(), 1);
        assert_eq!(p.rules_with(DTime::Next).count(), 1);
        assert_eq!(p.rules_with(DTime::Async).count(), 1);
    }

    #[test]
    fn parse_entanglement_now() {
        let p = parse_dedalus("minted(X, now)@next :- want(X). minted(X,T)@next :- minted(X,T).")
            .unwrap();
        let r = &p.rules()[0];
        assert!(r.time_var().is_some());
        let mut edb = TemporalFacts::new();
        edb.insert(3, fact!("want", "k"));
        let trace = run_dedalus(&p, &edb, &DedalusOptions::default()).unwrap();
        // want is not persisted: minted exactly once, with timestamp 3
        assert!(trace.last().contains_fact(&fact!("minted", "k", 3)));
    }

    #[test]
    fn parse_negation_and_diseq() {
        let p = parse_dedalus(
            "fresh(X)@next :- s(X), !seen(X).
             seen(X)@next :- s(X).
             seen(X)@next :- seen(X).
             pairs(X,Y) :- s(X), s(Y), X != Y.",
        )
        .unwrap();
        assert_eq!(p.rules().len(), 4);
        assert!(p.rules()[0].has_negation());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_dedalus("p(X) :- q(X)").is_err()); // missing dot
        assert!(parse_dedalus("p(X)@sometime :- q(X).").is_err());
        assert!(parse_dedalus("p(X) :- !q(Y).").is_err()); // unsafe
        assert!(parse_dedalus("p(X) :- 'unterminated.").is_err());
    }

    #[test]
    fn now_in_head_without_body_use_is_entangled() {
        let p = parse_dedalus("tick(now)@next :- go. go@next :- go.").unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("go"));
        let opts = DedalusOptions {
            max_ticks: 4,
            ..Default::default()
        };
        let trace = run_dedalus(&p, &edb, &opts).unwrap();
        assert!(trace.last().contains_fact(&fact!("tick", 2)));
    }
}

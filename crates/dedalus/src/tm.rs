//! Theorem 18: for every Turing machine `M`, the query `Q_M` is
//! expressible in an eventually consistent way by a Dedalus program.
//!
//! The compiler generates, per the paper's proof sketch:
//!
//! 1. **Persistence** of all input (EDB) facts — they "can arrive at any
//!    timestamp";
//! 2. **Word-structure detection**: a `Tape` path from `Begin` to `End`
//!    through labeled elements;
//! 3. **Spurious-tuple detection** (conditions (a)–(d)), which makes
//!    `Q_M` monotone: a detected word *plus* junk accepts outright;
//! 4. **Simulation**: the input letters are copied to separate `cell_*`
//!    predicates ("because `a` is persisted, which would cause the
//!    simulation to be overwritten"), the head/state walks via inductive
//!    rules, and the tape is extended **only when necessary** with fresh
//!    cells named by the current timestamp — the paper's *entanglement*.
//!
//! One deviation, recorded in `DESIGN.md`: the paper keeps extension
//! cells in separate `TapeExt`/`q_ext` predicates to avoid confusing
//! timestamp-named cells with input positions that are also numbers. Our
//! word structures name positions with *symbols* (`p1, p2, …`) while
//! timestamps are *integers*, so the name spaces are disjoint by typing
//! and a single family of predicates suffices — the entanglement
//! mechanism itself (minting fresh cells from timestamps) is preserved.

use crate::ast::{DRule, DTime, DedalusProgram};
use crate::eval::{run_dedalus, DedalusOptions, TemporalFacts};
use rtx_machine::{letter_rel, Move, Sym, TuringMachine, BLANK};
use rtx_query::{Atom, EvalError, Term};
use rtx_relational::Instance;

fn cell_rel(c: Sym) -> String {
    format!("cell_{c}")
}

fn state_rel(q: &str) -> String {
    format!("st_{q}")
}

fn v(n: &str) -> Term {
    Term::var(n)
}

/// Compile a Turing machine into the Theorem 18 Dedalus program.
pub fn compile_tm(m: &TuringMachine) -> Result<DedalusProgram, EvalError> {
    let sigma: Vec<Sym> = m.input_alphabet().iter().copied().collect();
    let gamma: Vec<Sym> = m.tape_alphabet().iter().copied().collect();
    let states: Vec<String> = m.states().into_iter().collect();
    let mut rules: Vec<DRule> = Vec::new();

    let persist = |pred: &str, arity: usize| DRule::persist(pred, arity);

    // 1. persistence of the EDB
    for a in &sigma {
        rules.push(persist(letter_rel(*a).as_str(), 1));
    }
    rules.push(persist("Tape", 2));
    rules.push(persist("Begin", 1));
    rules.push(persist("End", 1));

    // 2. word-structure detection (deductive)
    for a in &sigma {
        rules.push(
            DRule::new(Atom::new("Labeled", vec![v("X")]), DTime::Same)
                .when(Atom::new(letter_rel(*a).as_str(), vec![v("X")])),
        );
    }
    rules.push(
        DRule::new(Atom::new("WReach", vec![v("X")]), DTime::Same)
            .when(Atom::new("Begin", vec![v("X")]))
            .when(Atom::new("Labeled", vec![v("X")])),
    );
    rules.push(
        DRule::new(Atom::new("WReach", vec![v("Y")]), DTime::Same)
            .when(Atom::new("WReach", vec![v("X")]))
            .when(Atom::new("Tape", vec![v("X"), v("Y")]))
            .when(Atom::new("Labeled", vec![v("Y")])),
    );
    rules.push(
        DRule::new(Atom::new("Word", vec![]), DTime::Same)
            .when(Atom::new("WReach", vec![v("X")]))
            .when(Atom::new("End", vec![v("X")])),
    );

    // 3. spurious-tuple detection (deductive, gated on Word)
    let spurious =
        || DRule::new(Atom::new("Spurious", vec![]), DTime::Same).when(Atom::new("Word", vec![]));
    // (a) Begin / End not singletons
    rules.push(
        spurious()
            .when(Atom::new("Begin", vec![v("X")]))
            .when(Atom::new("Begin", vec![v("Y")]))
            .distinct(v("X"), v("Y")),
    );
    rules.push(
        spurious()
            .when(Atom::new("End", vec![v("X")]))
            .when(Atom::new("End", vec![v("Y")]))
            .distinct(v("X"), v("Y")),
    );
    // (b) doubly-labeled element
    for (i, a) in sigma.iter().enumerate() {
        for b in sigma.iter().skip(i + 1) {
            rules.push(
                spurious()
                    .when(Atom::new(letter_rel(*a).as_str(), vec![v("X")]))
                    .when(Atom::new(letter_rel(*b).as_str(), vec![v("X")])),
            );
        }
    }
    // (c) Tape not a successor path
    rules.push(
        spurious()
            .when(Atom::new("Tape", vec![v("X"), v("Y")]))
            .when(Atom::new("Tape", vec![v("X"), v("Z")]))
            .distinct(v("Y"), v("Z")),
    );
    rules.push(
        spurious()
            .when(Atom::new("Tape", vec![v("Y"), v("X")]))
            .when(Atom::new("Tape", vec![v("Z"), v("X")]))
            .distinct(v("Y"), v("Z")),
    );
    rules.push(
        DRule::new(Atom::new("TapeElem", vec![v("X")]), DTime::Same)
            .when(Atom::new("Tape", vec![v("X"), v("Y")])),
    );
    rules.push(
        DRule::new(Atom::new("TapeElem", vec![v("Y")]), DTime::Same)
            .when(Atom::new("Tape", vec![v("X"), v("Y")])),
    );
    rules.push(
        DRule::new(Atom::new("TReach", vec![v("X")]), DTime::Same)
            .when(Atom::new("Begin", vec![v("X")])),
    );
    rules.push(
        DRule::new(Atom::new("TReach", vec![v("Y")]), DTime::Same)
            .when(Atom::new("TReach", vec![v("X")]))
            .when(Atom::new("Tape", vec![v("X"), v("Y")])),
    );
    rules.push(
        spurious()
            .when(Atom::new("TapeElem", vec![v("X")]))
            .unless(Atom::new("TReach", vec![v("X")])),
    );
    // (d) phantom elements
    for a in &sigma {
        rules.push(
            DRule::new(Atom::new("InAdom", vec![v("X")]), DTime::Same)
                .when(Atom::new(letter_rel(*a).as_str(), vec![v("X")])),
        );
    }
    for p in ["Begin", "End", "TapeElem"] {
        rules.push(
            DRule::new(Atom::new("InAdom", vec![v("X")]), DTime::Same)
                .when(Atom::new(p, vec![v("X")])),
        );
    }
    rules.push(
        spurious()
            .when(Atom::new("InAdom", vec![v("X")]))
            .unless(Atom::new("Labeled", vec![v("X")])),
    );
    rules.push(
        spurious()
            .when(Atom::new("InAdom", vec![v("X")]))
            .unless(Atom::new("TapeElem", vec![v("X")])),
    );

    // acceptance by spuriousness (keeps Q_M monotone), and by simulation
    rules.push(
        DRule::new(Atom::new("Accepted", vec![]), DTime::Same)
            .when(Atom::new("Word", vec![]))
            .when(Atom::new("Spurious", vec![])),
    );
    rules.push(
        DRule::new(Atom::new("Accepted", vec![]), DTime::Same)
            .when(Atom::new(state_rel(m.accept()).as_str(), vec![v("X")])),
    );
    rules.push(persist("Accepted", 0));

    // 4a. simulation start: copy the tape once, place the head
    let start_gate = |r: DRule| -> DRule {
        r.when(Atom::new("Word", vec![]))
            .unless(Atom::new("Spurious", vec![]))
            .unless(Atom::new("Started", vec![]))
    };
    rules.push(
        DRule::new(Atom::new("Started", vec![]), DTime::Next)
            .when(Atom::new("Word", vec![]))
            .unless(Atom::new("Spurious", vec![])),
    );
    rules.push(persist("Started", 0));
    for a in &sigma {
        rules.push(start_gate(
            DRule::new(Atom::new(cell_rel(*a).as_str(), vec![v("X")]), DTime::Next)
                .when(Atom::new(letter_rel(*a).as_str(), vec![v("X")])),
        ));
    }
    rules.push(start_gate(
        DRule::new(
            Atom::new(state_rel(m.start()).as_str(), vec![v("X")]),
            DTime::Next,
        )
        .when(Atom::new("Begin", vec![v("X")])),
    ));

    // 4b. simulation helpers (deductive)
    for q in &states {
        rules.push(
            DRule::new(Atom::new("Head", vec![v("X")]), DTime::Same)
                .when(Atom::new(state_rel(q).as_str(), vec![v("X")])),
        );
    }
    for c in &gamma {
        rules.push(
            DRule::new(Atom::new("SimOn", vec![v("X")]), DTime::Same)
                .when(Atom::new(cell_rel(*c).as_str(), vec![v("X")])),
        );
    }
    rules.push(
        DRule::new(Atom::new("STape", vec![v("X"), v("Y")]), DTime::Same)
            .when(Atom::new("Tape", vec![v("X"), v("Y")])),
    );
    rules.push(
        DRule::new(Atom::new("STape", vec![v("X"), v("Y")]), DTime::Same)
            .when(Atom::new("ExtSucc", vec![v("X"), v("Y")])),
    );
    rules.push(persist("ExtSucc", 2));
    rules.push(
        DRule::new(Atom::new("HasNextCell", vec![v("X")]), DTime::Same)
            .when(Atom::new("STape", vec![v("X"), v("Y")])),
    );
    rules.push(
        DRule::new(Atom::new("LastCell", vec![v("X")]), DTime::Same)
            .when(Atom::new("SimOn", vec![v("X")]))
            .unless(Atom::new("HasNextCell", vec![v("X")])),
    );
    for (q, a, _) in m.transitions() {
        rules.push(
            DRule::new(Atom::new("Live", vec![]), DTime::Same)
                .when(Atom::new(state_rel(q).as_str(), vec![v("X")]))
                .when(Atom::new(cell_rel(a).as_str(), vec![v("X")])),
        );
    }
    rules.push(
        DRule::new(Atom::new("NeedExt", vec![]), DTime::Same)
            .when(Atom::new("Live", vec![]))
            .when(Atom::new("Head", vec![v("X")]))
            .when(Atom::new("LastCell", vec![v("X")])),
    );
    rules.push(
        DRule::new(Atom::new("CanStep", vec![]), DTime::Same)
            .when(Atom::new("Live", vec![]))
            .unless(Atom::new("NeedExt", vec![])),
    );
    for (q, a, _) in m.transitions() {
        rules.push(
            DRule::new(Atom::new("WriteAt", vec![v("X")]), DTime::Same)
                .when(Atom::new(state_rel(q).as_str(), vec![v("X")]))
                .when(Atom::new(cell_rel(a).as_str(), vec![v("X")]))
                .when(Atom::new("CanStep", vec![])),
        );
    }

    // 4c. tape extension — the entangled rules of the paper: the fresh
    // cell is *named by the current timestamp*.
    rules.push(
        DRule::new(Atom::new("ExtSucc", vec![v("X"), v("T")]), DTime::Next)
            .when(Atom::new("NeedExt", vec![]))
            .when(Atom::new("LastCell", vec![v("X")]))
            .with_time_var("T"),
    );
    rules.push(
        DRule::new(
            Atom::new(cell_rel(BLANK).as_str(), vec![v("T")]),
            DTime::Next,
        )
        .when(Atom::new("NeedExt", vec![]))
        .when(Atom::new("LastCell", vec![v("X")]))
        .with_time_var("T"),
    );

    // 4d. machine steps (inductive)
    for (q, a, t) in m.transitions() {
        let fire = |head: Atom| -> DRule {
            DRule::new(head, DTime::Next)
                .when(Atom::new(state_rel(q).as_str(), vec![v("X")]))
                .when(Atom::new(cell_rel(a).as_str(), vec![v("X")]))
                .when(Atom::new("CanStep", vec![]))
        };
        // write
        rules.push(fire(Atom::new(cell_rel(t.write).as_str(), vec![v("X")])));
        // move
        let next_state = state_rel(&t.next);
        rules.push(match t.movement {
            Move::Right => fire(Atom::new(next_state.as_str(), vec![v("Y")]))
                .when(Atom::new("STape", vec![v("X"), v("Y")])),
            Move::Left => fire(Atom::new(next_state.as_str(), vec![v("Y")]))
                .when(Atom::new("STape", vec![v("Y"), v("X")])),
            Move::Stay => fire(Atom::new(next_state.as_str(), vec![v("X")])),
        });
    }

    // 4e. frame rules
    for c in &gamma {
        rules.push(
            DRule::new(Atom::new(cell_rel(*c).as_str(), vec![v("Y")]), DTime::Next)
                .when(Atom::new(cell_rel(*c).as_str(), vec![v("Y")]))
                .unless(Atom::new("WriteAt", vec![v("Y")])),
        );
    }
    for q in &states {
        rules.push(
            DRule::new(Atom::new(state_rel(q).as_str(), vec![v("X")]), DTime::Next)
                .when(Atom::new(state_rel(q).as_str(), vec![v("X")]))
                .when(Atom::new("NeedExt", vec![])),
        );
    }

    DedalusProgram::new(rules)
}

/// How the input facts arrive over time.
#[derive(Clone, Copy, Debug)]
pub enum InputSchedule {
    /// Everything at tick 0.
    AllAtZero,
    /// Scattered uniformly over `0..=spread` ticks with a seed.
    Scattered {
        /// Latest possible arrival tick.
        spread: u64,
        /// RNG seed.
        seed: u64,
    },
}

/// Result of simulating `Q_M` in Dedalus.
#[derive(Clone, Debug)]
pub struct Thm18Outcome {
    /// Did the limit database contain `Accepted`?
    pub accepted: bool,
    /// Tick at which the trace provably stabilized (eventual
    /// consistency); `None` when the budget ran out first.
    pub converged_at: Option<u64>,
    /// Number of ticks executed.
    pub ticks: usize,
}

/// Simulate the machine on an arbitrary instance over the word schema
/// (which may be a proper word, spurious, or not a word at all).
pub fn simulate_instance(
    m: &TuringMachine,
    input: &Instance,
    schedule: InputSchedule,
    opts: &DedalusOptions,
) -> Result<Thm18Outcome, EvalError> {
    let program = compile_tm(m)?;
    let edb = match schedule {
        InputSchedule::AllAtZero => TemporalFacts::all_at_zero(input),
        InputSchedule::Scattered { spread, seed } => TemporalFacts::scattered(input, spread, seed),
    };
    let trace = run_dedalus(&program, &edb, opts)?;
    Ok(Thm18Outcome {
        accepted: trace.holds("Accepted"),
        converged_at: trace.converged_at,
        ticks: trace.ticks.len(),
    })
}

/// Simulate the machine on a string (encoded as a word structure).
pub fn simulate_word(
    m: &TuringMachine,
    word: &str,
    schedule: InputSchedule,
    opts: &DedalusOptions,
) -> Result<Thm18Outcome, EvalError> {
    let input = rtx_machine::encode_word(word, m.input_alphabet().iter().copied())
        .map_err(EvalError::Rel)?;
    simulate_instance(m, &input, schedule, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_machine::machines;
    use rtx_relational::{Fact, Tuple, Value};

    fn opts() -> DedalusOptions {
        DedalusOptions {
            max_ticks: 400,
            async_max_delay: 1,
            seed: 0,
            async_faults: None,
        }
    }

    #[test]
    fn even_as_agrees_with_interpreter() {
        let m = machines::even_as();
        for (w, expected) in [("aa", true), ("ab", false), ("baab", true), ("aba", true)] {
            let out = simulate_word(&m, w, InputSchedule::AllAtZero, &opts()).unwrap();
            assert!(
                out.converged_at.is_some(),
                "{w}: must be eventually consistent"
            );
            assert_eq!(out.accepted, expected, "word {w}");
        }
    }

    #[test]
    fn anbn_agrees_with_interpreter() {
        let m = machines::a_n_b_n();
        for (w, expected) in [("ab", true), ("aabb", true), ("aab", false), ("ba", false)] {
            let out = simulate_word(&m, w, InputSchedule::AllAtZero, &opts()).unwrap();
            assert!(out.converged_at.is_some(), "{w}");
            assert_eq!(out.accepted, expected, "word {w}");
        }
    }

    #[test]
    fn scattered_arrivals_do_not_change_the_answer() {
        let m = machines::contains_ab();
        for (w, expected) in [("ab", true), ("bb", false), ("bab", true)] {
            for seed in [1u64, 2, 3] {
                let out =
                    simulate_word(&m, w, InputSchedule::Scattered { spread: 6, seed }, &opts())
                        .unwrap();
                assert!(out.converged_at.is_some());
                assert_eq!(out.accepted, expected, "word {w} seed {seed}");
            }
        }
    }

    #[test]
    fn spurious_input_accepts_regardless_of_machine() {
        // contains a word ("ab") plus a double Begin: spurious ⇒ accept,
        // even though the machine rejects "ab"… wait, contains_ab accepts
        // "ab"; use even_as which rejects "ab".
        let m = machines::even_as();
        let mut input = rtx_machine::encode_word("ab", ['a', 'b']).unwrap();
        input
            .insert_fact(Fact::new(
                "Begin",
                Tuple::new(vec![rtx_machine::position(2)]),
            ))
            .unwrap();
        let out = simulate_instance(&m, &input, InputSchedule::AllAtZero, &opts()).unwrap();
        assert!(
            out.accepted,
            "spurious word structures accept (monotonicity)"
        );
        assert!(out.converged_at.is_some());
    }

    #[test]
    fn non_word_inputs_reject() {
        let m = machines::even_as();
        // a tape fragment with no Begin
        let mut input = rtx_machine::encode_word("aa", ['a', 'b']).unwrap();
        input.remove_fact(&Fact::new(
            "Begin",
            Tuple::new(vec![rtx_machine::position(1)]),
        ));
        let out = simulate_instance(&m, &input, InputSchedule::AllAtZero, &opts()).unwrap();
        assert!(!out.accepted);
        assert!(out.converged_at.is_some());
    }

    #[test]
    fn late_spurious_facts_flip_to_accept_monotonically() {
        // the word "ab" (rejected by even_as) arrives first; a second
        // End fact arrives much later — the limit must accept.
        let m = machines::even_as();
        let input = rtx_machine::encode_word("ab", ['a', 'b']).unwrap();
        let mut edb = TemporalFacts::all_at_zero(&input);
        edb.insert(
            12,
            Fact::new("End", Tuple::new(vec![rtx_machine::position(1)])),
        );
        let program = compile_tm(&m).unwrap();
        let trace = run_dedalus(&program, &edb, &opts()).unwrap();
        assert!(trace.converged());
        assert!(trace.holds("Accepted"));
    }

    #[test]
    fn tape_extension_mints_timestamp_cells() {
        // even_as runs off the right end of the input: the simulation
        // must extend the tape with an Int-named cell to read the blank.
        let m = machines::even_as();
        let program = compile_tm(&m).unwrap();
        let input = rtx_machine::encode_word("aa", ['a', 'b']).unwrap();
        let trace = run_dedalus(&program, &TemporalFacts::all_at_zero(&input), &opts()).unwrap();
        assert!(trace.holds("Accepted"));
        let ext = trace.last().relation(&"ExtSucc".into()).unwrap();
        assert!(!ext.is_empty(), "the tape was extended");
        let minted: Vec<Value> = ext.iter().map(|t| *t.get(1).unwrap()).collect();
        assert!(
            minted.iter().all(|c| c.as_int().is_some()),
            "extension cells are named by integer timestamps (entanglement)"
        );
    }

    #[test]
    fn palindrome_simulation_with_multiple_extensions() {
        let m = machines::palindrome();
        let o = DedalusOptions {
            max_ticks: 2000,
            ..opts()
        };
        for (w, expected) in [("aa", true), ("ab", false), ("aba", true)] {
            let out = simulate_word(&m, w, InputSchedule::AllAtZero, &o).unwrap();
            assert!(out.converged_at.is_some(), "{w}");
            assert_eq!(out.accepted, expected, "word {w}");
        }
    }

    #[test]
    fn full_catalog_cross_validation() {
        // every machine × every catalog word: Dedalus ≡ direct interpreter
        let o = DedalusOptions {
            max_ticks: 2000,
            ..opts()
        };
        for (m, cases) in machines::catalog() {
            for (w, expected) in cases {
                if w.len() < 2 {
                    continue; // the paper considers strings of length ≥ 2
                }
                let direct = m.run(w, 100_000).unwrap().accepted();
                assert_eq!(direct, expected);
                let sim = simulate_word(&m, w, InputSchedule::AllAtZero, &o).unwrap();
                assert_eq!(
                    sim.accepted,
                    expected,
                    "machine {} diverges from interpreter on {w}",
                    m.name()
                );
            }
        }
    }
}

//! # rtx-dedalus — Datalog in time and space
//!
//! The language of Section 8 of the paper: Datalog with negation where
//! every predicate implicitly carries a timestamp; *deductive* rules stay
//! within a tick, *inductive* rules step to the successor timestamp, and
//! *asynchronous* rules deliver at a nondeterministically chosen later
//! tick. Timestamps may be captured as data (*entanglement*) — the
//! feature that makes Dedalus "quite powerful": [`tm::compile_tm`]
//! realizes Theorem 18's eventually-consistent Turing machine simulation,
//! cross-validated against the direct interpreter in `rtx-machine`.

#![warn(missing_docs)]

mod ast;
mod eval;
pub mod parser;
pub mod tm;

pub use ast::{DRule, DTime, DedalusProgram};
pub use eval::{
    run_dedalus, AsyncFaultPlan, DedalusOptions, DedalusRuntime, FixpointMode, StoreMode,
    TemporalFacts, Trace,
};
pub use parser::parse_dedalus;
pub use tm::{compile_tm, simulate_instance, simulate_word, InputSchedule, Thm18Outcome};

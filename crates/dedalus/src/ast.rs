//! Dedalus abstract syntax (paper, Section 8).
//!
//! Dedalus is "a temporal version of Datalog with negation where the last
//! position of each predicate carries a timestamp; all subgoals of any
//! rule must be joined on this timestamp". Rather than writing the
//! timestamp argument explicitly, a [`DRule`] carries a [`DTime`] tag:
//!
//! * [`DTime::Same`] — a *deductive* rule (head at the body timestamp);
//! * [`DTime::Next`] — an *inductive* rule (head at the successor
//!   timestamp);
//! * [`DTime::Async`] — an *asynchronous* rule (head at a
//!   nondeterministically chosen later timestamp).
//!
//! **Entanglement**: a rule may name the body timestamp with
//! [`DRule::with_time_var`]; that variable can then be used in the head
//! or body as *data* — "timestamp values can also occur as data values" —
//! which is what lets Dedalus mint unboundedly many fresh values
//! (Theorem 18 uses it to extend the simulated Turing tape).

use rtx_query::{Atom, EvalError, Term, Var};
use rtx_relational::{RelName, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// Head-timestamp discipline of a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DTime {
    /// Deductive: same timestamp.
    Same,
    /// Inductive: successor timestamp.
    Next,
    /// Asynchronous: arbitrary later timestamp (chosen by the runtime).
    Async,
}

/// A Dedalus rule. Atom arguments are *data* positions only; the
/// timestamp is implicit.
#[derive(Clone, Debug)]
pub struct DRule {
    head: Atom,
    timing: DTime,
    body_pos: Vec<Atom>,
    body_neg: Vec<Atom>,
    diseq: Vec<(Term, Term)>,
    time_var: Option<Var>,
}

impl DRule {
    /// Start building a rule with the given head and timing.
    pub fn new(head: Atom, timing: DTime) -> Self {
        DRule {
            head,
            timing,
            body_pos: Vec::new(),
            body_neg: Vec::new(),
            diseq: Vec::new(),
            time_var: None,
        }
    }

    /// The ubiquitous persistence rule `P(x̄)@next ← P(x̄)` — every
    /// Dedalus program in the paper persists its EDB this way.
    pub fn persist(pred: impl Into<RelName>, arity: usize) -> Self {
        let pred = pred.into();
        let vars: Vec<Term> = (0..arity).map(|i| Term::var(format!("X{i}"))).collect();
        DRule::new(Atom::new(pred.clone(), vars.clone()), DTime::Next).when(Atom::new(pred, vars))
    }

    /// Add a positive body atom.
    pub fn when(mut self, a: Atom) -> Self {
        self.body_pos.push(a);
        self
    }

    /// Add a negated body atom (stratified within the tick).
    pub fn unless(mut self, a: Atom) -> Self {
        self.body_neg.push(a);
        self
    }

    /// Add a nonequality constraint.
    pub fn distinct(mut self, a: Term, b: Term) -> Self {
        self.diseq.push((a, b));
        self
    }

    /// Bind the body timestamp to a variable usable as data
    /// (entanglement).
    pub fn with_time_var(mut self, v: impl Into<Var>) -> Self {
        self.time_var = Some(v.into());
        self
    }

    /// The head atom.
    pub fn head(&self) -> &Atom {
        &self.head
    }

    /// The timing tag.
    pub fn timing(&self) -> DTime {
        self.timing
    }

    /// Positive body atoms.
    pub fn body_pos(&self) -> &[Atom] {
        &self.body_pos
    }

    /// Negated body atoms.
    pub fn body_neg(&self) -> &[Atom] {
        &self.body_neg
    }

    /// Nonequality constraints.
    pub fn diseqs(&self) -> &[(Term, Term)] {
        &self.diseq
    }

    /// The entangled time variable, if any.
    pub fn time_var(&self) -> Option<&Var> {
        self.time_var.as_ref()
    }

    /// Does the rule use negation?
    pub fn has_negation(&self) -> bool {
        !self.body_neg.is_empty()
    }

    /// Validate safety: every head / negated / nonequality variable must
    /// be bound by a positive atom or be the time variable.
    pub fn validate(&self) -> Result<(), EvalError> {
        let mut bound: BTreeSet<Var> = BTreeSet::new();
        for a in &self.body_pos {
            bound.extend(a.vars());
        }
        if let Some(tv) = &self.time_var {
            bound.insert(*tv);
        }
        let mut need: Vec<Var> = self.head.vars();
        for a in &self.body_neg {
            need.extend(a.vars());
        }
        for (a, b) in &self.diseq {
            for t in [a, b] {
                if let Term::Var(v) = t {
                    need.push(*v);
                }
            }
        }
        for v in need {
            if !bound.contains(&v) {
                return Err(EvalError::Unsafe {
                    reason: format!(
                        "variable {v} not bound by a positive atom or the time variable"
                    ),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for DRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suffix = match self.timing {
            DTime::Same => "",
            DTime::Next => "@next",
            DTime::Async => "@async",
        };
        write!(f, "{}{suffix} ← ", self.head)?;
        let mut first = true;
        for a in &self.body_pos {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for a in &self.body_neg {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "¬{a}")?;
        }
        for (a, b) in &self.diseq {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a} ≠ {b}")?;
        }
        if let Some(tv) = &self.time_var {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{tv} = now")?;
        }
        Ok(())
    }
}

/// A Dedalus program.
#[derive(Clone, Debug)]
pub struct DedalusProgram {
    rules: Vec<DRule>,
    signature: Schema,
}

impl DedalusProgram {
    /// Build a program, validating rule safety and arity consistency
    /// (data arities — the implicit timestamp is not counted).
    pub fn new(rules: Vec<DRule>) -> Result<Self, EvalError> {
        let mut signature = Schema::new();
        for r in &rules {
            r.validate()?;
            signature
                .declare(r.head().pred.clone(), r.head().arity())
                .map_err(EvalError::Rel)?;
            for a in r.body_pos().iter().chain(r.body_neg()) {
                signature
                    .declare(a.pred.clone(), a.arity())
                    .map_err(EvalError::Rel)?;
            }
        }
        Ok(DedalusProgram { rules, signature })
    }

    /// The rules.
    pub fn rules(&self) -> &[DRule] {
        &self.rules
    }

    /// Rules with a given timing.
    pub fn rules_with(&self, timing: DTime) -> impl Iterator<Item = &DRule> {
        self.rules.iter().filter(move |r| r.timing() == timing)
    }

    /// Data-arity signature of every predicate.
    pub fn signature(&self) -> &Schema {
        &self.signature
    }

    /// Predicates defined by some rule head.
    pub fn idb_predicates(&self) -> BTreeSet<RelName> {
        self.rules.iter().map(|r| r.head().pred.clone()).collect()
    }

    /// Predicates only read.
    pub fn edb_predicates(&self) -> BTreeSet<RelName> {
        let idb = self.idb_predicates();
        self.signature
            .names()
            .filter(|n| !idb.contains(*n))
            .cloned()
            .collect()
    }

    /// Is the program free of asynchronous rules (hence deterministic)?
    pub fn is_synchronous(&self) -> bool {
        self.rules_with(DTime::Async).next().is_none()
    }
}

impl fmt::Display for DedalusProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::atom;

    #[test]
    fn rule_building_and_display() {
        let r = DRule::new(atom!("p"; @"X"), DTime::Next)
            .when(atom!("q"; @"X"))
            .unless(atom!("r"; @"X"))
            .distinct(Term::var("X"), Term::cons(1));
        assert!(r.validate().is_ok());
        let s = r.to_string();
        assert!(s.contains("@next"));
        assert!(s.contains("¬r(X)"));
    }

    #[test]
    fn safety_needs_positive_or_time_binding() {
        let bad = DRule::new(atom!("p"; @"X"), DTime::Same);
        assert!(bad.validate().is_err());
        let ok = DRule::new(atom!("p"; @"T"), DTime::Next).with_time_var("T");
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn program_signature_and_split() {
        let p = DedalusProgram::new(vec![
            DRule::new(atom!("p"; @"X"), DTime::Same).when(atom!("e"; @"X", @"Y")),
            DRule::new(atom!("p"; @"X"), DTime::Next).when(atom!("p"; @"X")),
        ])
        .unwrap();
        assert_eq!(p.signature().arity(&"e".into()), Some(2));
        assert!(p.idb_predicates().contains(&"p".into()));
        assert!(p.edb_predicates().contains(&"e".into()));
        assert!(p.is_synchronous());
        assert_eq!(p.rules_with(DTime::Next).count(), 1);
    }

    #[test]
    fn arity_conflicts_rejected() {
        let res = DedalusProgram::new(vec![
            DRule::new(atom!("p"; @"X"), DTime::Same).when(atom!("e"; @"X")),
            DRule::new(atom!("p"; @"X", @"Y"), DTime::Same).when(atom!("e2"; @"X", @"Y")),
        ]);
        assert!(res.is_err());
    }

    #[test]
    fn async_detection() {
        let p = DedalusProgram::new(vec![
            DRule::new(atom!("m"; @"X"), DTime::Async).when(atom!("s"; @"X"))
        ])
        .unwrap();
        assert!(!p.is_synchronous());
    }
}

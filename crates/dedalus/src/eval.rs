//! The Dedalus runtime: tick-by-tick temporal evaluation.
//!
//! A temporal instance assigns facts to timestamps. Each tick `t`:
//!
//! 1. the tick's base facts are gathered — EDB arrivals at `t`, heads of
//!    inductive rules fired at `t−1`, and asynchronous heads whose chosen
//!    timestamp is `t`;
//! 2. the **deductive** rules (which must be stratifiable — the paper
//!    requires modular stratification for a deterministic semantics) are
//!    evaluated to fixpoint over the base, with the entangled time
//!    variable bound to `t`;
//! 3. **inductive** rules fire once against the completed tick database,
//!    scheduling their heads at `t+1`;
//! 4. **asynchronous** rules fire once, scheduling each derived head at a
//!    seeded-random later timestamp (the paper's nondeterministic
//!    construct modelling asynchronous communication).
//!
//! The run stops at the tick budget or at *convergence* — the executable
//! reading of the paper's eventual consistency (`Π(I)|m = Π(I)|n` for all
//! `m ≥ n`): the tick database repeats, nothing new is scheduled, and no
//! EDB arrivals remain.

use crate::ast::{DRule, DTime, DedalusProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtx_query::{
    Atom, EvalError, EvalStrategy, JoinMode, Literal, MaintainedFixpoint, Program, Rule, Term, Var,
};
use rtx_relational::{Fact, Instance, InstanceDelta, RelName, Schema, Value};
use std::collections::BTreeMap;

/// EDB facts with arrival timestamps.
#[derive(Clone, Debug, Default)]
pub struct TemporalFacts {
    arrivals: BTreeMap<u64, Vec<Fact>>,
}

impl TemporalFacts {
    /// No facts.
    pub fn new() -> Self {
        TemporalFacts::default()
    }

    /// All facts arrive at tick 0.
    pub fn all_at_zero(instance: &Instance) -> Self {
        let mut t = TemporalFacts::new();
        for f in instance.facts() {
            t.insert(0, f);
        }
        t
    }

    /// Scatter the facts of an instance over ticks `0..=spread` with a
    /// seeded RNG — "input facts can arrive at any timestamp".
    pub fn scattered(instance: &Instance, spread: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = TemporalFacts::new();
        for f in instance.facts() {
            t.insert(rng.gen_range(0..=spread), f);
        }
        t
    }

    /// Add one fact at a tick.
    pub fn insert(&mut self, tick: u64, fact: Fact) {
        self.arrivals.entry(tick).or_default().push(fact);
    }

    /// The last tick with an arrival.
    pub fn last_arrival(&self) -> Option<u64> {
        self.arrivals.keys().next_back().copied()
    }

    fn at(&self, tick: u64) -> &[Fact] {
        self.arrivals.get(&tick).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled facts.
    pub fn len(&self) -> usize {
        self.arrivals.values().map(Vec::len).sum()
    }

    /// No facts at all?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fault plan for the asynchronous rules: replaces the uniform
/// `1..=async_max_delay` delay draw with a seeded, *pure* per-fact
/// decision (splitmix64 keyed by `(seed, tick, fact index)`), optionally
/// widening delays and duplicating deliveries. Because every decision
/// is a pure function of the key, a faulted run is exactly reproducible
/// from `(program, EDB, DedalusOptions)` — the chaos explorer varies
/// these plans to probe the eventual consistency of a program over many
/// adversarial async schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsyncFaultPlan {
    /// Seed of the pure decision stream (independent of
    /// [`DedalusOptions::seed`], which feeds the plain draw).
    pub seed: u64,
    /// Extra delay added on top of the base `1..=async_max_delay` draw,
    /// drawn uniformly from this inclusive range.
    pub extra_delay: (u64, u64),
    /// Per-mille probability that a derived head is delivered twice
    /// (the duplicate draws its own delay) — the paper's duplicating
    /// network, for async rules.
    pub dup_millis: u16,
}

impl AsyncFaultPlan {
    /// The plan that only reseeds the delay stream (no widening, no
    /// duplication).
    pub fn reseeded(seed: u64) -> AsyncFaultPlan {
        AsyncFaultPlan {
            seed,
            extra_delay: (0, 0),
            dup_millis: 0,
        }
    }

    /// The delays (one per delivered copy) of the `k`-th async head
    /// derived at `now`, each in `1..=max_delay + extra`.
    pub fn delays(&self, now: u64, k: usize, max_delay: u64) -> Vec<u64> {
        let draw = |salt: u64| mix(&[self.seed, now, k as u64, salt]);
        let one = |salt: u64| {
            let base = 1 + draw(salt) % max_delay.max(1);
            let (lo, hi) = self.extra_delay;
            let extra = if hi <= lo {
                lo
            } else {
                lo + draw(salt + 1) % (hi - lo + 1)
            };
            base + extra
        };
        let mut delays = vec![one(0)];
        if self.dup_millis > 0 && draw(100) % 1000 < self.dup_millis as u64 {
            delays.push(one(200));
        }
        delays
    }
}

use rtx_core::mix::fold as mix;

/// Options for a Dedalus run.
#[derive(Clone, Debug)]
pub struct DedalusOptions {
    /// Maximum number of ticks.
    pub max_ticks: u64,
    /// Maximum async delivery delay (delays are 1..=max).
    pub async_max_delay: u64,
    /// Seed for async timestamp choices.
    pub seed: u64,
    /// When set, async delivery timestamps are decided by this fault
    /// plan instead of the plain seeded draw (see [`AsyncFaultPlan`]).
    /// Both store modes and both fixpoint modes honor it identically,
    /// so the store/fixpoint equivalences hold under fault plans too.
    pub async_faults: Option<AsyncFaultPlan>,
}

impl Default for DedalusOptions {
    fn default() -> Self {
        DedalusOptions {
            max_ticks: 500,
            async_max_delay: 3,
            seed: 0,
            async_faults: None,
        }
    }
}

/// The observable result of a run.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The database at each tick.
    pub ticks: Vec<Instance>,
    /// The first tick from which the database provably repeats forever.
    pub converged_at: Option<u64>,
}

impl Trace {
    /// The final tick's database.
    pub fn last(&self) -> &Instance {
        self.ticks.last().expect("at least one tick")
    }

    /// Did the run converge (eventual consistency)?
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Is a nullary predicate true in the limit?
    pub fn holds(&self, pred: &str) -> bool {
        self.last()
            .relation(&RelName::new(pred))
            .map(|r| r.as_bool())
            .unwrap_or(false)
    }
}

/// Substitute the time variable by the current tick in a term.
fn subst_term(t: &Term, tv: Option<&Var>, now: u64) -> Term {
    match (t, tv) {
        (Term::Var(v), Some(tvar)) if v == tvar => Term::Const(Value::Int(now as i64)),
        _ => t.clone(),
    }
}

fn subst_atom(a: &Atom, tv: Option<&Var>, now: u64) -> Atom {
    Atom::new(
        a.pred.clone(),
        a.terms.iter().map(|t| subst_term(t, tv, now)).collect(),
    )
}

/// Translate a Dedalus rule (with the time variable bound to `now`) into
/// a plain Datalog rule.
fn translate(rule: &DRule, now: u64) -> Result<Rule, EvalError> {
    let tv = rule.time_var();
    let head = subst_atom(rule.head(), tv, now);
    let mut body: Vec<Literal> = Vec::new();
    for a in rule.body_pos() {
        body.push(Literal::Pos(subst_atom(a, tv, now)));
    }
    for a in rule.body_neg() {
        body.push(Literal::Neg(subst_atom(a, tv, now)));
    }
    for (a, b) in rule.diseqs() {
        body.push(Literal::Diseq(
            subst_term(a, tv, now),
            subst_term(b, tv, now),
        ));
    }
    Rule::new(head, body)
}

/// How the runtime maintains the tick-to-tick database.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreMode {
    /// The seed behavior: clone the carry instance every tick, rebuild
    /// the inductive/asynchronous programs every tick, and evaluate the
    /// deductive fixpoint with full-scan joins. Kept as the measurable
    /// baseline for `bench_dedalus` and as the oracle for the
    /// delta ≡ clone property tests.
    Cloning,
    /// The delta store: one persistent base instance advanced by
    /// [`Instance::apply_delta`] per tick, per-timing programs cached
    /// when they don't entangle time, and indexed joins throughout.
    #[default]
    Delta,
}

/// How the delta store computes each tick's deductive fixpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FixpointMode {
    /// Re-derive every IDB fact from scratch each tick (the seed
    /// behavior, kept as the measurable baseline for `bench_dedalus`
    /// and as the oracle for the incremental ≡ scratch property tests).
    Scratch,
    /// Maintain the IDB across ticks with a
    /// [`MaintainedFixpoint`]: the tick's base ± delta (arrivals,
    /// deliveries, and carry-dropped facts as first-class retractions)
    /// updates only the affected derivations and strata. Falls back to
    /// scratch on the first tick, and for programs whose *deductive*
    /// rules entangle the time variable (their rule set changes every
    /// tick, so there is nothing stable to maintain).
    #[default]
    Incremental,
}

impl FixpointMode {
    /// The `RTX_DEDALUS_FIXPOINT` override (`scratch` / `incremental`,
    /// case-insensitive) when set and parsable, else the default
    /// ([`FixpointMode::Incremental`]).
    pub fn auto() -> FixpointMode {
        rtx_core::env::parse_choice(
            "RTX_DEDALUS_FIXPOINT",
            "\"scratch\" or \"incremental\"",
            FixpointMode::parse,
        )
        .unwrap_or_default()
    }

    /// Parse a mode name as accepted by `RTX_DEDALUS_FIXPOINT`.
    pub fn parse(s: &str) -> Option<FixpointMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scratch" => Some(FixpointMode::Scratch),
            "incremental" => Some(FixpointMode::Incremental),
            _ => None,
        }
    }
}

/// The Dedalus evaluator.
pub struct DedalusRuntime<'p> {
    program: &'p DedalusProgram,
    /// Cached deductive program when no deductive rule entangles time.
    cached_deductive: Option<Program>,
}

impl<'p> DedalusRuntime<'p> {
    /// Prepare a runtime for a program.
    pub fn new(program: &'p DedalusProgram) -> Result<Self, EvalError> {
        let time_free = program
            .rules_with(DTime::Same)
            .all(|r| r.time_var().is_none());
        let cached_deductive = if time_free {
            let p = Self::build(program, DTime::Same, 0)?;
            // surface stratification problems at construction time
            p.stratify()?;
            Some(p)
        } else {
            None
        };
        Ok(DedalusRuntime {
            program,
            cached_deductive,
        })
    }

    fn build(program: &DedalusProgram, timing: DTime, now: u64) -> Result<Program, EvalError> {
        let rules: Vec<Rule> = program
            .rules_with(timing)
            .map(|r| translate(r, now))
            .collect::<Result<_, _>>()?;
        Program::new(rules)
    }

    /// Working schema: program signature ∪ EDB fact relations.
    fn schema(&self, edb: &TemporalFacts) -> Result<Schema, EvalError> {
        let mut s = self.program.signature().clone();
        for facts in edb.arrivals.values() {
            for f in facts {
                s.declare(f.rel().clone(), f.arity())
                    .map_err(EvalError::Rel)?;
            }
        }
        Ok(s)
    }

    /// Run the program on a temporal EDB (delta store, indexed joins,
    /// fixpoint mode resolved from `RTX_DEDALUS_FIXPOINT`).
    pub fn run(&self, edb: &TemporalFacts, opts: &DedalusOptions) -> Result<Trace, EvalError> {
        self.run_with(edb, opts, StoreMode::default())
    }

    /// Run with an explicit store mode. Both modes compute the same
    /// trace — [`StoreMode::Cloning`] is the seed implementation kept
    /// for benchmarking and equivalence testing. The delta store's
    /// fixpoint mode is resolved from the environment
    /// ([`FixpointMode::auto`]).
    pub fn run_with(
        &self,
        edb: &TemporalFacts,
        opts: &DedalusOptions,
        mode: StoreMode,
    ) -> Result<Trace, EvalError> {
        self.run_with_fixpoint(edb, opts, mode, FixpointMode::auto())
    }

    /// Run with explicit store *and* fixpoint modes. All four
    /// combinations compute the same trace; the fixpoint mode only
    /// applies to the delta store ([`StoreMode::Cloning`] always
    /// re-derives from scratch — that is the seed loop).
    pub fn run_with_fixpoint(
        &self,
        edb: &TemporalFacts,
        opts: &DedalusOptions,
        mode: StoreMode,
        fixpoint: FixpointMode,
    ) -> Result<Trace, EvalError> {
        match mode {
            StoreMode::Cloning => self.run_cloning(edb, opts),
            StoreMode::Delta => self.run_delta(edb, opts, fixpoint),
        }
    }

    /// Split a timing class into a program for the rules that never
    /// mention the time variable (translated once, reused every tick)
    /// and the entangled remainder (retranslated per tick). Firing the
    /// two halves separately and unioning their heads is equivalent to
    /// firing the whole class: `T_P` applies each rule once.
    fn split_timing(&self, timing: DTime) -> Result<(Option<Program>, Vec<&'p DRule>), EvalError> {
        let (free, entangled): (Vec<&DRule>, Vec<&DRule>) = self
            .program
            .rules_with(timing)
            .partition(|r| r.time_var().is_none());
        let cached = if free.is_empty() {
            None
        } else {
            let rules: Vec<Rule> = free
                .iter()
                .map(|r| translate(r, 0))
                .collect::<Result<_, _>>()?;
            Some(Program::new(rules)?)
        };
        Ok((cached, entangled))
    }

    /// Translate and build a program from a rule subset at tick `now`.
    fn build_subset(rules: &[&DRule], now: u64) -> Result<Program, EvalError> {
        let translated: Vec<Rule> = rules
            .iter()
            .map(|r| translate(r, now))
            .collect::<Result<_, _>>()?;
        Program::new(translated)
    }

    /// The delta-store loop: one persistent `base` instance advanced by
    /// per-tick deltas instead of a fresh clone of the carry, plus
    /// tick-invariant program caching and indexed joins.
    ///
    /// With [`FixpointMode::Incremental`] the deductive fixpoint is
    /// additionally maintained *across* ticks: the tick's base ± —
    /// arrivals, async deliveries, and the facts the carry dropped
    /// (first-class retractions) — feeds a [`MaintainedFixpoint`]
    /// instead of triggering a from-scratch re-derivation. Only the
    /// first tick evaluates from scratch (it initializes the maintained
    /// state); programs whose deductive rules entangle time keep the
    /// per-tick scratch path, since their rule set changes every tick.
    fn run_delta(
        &self,
        edb: &TemporalFacts,
        opts: &DedalusOptions,
        fixpoint: FixpointMode,
    ) -> Result<Trace, EvalError> {
        let schema = self.schema(edb)?;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        // The persistent store: always equals carry(now) ∪ arrivals so
        // far this tick. Between ticks it is advanced by the (usually
        // tiny, for persistence-style programs) carry delta.
        let mut base: Instance = Instance::empty(schema.clone());
        let mut pending_async: BTreeMap<u64, Vec<Fact>> = BTreeMap::new();
        let mut ticks: Vec<Instance> = Vec::new();
        let mut converged_at = None;
        let (cached_inductive, entangled_inductive) = self.split_timing(DTime::Next)?;
        let (cached_async, entangled_async) = self.split_timing(DTime::Async)?;
        let mut maintained: Option<MaintainedFixpoint> = match (&self.cached_deductive, fixpoint) {
            (Some(p), FixpointMode::Incremental) => Some(MaintainedFixpoint::new(p)?),
            _ => None,
        };
        // The tick's base ± relative to the previous tick's evaluated
        // base: carry-dropped facts arrive here as retractions, carry
        // additions / EDB arrivals / async deliveries as insertions.
        // Only tracked when a maintained fixpoint consumes it — the
        // scratch path must not pay for (or accumulate) the clones.
        let track = maintained.is_some();
        let mut tick_added: Vec<Fact> = Vec::new();
        let mut tick_removed: Vec<Fact> = Vec::new();

        for now in 0..opts.max_ticks {
            let _tick_span = rtx_obs::trace::span("dedalus", "tick", &[("tick", now as i64)]);
            // 1. base facts: the carried store plus this tick's arrivals
            for f in edb.at(now) {
                if base.insert_fact(f.clone()).map_err(EvalError::Rel)? && track {
                    tick_added.push(f.clone());
                }
            }
            if let Some(facts) = pending_async.remove(&now) {
                for f in facts {
                    if base.insert_fact(f.clone()).map_err(EvalError::Rel)? && track {
                        tick_added.push(f);
                    }
                }
            }

            // 2. deductive fixpoint
            let db = match (&mut maintained, &self.cached_deductive) {
                (Some(fix), _) if fix.is_initialized() => {
                    let delta = InstanceDelta::from_parts(
                        std::mem::take(&mut tick_added),
                        std::mem::take(&mut tick_removed),
                    );
                    fix.apply(&delta)?.clone()
                }
                (Some(fix), _) => {
                    tick_added.clear();
                    tick_removed.clear();
                    fix.initialize(&base)?.clone()
                }
                (None, Some(p)) => p.eval(&base)?,
                (None, None) => Self::build(self.program, DTime::Same, now)?.eval(&base)?,
            };

            // 3. inductive rules → carry to now+1 (cached half + the
            // per-tick entangled half)
            let mut next_carry = Instance::empty(schema.clone());
            let carry_step = |step: Instance, next_carry: &mut Instance| -> Result<(), EvalError> {
                for f in step.facts() {
                    if self.program.signature().contains(f.rel()) {
                        next_carry.insert_fact(f).map_err(EvalError::Rel)?;
                    }
                }
                Ok(())
            };
            if let Some(p) = &cached_inductive {
                carry_step(p.tp_step(&db)?, &mut next_carry)?;
            }
            if !entangled_inductive.is_empty() {
                let p = Self::build_subset(&entangled_inductive, now)?;
                carry_step(p.tp_step(&db)?, &mut next_carry)?;
            }

            // 4. async rules → pending deliveries. The two halves merge
            // into one instance before delays are drawn, so the RNG
            // consumes facts in the same (sorted) order as the cloning
            // store, keeping traces mode-independent.
            let mut astep: Option<Instance> = None;
            if let Some(p) = &cached_async {
                astep = Some(p.tp_step(&db)?);
            }
            if !entangled_async.is_empty() {
                let p = Self::build_subset(&entangled_async, now)?;
                let step = p.tp_step(&db)?;
                astep = Some(match astep {
                    None => step,
                    Some(mut acc) => {
                        for f in step.facts() {
                            acc.insert_fact(f).map_err(EvalError::Rel)?;
                        }
                        acc
                    }
                });
            }
            if let Some(astep) = astep {
                schedule_async(
                    astep
                        .facts()
                        .filter(|f| self.program.signature().contains(f.rel())),
                    now,
                    opts,
                    &mut rng,
                    &mut pending_async,
                );
            }

            // 5. convergence detection (see `run_cloning`)
            let stable = ticks.last() == Some(&db);
            let arrivals_done = edb.last_arrival().map(|l| l < now).unwrap_or(true);
            let async_idempotent = pending_async
                .values()
                .flatten()
                .all(|f| db.contains_fact(f));
            ticks.push(db);
            if stable && arrivals_done && async_idempotent {
                converged_at = Some(now);
                break;
            }
            // 6. advance the store to the next tick's carry by delta —
            // carry-dropped facts become the next tick's retractions
            let delta = next_carry.diff(&base);
            base.apply_delta(&delta).map_err(EvalError::Rel)?;
            if maintained.is_some() {
                let (add, rem) = delta.into_parts();
                tick_added = add;
                tick_removed = rem;
            }
        }
        publish_run(ticks.len(), converged_at);
        Ok(Trace {
            ticks,
            converged_at,
        })
    }

    /// The seed loop, preserved byte-for-byte modulo the explicit scan
    /// join mode: clone the carry every tick, rebuild the inductive and
    /// asynchronous programs every tick.
    fn run_cloning(&self, edb: &TemporalFacts, opts: &DedalusOptions) -> Result<Trace, EvalError> {
        let schema = self.schema(edb)?;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut carry: Instance = Instance::empty(schema.clone());
        let mut pending_async: BTreeMap<u64, Vec<Fact>> = BTreeMap::new();
        let mut ticks: Vec<Instance> = Vec::new();
        let mut converged_at = None;

        for now in 0..opts.max_ticks {
            let _tick_span = rtx_obs::trace::span("dedalus", "tick", &[("tick", now as i64)]);
            // 1. base facts
            let mut base = carry.clone();
            for f in edb.at(now) {
                base.insert_fact(f.clone()).map_err(EvalError::Rel)?;
            }
            if let Some(facts) = pending_async.remove(&now) {
                for f in facts {
                    base.insert_fact(f).map_err(EvalError::Rel)?;
                }
            }

            // 2. deductive fixpoint
            let db = match &self.cached_deductive {
                Some(p) => p.eval_with_mode(&base, EvalStrategy::SemiNaive, JoinMode::Scan)?,
                None => Self::build(self.program, DTime::Same, now)?.eval_with_mode(
                    &base,
                    EvalStrategy::SemiNaive,
                    JoinMode::Scan,
                )?,
            };

            // 3. inductive rules → carry to now+1
            let inductive = Self::build(self.program, DTime::Next, now)?;
            let step = inductive.tp_step_with_mode(&db, JoinMode::Scan)?;
            let mut next_carry = Instance::empty(schema.clone());
            for f in step.facts() {
                if self.program.signature().contains(f.rel()) {
                    next_carry.insert_fact(f).map_err(EvalError::Rel)?;
                }
            }

            // 4. async rules → pending deliveries
            let async_p = Self::build(self.program, DTime::Async, now)?;
            let astep = async_p.tp_step_with_mode(&db, JoinMode::Scan)?;
            schedule_async(
                astep
                    .facts()
                    .filter(|f| self.program.signature().contains(f.rel())),
                now,
                opts,
                &mut rng,
                &mut pending_async,
            );

            // 5. convergence detection: the tick database repeats, no
            // input remains, and every pending asynchronous delivery is
            // *idempotent* (already present in the stable database — an
            // async rule over persisted state re-derives the same facts
            // forever, which is still eventually consistent).
            let stable = ticks.last() == Some(&db);
            let arrivals_done = edb.last_arrival().map(|l| l < now).unwrap_or(true);
            let async_idempotent = pending_async
                .values()
                .flatten()
                .all(|f| db.contains_fact(f));
            ticks.push(db);
            if stable && arrivals_done && async_idempotent {
                converged_at = Some(now);
                break;
            }
            carry = next_carry;
        }
        publish_run(ticks.len(), converged_at);
        Ok(Trace {
            ticks,
            converged_at,
        })
    }
}

/// Publish one Dedalus run's `dedalus.*` counters into the global
/// [`rtx_obs`] registry (both store loops call this once per run).
fn publish_run(ticks: usize, converged_at: Option<u64>) {
    if !rtx_obs::counting() {
        return;
    }
    rtx_obs::registry::add("dedalus.runs", 1);
    rtx_obs::registry::add("dedalus.ticks", ticks as u64);
    if converged_at.is_some() {
        rtx_obs::registry::add("dedalus.converged_runs", 1);
    }
}

/// Schedule the tick's async heads: the plain seeded uniform draw, or
/// the pure per-fact decisions of an [`AsyncFaultPlan`] when one is
/// set. Shared verbatim by both store loops, so traces stay
/// mode-identical under either path. The plain path consumes `rng` in
/// fact order exactly as the seed loop did; the fault path consumes
/// nothing from it (its decisions are pure), keeping the two regimes
/// cleanly separated.
fn schedule_async<'f>(
    facts: impl Iterator<Item = Fact> + 'f,
    now: u64,
    opts: &DedalusOptions,
    rng: &mut StdRng,
    pending_async: &mut BTreeMap<u64, Vec<Fact>>,
) {
    match &opts.async_faults {
        None => {
            for f in facts {
                let delay = rng.gen_range(1..=opts.async_max_delay.max(1));
                pending_async.entry(now + delay).or_default().push(f);
            }
        }
        Some(plan) => {
            for (k, f) in facts.enumerate() {
                for delay in plan.delays(now, k, opts.async_max_delay.max(1)) {
                    pending_async
                        .entry(now + delay)
                        .or_default()
                        .push(f.clone());
                }
            }
        }
    }
}

/// Convenience: run a program in one call.
pub fn run_dedalus(
    program: &DedalusProgram,
    edb: &TemporalFacts,
    opts: &DedalusOptions,
) -> Result<Trace, EvalError> {
    DedalusRuntime::new(program)?.run(edb, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DRule, DTime};
    use rtx_query::atom;
    use rtx_relational::fact;

    fn persist(pred: &str, arity: usize) -> DRule {
        DRule::persist(pred, arity)
    }

    #[test]
    fn persistence_carries_facts_forward() {
        let p = DedalusProgram::new(vec![persist("s", 1)]).unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("s", 1));
        edb.insert(3, fact!("s", 2));
        let trace = run_dedalus(&p, &edb, &DedalusOptions::default()).unwrap();
        assert!(trace.converged());
        let last = trace.last();
        assert!(last.contains_fact(&fact!("s", 1)));
        assert!(last.contains_fact(&fact!("s", 2)));
        // converged shortly after the last arrival
        assert!(trace.converged_at.unwrap() >= 4);
        assert!(trace.converged_at.unwrap() <= 6);
    }

    #[test]
    fn deductive_rules_close_within_a_tick() {
        // tc within the tick, over persisted edges
        let p = DedalusProgram::new(vec![
            persist("e", 2),
            DRule::new(atom!("t"; @"X", @"Y"), DTime::Same).when(atom!("e"; @"X", @"Y")),
            DRule::new(atom!("t"; @"X", @"Z"), DTime::Same)
                .when(atom!("t"; @"X", @"Y"))
                .when(atom!("e"; @"Y", @"Z")),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("e", 1, 2));
        edb.insert(1, fact!("e", 2, 3));
        let trace = run_dedalus(&p, &edb, &DedalusOptions::default()).unwrap();
        assert!(trace.converged());
        assert!(trace.last().contains_fact(&fact!("t", 1, 3)));
        // at tick 0 only the first edge exists
        assert!(!trace.ticks[0].contains_fact(&fact!("t", 1, 3)));
    }

    #[test]
    fn inductive_counter_with_entanglement_mints_values() {
        // tick(T)@next ← go, T = now : records timestamps as data
        let p = DedalusProgram::new(vec![
            persist("go", 0),
            persist("tick", 1),
            DRule::new(atom!("tick"; @"T"), DTime::Next)
                .when(atom!("go"))
                .with_time_var("T"),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("go"));
        let opts = DedalusOptions {
            max_ticks: 6,
            ..Default::default()
        };
        let trace = run_dedalus(&p, &edb, &opts).unwrap();
        // never converges (a fresh timestamp every tick) within budget
        assert!(!trace.converged());
        let last = trace.last();
        assert!(last.contains_fact(&fact!("tick", 0)));
        assert!(last.contains_fact(&fact!("tick", 3)));
    }

    #[test]
    fn async_rules_deliver_with_seeded_delay() {
        let p = DedalusProgram::new(vec![
            persist("sent", 1),
            persist("got", 1),
            // send once: m(X)@async ← s(X); record: got(X) ← m(X)
            DRule::new(atom!("m"; @"X"), DTime::Async).when(atom!("s"; @"X")),
            DRule::new(atom!("got"; @"X"), DTime::Same).when(atom!("m"; @"X")),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("s", 9));
        let opts = DedalusOptions {
            max_ticks: 50,
            async_max_delay: 4,
            seed: 13,
            async_faults: None,
        };
        let trace = run_dedalus(&p, &edb, &opts).unwrap();
        assert!(trace.converged());
        assert!(trace.last().contains_fact(&fact!("got", 9)));
        // delivery was strictly later than tick 0
        assert!(!trace.ticks[0].contains_fact(&fact!("got", 9)));
        // deterministic per seed
        let t2 = run_dedalus(&p, &edb, &opts).unwrap();
        assert_eq!(trace.ticks.len(), t2.ticks.len());
    }

    #[test]
    fn non_stratifiable_deductive_rules_rejected() {
        let p = DedalusProgram::new(vec![
            DRule::new(atom!("p"; @"X"), DTime::Same)
                .when(atom!("s"; @"X"))
                .unless(atom!("q"; @"X")),
            DRule::new(atom!("q"; @"X"), DTime::Same)
                .when(atom!("s"; @"X"))
                .unless(atom!("p"; @"X")),
        ])
        .unwrap();
        assert!(DedalusRuntime::new(&p).is_err());
    }

    #[test]
    fn negation_across_ticks_is_fine() {
        // "not yet seen" latch: fire(X)@next ← s(X), ¬done; done@next ← s(X)
        let p = DedalusProgram::new(vec![
            persist("done", 0),
            persist("fired", 1),
            DRule::new(atom!("fired"; @"X"), DTime::Next)
                .when(atom!("s"; @"X"))
                .unless(atom!("done")),
            DRule::new(atom!("done"), DTime::Next).when(atom!("s"; @"X")),
            persist("s", 1),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("s", 1));
        let trace = run_dedalus(&p, &edb, &DedalusOptions::default()).unwrap();
        assert!(trace.converged());
        assert!(trace.last().contains_fact(&fact!("fired", 1)));
    }

    #[test]
    fn delta_store_matches_cloning_store() {
        // A program exercising all three timing classes plus negation
        // and entanglement-free persistence.
        let p = DedalusProgram::new(vec![
            persist("e", 2),
            persist("got", 1),
            persist("done", 0),
            DRule::new(atom!("t"; @"X", @"Y"), DTime::Same).when(atom!("e"; @"X", @"Y")),
            DRule::new(atom!("t"; @"X", @"Z"), DTime::Same)
                .when(atom!("t"; @"X", @"Y"))
                .when(atom!("e"; @"Y", @"Z")),
            DRule::new(atom!("m"; @"X"), DTime::Async)
                .when(atom!("e"; @"X", @"Y"))
                .unless(atom!("done")),
            DRule::new(atom!("got"; @"X"), DTime::Same).when(atom!("m"; @"X")),
            DRule::new(atom!("done"), DTime::Next).when(atom!("e"; @"X", @"Y")),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("e", 1, 2));
        edb.insert(2, fact!("e", 2, 3));
        edb.insert(3, fact!("e", 3, 4));
        for seed in [0u64, 7, 42] {
            let opts = DedalusOptions {
                max_ticks: 80,
                async_max_delay: 3,
                seed,
                async_faults: None,
            };
            let rt = DedalusRuntime::new(&p).unwrap();
            let delta = rt.run_with(&edb, &opts, StoreMode::Delta).unwrap();
            let cloning = rt.run_with(&edb, &opts, StoreMode::Cloning).unwrap();
            assert_eq!(delta.converged_at, cloning.converged_at, "seed {seed}");
            assert_eq!(delta.ticks, cloning.ticks, "seed {seed}");
        }
    }

    #[test]
    fn delta_store_matches_cloning_with_entangled_time() {
        // Entangled time variables force per-tick program rebuilds even
        // in delta mode; the traces must still agree.
        let p = DedalusProgram::new(vec![
            persist("go", 0),
            persist("tick", 1),
            DRule::new(atom!("tick"; @"T"), DTime::Next)
                .when(atom!("go"))
                .with_time_var("T"),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("go"));
        let opts = DedalusOptions {
            max_ticks: 8,
            ..Default::default()
        };
        let rt = DedalusRuntime::new(&p).unwrap();
        let delta = rt.run_with(&edb, &opts, StoreMode::Delta).unwrap();
        let cloning = rt.run_with(&edb, &opts, StoreMode::Cloning).unwrap();
        assert_eq!(delta.ticks, cloning.ticks);
        assert_eq!(delta.converged_at, cloning.converged_at);
    }

    #[test]
    fn incremental_fixpoint_matches_scratch_across_modes() {
        // The same three-timing-class program as the store test: its
        // carry drops the `m` deliveries between ticks, so the
        // incremental path exercises genuine retractions.
        let p = DedalusProgram::new(vec![
            persist("e", 2),
            persist("got", 1),
            persist("done", 0),
            DRule::new(atom!("t"; @"X", @"Y"), DTime::Same).when(atom!("e"; @"X", @"Y")),
            DRule::new(atom!("t"; @"X", @"Z"), DTime::Same)
                .when(atom!("t"; @"X", @"Y"))
                .when(atom!("e"; @"Y", @"Z")),
            DRule::new(atom!("m"; @"X"), DTime::Async)
                .when(atom!("e"; @"X", @"Y"))
                .unless(atom!("done")),
            DRule::new(atom!("got"; @"X"), DTime::Same).when(atom!("m"; @"X")),
            DRule::new(atom!("done"), DTime::Next).when(atom!("e"; @"X", @"Y")),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("e", 1, 2));
        edb.insert(2, fact!("e", 2, 3));
        edb.insert(3, fact!("e", 3, 4));
        for seed in [0u64, 7, 42] {
            let opts = DedalusOptions {
                max_ticks: 80,
                async_max_delay: 3,
                seed,
                async_faults: None,
            };
            let rt = DedalusRuntime::new(&p).unwrap();
            let inc = rt
                .run_with_fixpoint(&edb, &opts, StoreMode::Delta, FixpointMode::Incremental)
                .unwrap();
            let scr = rt
                .run_with_fixpoint(&edb, &opts, StoreMode::Delta, FixpointMode::Scratch)
                .unwrap();
            let cloning = rt.run_with(&edb, &opts, StoreMode::Cloning).unwrap();
            assert_eq!(inc.converged_at, scr.converged_at, "seed {seed}");
            assert_eq!(inc.ticks, scr.ticks, "seed {seed}");
            assert_eq!(inc.converged_at, cloning.converged_at, "seed {seed}");
            assert_eq!(inc.ticks, cloning.ticks, "seed {seed}");
        }
    }

    #[test]
    fn incremental_with_retraction_heavy_carry_matches_scratch() {
        // A one-hot token walks a ring: each tick the carry drops the
        // old position and adds the next one — every tick retracts.
        let p = DedalusProgram::new(vec![
            persist("n", 2),
            DRule::new(atom!("at"; @"Y"), DTime::Next)
                .when(atom!("at"; @"X"))
                .when(atom!("n"; @"X", @"Y")),
            DRule::new(atom!("seen"; @"X"), DTime::Same).when(atom!("at"; @"X")),
            persist("seen", 1),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        for i in 0..5i64 {
            edb.insert(0, Fact::new("n", rtx_relational::tuple![i, (i + 1) % 5]));
        }
        edb.insert(0, fact!("at", 0));
        let opts = DedalusOptions {
            max_ticks: 20,
            ..Default::default()
        };
        let rt = DedalusRuntime::new(&p).unwrap();
        let inc = rt
            .run_with_fixpoint(&edb, &opts, StoreMode::Delta, FixpointMode::Incremental)
            .unwrap();
        let scr = rt
            .run_with_fixpoint(&edb, &opts, StoreMode::Delta, FixpointMode::Scratch)
            .unwrap();
        assert_eq!(inc.ticks, scr.ticks);
        assert_eq!(inc.converged_at, scr.converged_at);
        // every node got visited
        for i in 0..5i64 {
            assert!(inc
                .last()
                .contains_fact(&Fact::new("seen", rtx_relational::tuple![i])));
        }
    }

    #[test]
    fn incremental_with_entangled_deductive_rules_falls_back() {
        // A deductive rule that names the time variable cannot be
        // maintained (its translation changes every tick); Incremental
        // must silently take the per-tick scratch path and still agree.
        let p = DedalusProgram::new(vec![
            persist("go", 0),
            DRule::new(atom!("stamp"; @"T"), DTime::Same)
                .when(atom!("go"))
                .with_time_var("T"),
        ])
        .unwrap();
        let mut edb = TemporalFacts::new();
        edb.insert(0, fact!("go"));
        let opts = DedalusOptions {
            max_ticks: 6,
            ..Default::default()
        };
        let rt = DedalusRuntime::new(&p).unwrap();
        let inc = rt
            .run_with_fixpoint(&edb, &opts, StoreMode::Delta, FixpointMode::Incremental)
            .unwrap();
        let scr = rt
            .run_with_fixpoint(&edb, &opts, StoreMode::Delta, FixpointMode::Scratch)
            .unwrap();
        assert_eq!(inc.ticks, scr.ticks);
    }

    #[test]
    fn fixpoint_mode_parsing() {
        assert_eq!(FixpointMode::parse("scratch"), Some(FixpointMode::Scratch));
        assert_eq!(
            FixpointMode::parse(" Incremental "),
            Some(FixpointMode::Incremental)
        );
        assert_eq!(FixpointMode::parse("nope"), None);
        assert_eq!(FixpointMode::default(), FixpointMode::Incremental);
    }

    #[test]
    fn temporal_facts_helpers() {
        let sch = Schema::new().with("s", 1);
        let i = Instance::from_facts(sch, vec![fact!("s", 1), fact!("s", 2)]).unwrap();
        let zero = TemporalFacts::all_at_zero(&i);
        assert_eq!(zero.len(), 2);
        assert_eq!(zero.last_arrival(), Some(0));
        let scattered = TemporalFacts::scattered(&i, 5, 3);
        assert_eq!(scattered.len(), 2);
        assert!(scattered.last_arrival().unwrap() <= 5);
        assert!(!scattered.is_empty());
        assert!(TemporalFacts::new().is_empty());
    }
}

//! Focused law-level tests for the relational kernel: multiset
//! union/containment laws, isomorphism application round-trips, and
//! schema-mismatch error paths.

use rtx_relational::{
    fact, tuple, Fact, FactMultiset, Instance, Iso, RelError, Relation, Schema, Tuple, Value,
};

fn m(facts: &[(i64, usize)]) -> FactMultiset {
    let mut out = FactMultiset::new();
    for &(v, n) in facts {
        out.insert_n(fact!("M", v), n);
    }
    out
}

// ---------------------------------------------------------------- multiset

#[test]
fn multiset_union_adds_multiplicities_pointwise() {
    let mut a = m(&[(1, 2), (2, 1)]);
    let b = m(&[(1, 1), (3, 4)]);
    a.extend(b.iter_copies().cloned());
    assert_eq!(a.count(&fact!("M", 1)), 3);
    assert_eq!(a.count(&fact!("M", 2)), 1);
    assert_eq!(a.count(&fact!("M", 3)), 4);
    assert_eq!(a.len(), 8);
    assert_eq!(a.distinct_len(), 3);
}

#[test]
fn multiset_union_is_commutative() {
    let a = m(&[(1, 2), (2, 1)]);
    let b = m(&[(2, 3), (5, 1)]);
    let mut ab = a.clone();
    ab.extend(b.iter_copies().cloned());
    let mut ba = b.clone();
    ba.extend(a.iter_copies().cloned());
    assert_eq!(ab, ba);
}

#[test]
fn multiset_union_with_empty_is_identity() {
    let a = m(&[(1, 2), (9, 3)]);
    let mut au = a.clone();
    au.extend(FactMultiset::new().iter_copies().cloned());
    assert_eq!(au, a);
}

#[test]
fn multiset_containment_laws() {
    let a = m(&[(1, 2)]);
    // contains ⟺ count > 0, and removal of the last copy flips it
    assert!(a.contains(&fact!("M", 1)));
    assert!(!a.contains(&fact!("M", 2)));
    let mut b = a.clone();
    assert!(b.remove_one(&fact!("M", 1)));
    assert!(b.contains(&fact!("M", 1)));
    assert!(b.remove_one(&fact!("M", 1)));
    assert!(!b.contains(&fact!("M", 1)));
    // removing from the empty multiset reports absence
    assert!(!b.remove_one(&fact!("M", 1)));
    assert!(b.is_empty());
}

#[test]
fn multiset_insert_then_remove_round_trips() {
    let a = m(&[(1, 1), (2, 5), (3, 2)]);
    let mut b = a.clone();
    b.insert(fact!("M", 2));
    assert!(b.remove_one(&fact!("M", 2)));
    assert_eq!(a, b);
}

#[test]
fn multiset_from_iter_equals_repeated_insert() {
    let facts: Vec<Fact> = vec![fact!("M", 1), fact!("M", 1), fact!("M", 4)];
    let collected: FactMultiset = facts.clone().into_iter().collect();
    let mut manual = FactMultiset::new();
    for f in facts {
        manual.insert(f);
    }
    assert_eq!(collected, manual);
    assert_eq!(collected.len(), 3);
    assert_eq!(collected.distinct_len(), 2);
}

// --------------------------------------------------------------------- iso

fn edge_instance(pairs: &[(i64, i64)]) -> Instance {
    let mut i = Instance::empty(Schema::new().with("E", 2));
    for &(a, b) in pairs {
        i.insert_fact(fact!("E", a, b)).unwrap();
    }
    i
}

#[test]
fn iso_inverse_round_trips_on_instances() {
    let i = edge_instance(&[(1, 2), (2, 3), (3, 1)]);
    let h = Iso::from_pairs(vec![
        (Value::int(1), Value::int(2)),
        (Value::int(2), Value::int(3)),
        (Value::int(3), Value::int(1)),
    ])
    .unwrap();
    assert!(h.is_permutation_like());
    assert_eq!(h.inverse().apply_instance(&h.apply_instance(&i)), i);
    assert_eq!(h.apply_instance(&h.inverse().apply_instance(&i)), i);
}

#[test]
fn iso_application_preserves_cardinalities_when_injective() {
    let i = edge_instance(&[(1, 2), (2, 3), (1, 3)]);
    let h = Iso::from_pairs(vec![
        (Value::int(1), Value::int(10)),
        (Value::int(2), Value::int(20)),
        (Value::int(3), Value::int(30)),
    ])
    .unwrap();
    let j = h.apply_instance(&i);
    assert_eq!(j.fact_count(), i.fact_count());
    assert_eq!(j.adom().len(), i.adom().len());
    assert!(j.contains_fact(&fact!("E", 10, 20)));
}

#[test]
fn iso_composition_via_successive_application() {
    // h2 ∘ h1 applied stepwise equals the composed renaming 1→5→6.
    let i = edge_instance(&[(1, 1)]);
    let h1 = Iso::from_pairs(vec![(Value::int(1), Value::int(5))]).unwrap();
    let h2 = Iso::from_pairs(vec![(Value::int(5), Value::int(6))]).unwrap();
    let j = h2.apply_instance(&h1.apply_instance(&i));
    assert!(j.contains_fact(&fact!("E", 6, 6)));
    assert_eq!(j.fact_count(), 1);
}

#[test]
fn iso_relation_round_trip() {
    let r = Relation::from_tuples(2, vec![tuple![1, 2], tuple![2, 2]]).unwrap();
    let h = Iso::from_pairs(vec![
        (Value::int(1), Value::int(2)),
        (Value::int(2), Value::int(1)),
    ])
    .unwrap();
    let s = h.apply_relation(&r);
    assert!(s.contains(&tuple![2, 1]));
    assert!(s.contains(&tuple![1, 1]));
    assert_eq!(h.inverse().apply_relation(&s), r);
}

#[test]
fn iso_rejects_non_injective_pairs() {
    assert_eq!(
        Iso::from_pairs(vec![
            (Value::int(1), Value::int(9)),
            (Value::int(2), Value::int(9)),
        ]),
        Err(RelError::NotInjective)
    );
}

// --------------------------------------------------- schema error paths

#[test]
fn instance_rejects_unknown_relation() {
    let mut i = Instance::empty(Schema::new().with("R", 2));
    let err = i.insert_fact(fact!("Q", 1, 2)).unwrap_err();
    assert!(matches!(err, RelError::UnknownRelation { .. }));
}

#[test]
fn instance_rejects_arity_mismatch() {
    let mut i = Instance::empty(Schema::new().with("R", 2));
    let err = i.insert_fact(fact!("R", 1)).unwrap_err();
    assert_eq!(
        err,
        RelError::ArityMismatch {
            rel: "R".into(),
            expected: 2,
            found: 1
        }
    );
}

#[test]
fn from_facts_propagates_schema_errors() {
    let sch = Schema::new().with("R", 1);
    assert!(Instance::from_facts(sch.clone(), vec![fact!("R", 1, 2)]).is_err());
    assert!(Instance::from_facts(sch, vec![fact!("S", 1)]).is_err());
}

#[test]
fn set_relation_checks_name_and_arity() {
    let mut i = Instance::empty(Schema::new().with("R", 2));
    let wrong_arity = Relation::from_tuples(1, vec![tuple![1]]).unwrap();
    assert!(i.set_relation("R", wrong_arity).is_err());
    let unknown = Relation::from_tuples(2, vec![tuple![1, 2]]).unwrap();
    assert!(i.set_relation("Q", unknown).is_err());
    let ok = Relation::from_tuples(2, vec![tuple![1, 2]]).unwrap();
    assert!(i.set_relation("R", ok).is_ok());
    assert!(i.contains_fact(&fact!("R", 1, 2)));
}

#[test]
fn relation_ops_reject_mixed_arities() {
    let r1 = Relation::from_tuples(1, vec![tuple![1]]).unwrap();
    let r2 = Relation::from_tuples(2, vec![tuple![1, 2]]).unwrap();
    assert!(r1.union(&r2).is_err());
    assert!(r1.intersect(&r2).is_err());
    assert!(r1.difference(&r2).is_err());
    let mut r = Relation::empty(2);
    assert_eq!(
        r.insert(Tuple::new(vec![Value::int(1)])),
        Err(RelError::TupleArity {
            expected: 2,
            found: 1
        })
    );
}

#[test]
fn instance_union_requires_compatible_schemas() {
    let a = Instance::from_facts(Schema::new().with("R", 1), vec![fact!("R", 1)]).unwrap();
    let b = Instance::from_facts(Schema::new().with("R", 2), vec![fact!("R", 1, 2)]).unwrap();
    assert!(a.union(&b).is_err());
    let c = Instance::from_facts(Schema::new().with("R", 1), vec![fact!("R", 2)]).unwrap();
    let u = a.union(&c).unwrap();
    assert_eq!(u.fact_count(), 2);
    assert!(a.is_subinstance_of(&u) && c.is_subinstance_of(&u));
}

//! Database instances: assignments of finite relations to relation names,
//! equivalently sets of facts (paper, Section 2).

use crate::delta::InstanceDelta;
use crate::error::RelError;
use crate::fact::{Fact, RelName};
use crate::relation::{Relation, StorageMode};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An instance of a database schema.
///
/// Unlike a raw map of relations, an `Instance` is always paired with its
/// schema: looking up a declared-but-unpopulated relation yields the empty
/// relation of the right arity, and inserting an undeclared or ill-sized
/// fact is an error.
///
/// An instance remembers the [`StorageMode`] it was built in and uses it
/// for every relation it creates internally; the mode is an evaluation
/// detail and never takes part in equality.
#[derive(Clone)]
pub struct Instance {
    schema: Schema,
    relations: BTreeMap<RelName, Relation>,
    mode: StorageMode,
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.relations == other.relations
    }
}

impl Eq for Instance {}

impl Instance {
    /// The empty instance of a schema, in the process default storage
    /// mode.
    pub fn empty(schema: Schema) -> Self {
        Instance::empty_in(StorageMode::global(), schema)
    }

    /// The empty instance of a schema in an explicit storage mode.
    pub fn empty_in(mode: StorageMode, schema: Schema) -> Self {
        Instance {
            schema,
            relations: BTreeMap::new(),
            mode,
        }
    }

    /// Build an instance from facts, validating each against the schema.
    pub fn from_facts(
        schema: Schema,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Self, RelError> {
        Instance::from_facts_in(StorageMode::global(), schema, facts)
    }

    /// Build an instance from facts in an explicit storage mode.
    pub fn from_facts_in(
        mode: StorageMode,
        schema: Schema,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Self, RelError> {
        let mut i = Instance::empty_in(mode, schema);
        for f in facts {
            i.insert_fact(f)?;
        }
        Ok(i)
    }

    /// The storage mode this instance creates relations in.
    pub fn mode(&self) -> StorageMode {
        self.mode
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The relation assigned to `name`.
    ///
    /// Declared but unpopulated relations are empty; undeclared names are
    /// an error.
    pub fn relation(&self, name: &RelName) -> Result<Relation, RelError> {
        match self.relations.get(name) {
            Some(r) => Ok(r.clone()),
            None => match self.schema.arity(name) {
                Some(a) => Ok(Relation::empty_in(self.mode, a)),
                None => Err(RelError::UnknownRelation { rel: name.clone() }),
            },
        }
    }

    /// Borrowing lookup: `None` when the relation is unpopulated or
    /// undeclared (use [`Instance::relation`] for the validating form).
    pub fn relation_ref(&self, name: &RelName) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Insert a fact.
    pub fn insert_fact(&mut self, fact: Fact) -> Result<bool, RelError> {
        self.schema.check_fact(&fact)?;
        let (rel, tuple) = fact.into_parts();
        let arity = tuple.arity();
        let mode = self.mode;
        self.relations
            .entry(rel)
            .or_insert_with(|| Relation::empty_in(mode, arity))
            .insert(tuple)
    }

    /// Insert a whole relation under `name`, replacing the previous value.
    pub fn set_relation(
        &mut self,
        name: impl Into<RelName>,
        rel: Relation,
    ) -> Result<(), RelError> {
        let name = name.into();
        match self.schema.arity(&name) {
            None => return Err(RelError::UnknownRelation { rel: name }),
            Some(a) if a != rel.arity() => {
                return Err(RelError::ArityMismatch {
                    rel: name,
                    expected: a,
                    found: rel.arity(),
                })
            }
            Some(_) => {}
        }
        if rel.is_empty() {
            self.relations.remove(&name);
        } else {
            // Keep the instance storage-homogeneous: query outputs
            // arrive as plain columnar runs whatever the instance
            // mode; re-house them. Under the adaptive engine this is
            // the bulk-rebuild point where a shrunken relation
            // re-enters the small regime.
            self.relations.insert(name, rel.into_mode(self.mode));
        }
        Ok(())
    }

    /// Snapshot the storage counters of every populated relation, in
    /// name order — promotion/fold/probe observability for the
    /// adaptive engine (see [`crate::runs::StorageStats`]). Printed by
    /// `exp_examples` under `RTX_STORAGE_STATS=1`.
    pub fn storage_stats(&self) -> Vec<(RelName, crate::runs::StorageStats)> {
        self.relations
            .iter()
            .map(|(name, rel)| (name.clone(), rel.storage_stats()))
            .collect()
    }

    /// Union a sorted run of tuples into the relation `name` in place
    /// (columnar relations merge runs, btree relations insert row by
    /// row). Returns the number of facts actually added.
    pub fn absorb_run(
        &mut self,
        name: &RelName,
        run: &crate::runs::Run,
    ) -> Result<usize, RelError> {
        match self.schema.arity(name) {
            None => return Err(RelError::UnknownRelation { rel: name.clone() }),
            Some(a) if a != run.arity() => {
                return Err(RelError::ArityMismatch {
                    rel: name.clone(),
                    expected: a,
                    found: run.arity(),
                })
            }
            Some(_) => {}
        }
        if run.is_empty() {
            return Ok(0);
        }
        let mode = self.mode;
        self.relations
            .entry(name.clone())
            .or_insert_with(|| Relation::empty_in(mode, run.arity()))
            .absorb_run(run)
    }

    /// Remove a fact; `true` if present.
    pub fn remove_fact(&mut self, fact: &Fact) -> bool {
        if let Some(r) = self.relations.get_mut(fact.rel()) {
            let removed = r.remove(fact.tuple());
            if r.is_empty() {
                self.relations.remove(fact.rel());
            }
            removed
        } else {
            false
        }
    }

    /// Does the instance contain this fact?
    pub fn contains_fact(&self, fact: &Fact) -> bool {
        self.relations
            .get(fact.rel())
            .map(|r| r.contains(fact.tuple()))
            .unwrap_or(false)
    }

    /// Iterate over all facts, relation by relation, in order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations
            .iter()
            .flat_map(|(name, rel)| rel.iter().map(move |t| Fact::new(name.clone(), t.clone())))
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Is the instance empty (no facts)?
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(Relation::is_empty)
    }

    /// The active domain: all data elements occurring in the instance.
    pub fn adom(&self) -> BTreeSet<Value> {
        self.relations.values().flat_map(|r| r.adom()).collect()
    }

    /// Union of two instances (schemas merged compatibly). The paper forms
    /// `I' = I ∪ I_rcv` where state and message schemas are disjoint, and
    /// horizontal partitions overlap freely, so shared relations union
    /// their tuples.
    pub fn union(&self, other: &Instance) -> Result<Instance, RelError> {
        let schema = self.schema.union_compatible(&other.schema)?;
        let mut out = Instance::empty_in(self.mode, schema);
        for f in self.facts().chain(other.facts()) {
            out.insert_fact(f)?;
        }
        Ok(out)
    }

    /// Is `self ⊆ other` as sets of facts (schemas may differ)?
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.facts().all(|f| other.contains_fact(&f))
    }

    /// Restrict to the relations of `target`, which must be a subset of
    /// this instance's schema (used e.g. to split a transducer state into
    /// its input / memory parts).
    pub fn restrict(&self, target: &Schema) -> Result<Instance, RelError> {
        let mut out = Instance::empty_in(self.mode, target.clone());
        for (name, arity) in target.iter() {
            match self.schema.arity(name) {
                None => return Err(RelError::UnknownRelation { rel: name.clone() }),
                Some(a) if a != arity => {
                    return Err(RelError::ArityMismatch {
                        rel: name.clone(),
                        expected: arity,
                        found: a,
                    })
                }
                Some(_) => {}
            }
            if let Some(r) = self.relations.get(name) {
                out.set_relation(name.clone(), r.clone())?;
            }
        }
        Ok(out)
    }

    /// Re-house the same facts under a wider schema (every relation of the
    /// current schema must appear in `wider` with the same arity).
    pub fn widen(&self, wider: Schema) -> Result<Instance, RelError> {
        for (name, arity) in self.schema.iter() {
            match wider.arity(name) {
                Some(a) if a == arity => {}
                Some(a) => {
                    return Err(RelError::ArityMismatch {
                        rel: name.clone(),
                        expected: a,
                        found: arity,
                    })
                }
                None => return Err(RelError::UnknownRelation { rel: name.clone() }),
            }
        }
        let mut out = Instance::empty_in(self.mode, wider);
        out.relations = self.relations.clone();
        Ok(out)
    }

    /// The delta turning `from` into `self`, as facts to add and remove.
    ///
    /// Fact-based, so the instances' schemas may differ; applying the
    /// delta only succeeds where the target's schema declares every
    /// added relation.
    pub fn diff(&self, from: &Instance) -> InstanceDelta {
        let mut added = Vec::new();
        let mut removed = Vec::new();
        // Walk both sorted relation maps in lockstep.
        let mut ours = self.relations.iter().peekable();
        let mut theirs = from.relations.iter().peekable();
        loop {
            match (ours.peek(), theirs.peek()) {
                (None, None) => break,
                (Some((name, rel)), None) => {
                    added.extend(rel.iter().map(|t| Fact::new((*name).clone(), t.clone())));
                    ours.next();
                }
                (None, Some((name, rel))) => {
                    removed.extend(rel.iter().map(|t| Fact::new((*name).clone(), t.clone())));
                    theirs.next();
                }
                (Some((a, ra)), Some((b, rb))) => match a.cmp(b) {
                    std::cmp::Ordering::Less => {
                        added.extend(ra.iter().map(|t| Fact::new((*a).clone(), t.clone())));
                        ours.next();
                    }
                    std::cmp::Ordering::Greater => {
                        removed.extend(rb.iter().map(|t| Fact::new((*b).clone(), t.clone())));
                        theirs.next();
                    }
                    std::cmp::Ordering::Equal => {
                        if ra != rb {
                            match ra.diff(rb) {
                                Ok(d) => {
                                    let (add, rem) = d.into_parts();
                                    added.extend(
                                        add.into_iter().map(|t| Fact::new((*a).clone(), t)),
                                    );
                                    removed.extend(
                                        rem.into_iter().map(|t| Fact::new((*a).clone(), t)),
                                    );
                                }
                                Err(_) => {
                                    // Same name at different arities across the
                                    // two schemas: no tuple can coincide.
                                    added.extend(
                                        ra.iter().map(|t| Fact::new((*a).clone(), t.clone())),
                                    );
                                    removed.extend(
                                        rb.iter().map(|t| Fact::new((*a).clone(), t.clone())),
                                    );
                                }
                            }
                        }
                        ours.next();
                        theirs.next();
                    }
                },
            }
        }
        InstanceDelta::new(added, removed)
    }

    /// Apply a delta in place: remove `delta.removed()`, insert
    /// `delta.added()`. Inverse of [`Instance::diff`]:
    /// `from.apply_delta(&to.diff(&from))` makes `from`'s facts equal
    /// `to`'s.
    pub fn apply_delta(&mut self, delta: &InstanceDelta) -> Result<(), RelError> {
        for f in delta.removed() {
            self.remove_fact(f);
        }
        for f in delta.added() {
            self.insert_fact(f.clone())?;
        }
        Ok(())
    }

    /// The isomorphic instance `h(I)` for a mapping `h` on values.
    ///
    /// Genericity of queries (paper, Section 2) is stated via permutations
    /// of **dom**; callers wanting a genuine isomorphism should pass an
    /// injective map (see [`crate::iso::Iso`]).
    pub fn map_values(&self, mut h: impl FnMut(&Value) -> Value) -> Instance {
        let mut out = Instance::empty_in(self.mode, self.schema.clone());
        for (name, rel) in &self.relations {
            let mapped = rel.map_values(&mut h);
            out.relations.insert(name.clone(), mapped);
        }
        out
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for fact in self.facts() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fact, tuple};

    fn schema_rs() -> Schema {
        Schema::new().with("R", 2).with("S", 1)
    }

    #[test]
    fn empty_instance_has_empty_declared_relations() {
        let i = Instance::empty(schema_rs());
        let r = i.relation(&"R".into()).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.arity(), 2);
        assert!(i.relation(&"T".into()).is_err());
    }

    #[test]
    fn insert_and_query_facts() {
        let mut i = Instance::empty(schema_rs());
        assert!(i.insert_fact(fact!("R", 1, 2)).unwrap());
        assert!(!i.insert_fact(fact!("R", 1, 2)).unwrap());
        assert!(i.contains_fact(&fact!("R", 1, 2)));
        assert!(!i.contains_fact(&fact!("S", 1)));
        assert_eq!(i.fact_count(), 1);
    }

    #[test]
    fn schema_violations_rejected() {
        let mut i = Instance::empty(schema_rs());
        assert!(i.insert_fact(fact!("T", 1)).is_err());
        assert!(i.insert_fact(fact!("R", 1)).is_err());
    }

    #[test]
    fn facts_iteration_deterministic() {
        let i = Instance::from_facts(
            schema_rs(),
            vec![fact!("S", 9), fact!("R", 1, 2), fact!("R", 0, 0)],
        )
        .unwrap();
        let fs: Vec<_> = i.facts().collect();
        assert_eq!(fs, vec![fact!("R", 0, 0), fact!("R", 1, 2), fact!("S", 9)]);
    }

    #[test]
    fn adom_spans_all_relations() {
        let i = Instance::from_facts(schema_rs(), vec![fact!("R", 1, 2), fact!("S", "a")]).unwrap();
        let d = i.adom();
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Value::sym("a")));
    }

    #[test]
    fn union_merges_facts() {
        let a = Instance::from_facts(schema_rs(), vec![fact!("R", 1, 2)]).unwrap();
        let b = Instance::from_facts(schema_rs(), vec![fact!("S", 3), fact!("R", 1, 2)]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.fact_count(), 2);
    }

    #[test]
    fn union_merges_disjoint_schemas() {
        let a = Instance::from_facts(Schema::new().with("R", 1), vec![fact!("R", 1)]).unwrap();
        let b = Instance::from_facts(Schema::new().with("M", 1), vec![fact!("M", 2)]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.fact_count(), 2);
        assert!(u.schema().contains(&"R".into()));
        assert!(u.schema().contains(&"M".into()));
    }

    #[test]
    fn subinstance_is_fact_containment() {
        let a = Instance::from_facts(schema_rs(), vec![fact!("R", 1, 2)]).unwrap();
        let b = Instance::from_facts(schema_rs(), vec![fact!("R", 1, 2), fact!("S", 1)]).unwrap();
        assert!(a.is_subinstance_of(&b));
        assert!(!b.is_subinstance_of(&a));
    }

    #[test]
    fn restrict_projects_schema() {
        let i = Instance::from_facts(schema_rs(), vec![fact!("R", 1, 2), fact!("S", 3)]).unwrap();
        let r = i.restrict(&Schema::new().with("S", 1)).unwrap();
        assert_eq!(r.fact_count(), 1);
        assert!(r.contains_fact(&fact!("S", 3)));
        assert!(r.relation(&"R".into()).is_err());
    }

    #[test]
    fn widen_keeps_facts_adds_names() {
        let i = Instance::from_facts(Schema::new().with("S", 1), vec![fact!("S", 3)]).unwrap();
        let w = i.widen(schema_rs()).unwrap();
        assert!(w.contains_fact(&fact!("S", 3)));
        assert!(w.relation(&"R".into()).unwrap().is_empty());
        // widening to a schema missing S fails
        assert!(i.widen(Schema::new().with("R", 2)).is_err());
    }

    #[test]
    fn map_values_applies_isomorphism() {
        let i = Instance::from_facts(schema_rs(), vec![fact!("R", 1, 2)]).unwrap();
        let j = i.map_values(|v| match v {
            Value::Int(k) => Value::int(k + 100),
            o => *o,
        });
        assert!(j.contains_fact(&fact!("R", 101, 102)));
        assert_eq!(j.fact_count(), 1);
    }

    #[test]
    fn set_relation_replaces_and_validates() {
        let mut i = Instance::empty(schema_rs());
        let r = Relation::from_tuples(1, vec![tuple![5]]).unwrap();
        i.set_relation("S", r).unwrap();
        assert!(i.contains_fact(&fact!("S", 5)));
        i.set_relation("S", Relation::empty(1)).unwrap();
        assert!(i.is_empty());
        assert!(i.set_relation("S", Relation::empty(4)).is_err());
        assert!(i.set_relation("Nope", Relation::empty(1)).is_err());
    }

    #[test]
    fn diff_apply_delta_roundtrip() {
        let from =
            Instance::from_facts(schema_rs(), vec![fact!("R", 1, 2), fact!("S", 1)]).unwrap();
        let to = Instance::from_facts(
            schema_rs(),
            vec![fact!("R", 1, 2), fact!("R", 3, 4), fact!("S", 2)],
        )
        .unwrap();
        let d = to.diff(&from);
        assert_eq!(d.added().len(), 2);
        assert_eq!(d.removed(), &[fact!("S", 1)]);
        let mut i = from.clone();
        i.apply_delta(&d).unwrap();
        assert_eq!(i, to);
        assert!(to.diff(&to).is_empty());
    }

    #[test]
    fn diff_covers_relations_only_on_one_side() {
        let a = Instance::from_facts(schema_rs(), vec![fact!("R", 1, 2)]).unwrap();
        let b = Instance::from_facts(schema_rs(), vec![fact!("S", 7)]).unwrap();
        let d = b.diff(&a);
        assert_eq!(d.added(), &[fact!("S", 7)]);
        assert_eq!(d.removed(), &[fact!("R", 1, 2)]);
        let mut i = a.clone();
        i.apply_delta(&d).unwrap();
        assert_eq!(i, b);
    }

    #[test]
    fn apply_delta_rejects_undeclared_additions() {
        let narrow = Schema::new().with("R", 2);
        let mut i = Instance::empty(narrow);
        let full = Instance::from_facts(schema_rs(), vec![fact!("S", 1)]).unwrap();
        let d = full.diff(&Instance::empty(schema_rs()));
        assert!(i.apply_delta(&d).is_err());
    }

    #[test]
    fn remove_fact_cleans_up() {
        let mut i = Instance::from_facts(schema_rs(), vec![fact!("S", 1)]).unwrap();
        assert!(i.remove_fact(&fact!("S", 1)));
        assert!(!i.remove_fact(&fact!("S", 1)));
        assert!(i.is_empty());
    }
}

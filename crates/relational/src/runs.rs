//! Columnar sorted runs — the storage layer beneath columnar
//! [`Relation`](crate::Relation)s.
//!
//! A [`Run`] is an immutable, sorted, duplicate-free batch of tuples
//! stored column-major as flat `Vec<Vid>`s (one per column). Sortedness
//! is in the *structural* value order ([`Vid::cmp_structural`]), i.e.
//! exactly the order a `BTreeSet<Tuple>` iterates in — so every
//! deterministic-iteration guarantee of the BTree representation
//! carries over verbatim.
//!
//! Set operations (union, intersection, difference, delta application,
//! diffing) are merge walks over two runs that compare packed `u32`
//! ids, bulk-copy exhausted tails column-wise, and *gallop*
//! (exponential-probe binary search) across long stretches where one
//! side is far ahead — never touching a `Tuple` allocation except for
//! rows that actually change.
//!
//! Row access for callers that need `&Tuple`s (iteration, index probe
//! results) goes through a per-run lazily materialized row cache; it is
//! built at most once per run and shared by every clone of the owning
//! relation. Secondary indexes are *views* into a run — a sorted
//! permutation, or for key-prefix columns no structure at all — held on
//! a lock-free append-only chain so the hot read path takes no lock
//! (see [`Run::view`]).

use crate::fact::Tuple;
use crate::index::Index;
use crate::intern::Vid;
use std::cmp::Ordering;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrd};
use std::sync::{Arc, OnceLock};

/// The immutable payload of a run: sorted columns plus the lazy row
/// cache. Split from [`Run`] so index views can hold an `Arc` to the
/// data without creating a reference cycle through the view chain.
pub(crate) struct RunData {
    len: usize,
    cols: Vec<Vec<Vid>>,
    rows: OnceLock<Vec<Tuple>>,
    /// Packed row keys (see [`RunData::packed`]), built on first merge.
    packed: OnceLock<Option<Vec<u64>>>,
}

impl RunData {
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn arity(&self) -> usize {
        self.cols.len()
    }

    #[inline]
    pub(crate) fn vid(&self, col: usize, row: usize) -> Vid {
        self.cols[col][row]
    }

    /// Structural comparison of row `i` of `self` against row `j` of
    /// `other` (same arity), column by column.
    #[inline]
    fn row_cmp(&self, i: usize, other: &RunData, j: usize) -> Ordering {
        for c in 0..self.cols.len() {
            match self.cols[c][i].cmp_structural(other.cols[c][j]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Structural comparison of row `i` against a tuple of the same
    /// arity.
    #[inline]
    fn row_cmp_tuple(&self, i: usize, t: &Tuple) -> Ordering {
        let vals = t.values();
        for (col, v) in self.cols.iter().zip(vals) {
            match col[i].cmp_value(v) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Materialize row `i` as a [`Tuple`].
    fn row_tuple(&self, i: usize) -> Tuple {
        (0..self.cols.len())
            .map(|c| self.cols[c][i].value())
            .collect()
    }

    /// The materialized rows, built once per run.
    pub(crate) fn rows(&self) -> &[Tuple] {
        self.rows
            .get_or_init(|| (0..self.len).map(|i| self.row_tuple(i)).collect())
    }

    /// The contiguous row range whose first `key.len()` columns equal
    /// `key` — the *prefix* probe: since rows are sorted
    /// lexicographically, equal prefixes are adjacent, and each column
    /// refines the range of the previous one by binary search.
    pub(crate) fn prefix_range(&self, key: &[Vid]) -> Range<usize> {
        let mut lo = 0usize;
        let mut hi = self.len;
        for (c, &k) in key.iter().enumerate() {
            let col = &self.cols[c][lo..hi];
            let a = col.partition_point(|&v| v.cmp_structural(k) == Ordering::Less);
            let b = col[a..].partition_point(|&v| v.cmp_structural(k) == Ordering::Equal) + a;
            hi = lo + b;
            lo += a;
            if lo == hi {
                break;
            }
        }
        lo..hi
    }

    /// Membership test by full-arity prefix probe.
    pub(crate) fn contains_tuple(&self, t: &Tuple) -> bool {
        let mut lo = 0usize;
        let mut hi = self.len;
        for (c, v) in t.values().iter().enumerate() {
            let k = Vid::from_value(v);
            let col = &self.cols[c][lo..hi];
            let a = col.partition_point(|&x| x.cmp_structural(k) == Ordering::Less);
            let b = col[a..].partition_point(|&x| x.cmp_structural(k) == Ordering::Equal) + a;
            hi = lo + b;
            lo += a;
            if lo == hi {
                return false;
            }
        }
        lo < hi
    }

    /// First row index `>= start` whose row compares `>=` row `j` of
    /// `other`: exponential probe then binary search, the "gallop" that
    /// lets a merge skip long stretches of the larger side in
    /// logarithmic time.
    fn gallop_from(&self, start: usize, other: &RunData, j: usize) -> usize {
        let mut step = 1usize;
        let mut lo = start;
        // Invariant: every row < lo is < other[j].
        while lo < self.len && self.row_cmp(lo, other, j) == Ordering::Less {
            let next = lo + step;
            step = step.saturating_mul(2);
            if next >= self.len || self.row_cmp(next, other, j) != Ordering::Less {
                // binary search in (lo, min(next, len))
                let mut hi = next.min(self.len);
                lo += 1;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.row_cmp(mid, other, j) == Ordering::Less {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                return lo;
            }
            lo = next;
        }
        lo
    }
}

impl RunData {
    /// One `u64` per row whose natural order equals the structural row
    /// order — available for runs of arity 1 or 2 whose ids are all
    /// raw-ordered (inline integers). Merges and sorts over these flat
    /// keys skip the per-column indirection of [`RunData::row_cmp`],
    /// which dominates merge cost on the fixpoint hot path. Built at
    /// most once per run; `None` (also cached) when ineligible.
    fn packed(&self) -> Option<&[u64]> {
        self.packed
            .get_or_init(|| {
                let eligible = matches!(self.cols.len(), 1 | 2)
                    && self.cols.iter().flatten().all(|v| v.raw_ordered());
                if !eligible {
                    return None;
                }
                Some(match &self.cols[..] {
                    [c0] => c0.iter().map(|v| u64::from(v.raw())).collect(),
                    [c0, c1] => c0
                        .iter()
                        .zip(c1)
                        .map(|(a, b)| u64::from(a.raw()) << 32 | u64::from(b.raw()))
                        .collect(),
                    _ => unreachable!("arity checked above"),
                })
            })
            .as_deref()
    }
}

/// First index `>= lo` in sorted `keys` whose key is `>= target`:
/// exponential probe then binary search.
#[inline]
fn gallop_keys(keys: &[u64], lo: usize, target: u64) -> usize {
    if lo >= keys.len() || keys[lo] >= target {
        return lo;
    }
    let mut step = 1usize;
    let mut base = lo;
    while base + step < keys.len() && keys[base + step] < target {
        base += step;
        step <<= 1;
    }
    let hi = (base + step).min(keys.len());
    base + 1 + keys[base + 1..hi].partition_point(|&k| k < target)
}

/// Merge of two sorted duplicate-free key slices.
fn union_keys(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                let e = gallop_keys(a, i + 1, b[j]);
                out.extend_from_slice(&a[i..e]);
                i = e;
            }
            Ordering::Greater => {
                let e = gallop_keys(b, j + 1, a[i]);
                out.extend_from_slice(&b[j..e]);
                j = e;
            }
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `a ∖ b` over sorted duplicate-free key slices.
fn difference_keys(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                let e = gallop_keys(a, i + 1, b[j]);
                out.extend_from_slice(&a[i..e]);
                i = e;
            }
            Ordering::Greater => j = gallop_keys(b, j + 1, a[i]),
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// `a ∩ b` over sorted duplicate-free key slices.
fn intersect_keys(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i = gallop_keys(a, i + 1, b[j]),
            Ordering::Greater => j = gallop_keys(b, j + 1, a[i]),
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// When the remaining portion of one side of a merge is this many times
/// longer than a single step would cover, gallop instead of stepping.
const GALLOP_AFTER: usize = 8;

/// Column builder for merge outputs.
struct RunBuilder {
    cols: Vec<Vec<Vid>>,
    len: usize,
}

impl RunBuilder {
    fn new(arity: usize) -> Self {
        RunBuilder {
            cols: vec![Vec::new(); arity],
            len: 0,
        }
    }

    fn with_capacity(arity: usize, cap: usize) -> Self {
        RunBuilder {
            cols: vec![Vec::with_capacity(cap); arity],
            len: 0,
        }
    }

    #[inline]
    fn push_row(&mut self, src: &RunData, i: usize) {
        for c in 0..self.cols.len() {
            self.cols[c].push(src.cols[c][i]);
        }
        self.len += 1;
    }

    /// Bulk column-wise copy of `src` rows `range` — a memcpy per
    /// column, the payoff of the flat layout.
    fn push_range(&mut self, src: &RunData, range: Range<usize>) {
        for c in 0..self.cols.len() {
            self.cols[c].extend_from_slice(&src.cols[c][range.clone()]);
        }
        self.len += range.len();
    }

    #[inline]
    fn push_tuple(&mut self, t: &Tuple) {
        for (c, v) in t.values().iter().enumerate() {
            self.cols[c].push(Vid::from_value(v));
        }
        self.len += 1;
    }

    fn finish(self) -> Run {
        Run::from_parts(self.len, self.cols)
    }
}

/// A lock-free cache of index views over one run, keyed by column
/// subset: an append-only singly linked list whose links are
/// `OnceLock`s, so lookups never take a lock and insertion races
/// resolve by first-writer-wins (the loser's view is dropped).
struct ViewChain {
    head: OnceLock<Box<ViewNode>>,
}

struct ViewNode {
    cols: Box<[usize]>,
    view: Arc<Index>,
    next: OnceLock<Box<ViewNode>>,
}

impl ViewChain {
    const fn new() -> Self {
        ViewChain {
            head: OnceLock::new(),
        }
    }

    fn get_or_insert(&self, cols: &[usize], build: impl FnOnce() -> Arc<Index>) -> Arc<Index> {
        let mut slot = &self.head;
        let mut build = Some(build);
        let mut pending: Option<Box<ViewNode>> = None;
        loop {
            match slot.get() {
                Some(node) => {
                    if &*node.cols == cols {
                        return Arc::clone(&node.view);
                    }
                    slot = &node.next;
                }
                None => {
                    let node = match pending.take() {
                        Some(n) => n,
                        None => Box::new(ViewNode {
                            cols: cols.into(),
                            view: (build.take().expect("view built at most once"))(),
                            next: OnceLock::new(),
                        }),
                    };
                    match slot.set(node) {
                        Ok(()) => {
                            return Arc::clone(&slot.get().expect("just set").view);
                        }
                        // Lost the race: another thread appended here
                        // first — keep our node and re-examine theirs.
                        Err(n) => pending = Some(n),
                    }
                }
            }
        }
    }
}

/// An immutable sorted columnar batch of tuples plus its view cache.
///
/// Runs are shared by `Arc` between a relation and its clones; all
/// per-run caches (materialized rows, index views) are therefore built
/// at most once per *run generation* — a fresh merged run starts cold.
pub struct Run {
    data: Arc<RunData>,
    views: ViewChain,
}

impl Clone for Run {
    /// Clones share the immutable column data; cached index views are
    /// per-value (each clone rebuilds the views it actually probes).
    fn clone(&self) -> Run {
        Run {
            data: Arc::clone(&self.data),
            views: ViewChain::new(),
        }
    }
}

impl Run {
    fn from_parts(len: usize, cols: Vec<Vec<Vid>>) -> Run {
        Run {
            data: Arc::new(RunData {
                len,
                cols,
                rows: OnceLock::new(),
                packed: OnceLock::new(),
            }),
            views: ViewChain::new(),
        }
    }

    /// The empty run of the given arity.
    pub fn empty(arity: usize) -> Run {
        Run::from_parts(0, vec![Vec::new(); arity])
    }

    /// Rebuild columns from packed keys (arity 1 or 2), pre-seeding the
    /// packed cache so chained merges never repack.
    fn from_packed(arity: usize, keys: Vec<u64>) -> Run {
        let cols: Vec<Vec<Vid>> = match arity {
            1 => vec![keys.iter().map(|&k| Vid::from_raw(k as u32)).collect()],
            2 => vec![
                keys.iter()
                    .map(|&k| Vid::from_raw((k >> 32) as u32))
                    .collect(),
                keys.iter().map(|&k| Vid::from_raw(k as u32)).collect(),
            ],
            _ => unreachable!("packed keys exist only for arity 1 and 2"),
        };
        let run = Run::from_parts(keys.len(), cols);
        run.data
            .packed
            .set(Some(keys))
            .unwrap_or_else(|_| unreachable!("fresh run data"));
        run
    }

    /// Both sides' packed keys, when eligible and of equal arity.
    fn packed_pair<'a>(&'a self, other: &'a Run) -> Option<(&'a [u64], &'a [u64])> {
        if self.arity() != other.arity() {
            return None;
        }
        Some((self.data.packed()?, other.data.packed()?))
    }

    /// Build from tuples already in strictly increasing order (sorted,
    /// duplicate-free), e.g. out of a `BTreeSet<Tuple>`.
    pub fn from_sorted<'a>(arity: usize, tuples: impl Iterator<Item = &'a Tuple>) -> Run {
        let mut b = RunBuilder::new(arity);
        for t in tuples {
            debug_assert_eq!(t.arity(), arity);
            b.push_tuple(t);
        }
        b.finish()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len
    }

    /// Is the run empty?
    pub fn is_empty(&self) -> bool {
        self.data.len == 0
    }

    /// Arity (number of columns).
    pub fn arity(&self) -> usize {
        self.data.arity()
    }

    /// The materialized rows, in sorted order (built lazily, once).
    pub fn rows(&self) -> &[Tuple] {
        self.data.rows()
    }

    /// One column of the run as a flat slice of interned ids, in row
    /// order — the raw material for columnar join executors.
    pub fn col(&self, c: usize) -> &[Vid] {
        &self.data.cols[c]
    }

    /// The contiguous row range whose first `key.len()` columns equal
    /// `key` (rows are sorted lexicographically, so equal prefixes are
    /// adjacent). `key` may be shorter than the arity.
    pub fn prefix_range(&self, key: &[Vid]) -> Range<usize> {
        self.data.prefix_range(key)
    }

    /// Membership test on an interned full-arity key (no allocation).
    pub fn contains_vids(&self, key: &[Vid]) -> bool {
        debug_assert_eq!(key.len(), self.arity());
        !self.data.prefix_range(key).is_empty()
    }

    /// Build a run from unsorted, possibly-duplicated columns (all of
    /// length `rows`): sorts a row permutation structurally, drops
    /// duplicate rows, and gathers the columns — how columnar join
    /// outputs become relations without ever materializing tuples.
    pub fn from_cols(rows: usize, cols: Vec<Vec<Vid>>) -> Run {
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        if cols.is_empty() {
            // Nullary: any row at all is the single empty tuple.
            return Run::from_parts(usize::from(rows > 0), Vec::new());
        }
        // Arity-≤2 inline-integer rows sort as flat packed keys — no
        // permutation array, no per-comparison column indirection.
        if matches!(cols.len(), 1 | 2) && cols.iter().flatten().all(|v| v.raw_ordered()) {
            let mut keys: Vec<u64> = match &cols[..] {
                [c0] => c0.iter().map(|v| u64::from(v.raw())).collect(),
                [c0, c1] => c0
                    .iter()
                    .zip(c1)
                    .map(|(a, b)| u64::from(a.raw()) << 32 | u64::from(b.raw()))
                    .collect(),
                _ => unreachable!("arity checked above"),
            };
            if keys.windows(2).all(|w| w[0] < w[1]) {
                let run = Run::from_parts(rows, cols);
                run.data
                    .packed
                    .set(Some(keys))
                    .unwrap_or_else(|_| unreachable!("fresh run data"));
                return run;
            }
            keys.sort_unstable();
            keys.dedup();
            return Run::from_packed(cols.len(), keys);
        }
        let row_cmp = |a: u32, b: u32| -> Ordering {
            for col in &cols {
                match col[a as usize].cmp_structural(col[b as usize]) {
                    Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            Ordering::Equal
        };
        // Derived rows are frequently already in order (e.g. a head
        // projection that keeps the leading join columns): take the
        // columns as they are instead of permuting a copy.
        if (1..rows as u32).all(|r| row_cmp(r - 1, r) == Ordering::Less) {
            return Run::from_parts(rows, cols);
        }
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        perm.sort_unstable_by(|&a, &b| row_cmp(a, b));
        perm.dedup_by(|a, b| row_cmp(*a, *b) == Ordering::Equal);
        let out: Vec<Vec<Vid>> = cols
            .iter()
            .map(|col| perm.iter().map(|&r| col[r as usize]).collect())
            .collect();
        Run::from_parts(perm.len(), out)
    }

    /// Membership test (binary search per column, no allocation).
    pub fn contains(&self, t: &Tuple) -> bool {
        t.arity() == self.arity() && self.data.contains_tuple(t)
    }

    /// The cached index view on `cols`, built on first request.
    ///
    /// When `cols` is a prefix `[0, 1, …, k-1]` the sorted run *is* the
    /// index and the view carries no side structure; otherwise the view
    /// is a permutation of row indices sorted by the key columns (ties
    /// broken by row index, so probe results keep scan order).
    pub fn view(&self, cols: &[usize]) -> Arc<Index> {
        self.views.get_or_insert(cols, || {
            if cols.iter().enumerate().all(|(i, &c)| i == c) {
                Arc::new(Index::view_prefix(cols, Arc::clone(&self.data)))
            } else {
                let data = &self.data;
                let mut perm: Vec<u32> = (0..data.len as u32).collect();
                perm.sort_unstable_by(|&a, &b| {
                    for &c in cols {
                        match data.cols[c][a as usize].cmp_structural(data.cols[c][b as usize]) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    a.cmp(&b) // stable within key groups → scan order
                });
                Arc::new(Index::view_perm(
                    cols,
                    Arc::clone(&self.data),
                    perm.into_boxed_slice(),
                ))
            }
        })
    }

    /// `self ∪ other` (same arity).
    pub fn union(&self, other: &Run) -> Run {
        if let Some((ka, kb)) = self.packed_pair(other) {
            return Run::from_packed(self.arity(), union_keys(ka, kb));
        }
        let (a, b) = (&*self.data, &*other.data);
        let mut out = RunBuilder::with_capacity(a.arity(), a.len.max(b.len));
        let (mut i, mut j) = (0, 0);
        while i < a.len && j < b.len {
            match a.row_cmp(i, b, j) {
                Ordering::Less => {
                    // Copy everything in `a` below b[j] in one sweep.
                    let end = if a.len - i > GALLOP_AFTER {
                        a.gallop_from(i + 1, b, j)
                    } else {
                        i + 1
                    };
                    out.push_range(a, i..end);
                    i = end;
                }
                Ordering::Greater => {
                    let end = if b.len - j > GALLOP_AFTER {
                        b.gallop_from(j + 1, a, i)
                    } else {
                        j + 1
                    };
                    out.push_range(b, j..end);
                    j = end;
                }
                Ordering::Equal => {
                    out.push_row(a, i);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.push_range(a, i..a.len);
        out.push_range(b, j..b.len);
        out.finish()
    }

    /// `self ∩ other` (same arity).
    pub fn intersect(&self, other: &Run) -> Run {
        if let Some((ka, kb)) = self.packed_pair(other) {
            return Run::from_packed(self.arity(), intersect_keys(ka, kb));
        }
        let (a, b) = (&*self.data, &*other.data);
        let mut out = RunBuilder::new(a.arity());
        let (mut i, mut j) = (0, 0);
        while i < a.len && j < b.len {
            match a.row_cmp(i, b, j) {
                Ordering::Less => {
                    i = if a.len - i > GALLOP_AFTER {
                        a.gallop_from(i + 1, b, j)
                    } else {
                        i + 1
                    };
                }
                Ordering::Greater => {
                    j = if b.len - j > GALLOP_AFTER {
                        b.gallop_from(j + 1, a, i)
                    } else {
                        j + 1
                    };
                }
                Ordering::Equal => {
                    out.push_row(a, i);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.finish()
    }

    /// `self ∖ other` (same arity).
    pub fn difference(&self, other: &Run) -> Run {
        if let Some((ka, kb)) = self.packed_pair(other) {
            return Run::from_packed(self.arity(), difference_keys(ka, kb));
        }
        let (a, b) = (&*self.data, &*other.data);
        let mut out = RunBuilder::new(a.arity());
        let (mut i, mut j) = (0, 0);
        while i < a.len && j < b.len {
            match a.row_cmp(i, b, j) {
                Ordering::Less => {
                    let end = if a.len - i > GALLOP_AFTER {
                        a.gallop_from(i + 1, b, j)
                    } else {
                        i + 1
                    };
                    out.push_range(a, i..end);
                    i = end;
                }
                Ordering::Greater => {
                    j = if b.len - j > GALLOP_AFTER {
                        b.gallop_from(j + 1, a, i)
                    } else {
                        j + 1
                    };
                }
                Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.push_range(a, i..a.len);
        out.finish()
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &Run) -> bool {
        let (a, b) = (&*self.data, &*other.data);
        if a.len > b.len {
            return false;
        }
        let mut j = 0;
        for i in 0..a.len {
            j = if b.len - j > GALLOP_AFTER {
                b.gallop_from(j, a, i)
            } else {
                let mut k = j;
                while k < b.len && b.row_cmp(k, a, i) == Ordering::Less {
                    k += 1;
                }
                k
            };
            if j >= b.len || b.row_cmp(j, a, i) != Ordering::Equal {
                return false;
            }
            j += 1;
        }
        true
    }

    /// The symmetric difference as tuple lists `(added, removed)` where
    /// `added = self ∖ from` and `removed = from ∖ self` — only rows
    /// that actually differ are materialized as tuples.
    pub fn diff(&self, from: &Run) -> (Vec<Tuple>, Vec<Tuple>) {
        let (a, b) = (&*self.data, &*from.data);
        let (mut added, mut removed) = (Vec::new(), Vec::new());
        let (mut i, mut j) = (0, 0);
        while i < a.len && j < b.len {
            match a.row_cmp(i, b, j) {
                Ordering::Less => {
                    added.push(a.row_tuple(i));
                    i += 1;
                }
                Ordering::Greater => {
                    removed.push(b.row_tuple(j));
                    j += 1;
                }
                Ordering::Equal => {
                    // Equal stretches are the common case when diffing
                    // consecutive versions: gallop past them pairwise.
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < a.len {
            added.push(a.row_tuple(i));
            i += 1;
        }
        while j < b.len {
            removed.push(b.row_tuple(j));
            j += 1;
        }
        (added, removed)
    }

    /// `(self ∖ del) ∪ add` in a single three-way merge walk — how
    /// relation tails and [`crate::RelationDelta`]s fold into a new
    /// base run. `add` and `del` must be strictly sorted and disjoint
    /// (as every delta in this crate is, by normalization); `add` rows
    /// already present survive (set semantics), `del` rows not present
    /// are ignored.
    pub fn apply_sorted(&self, add: &[Tuple], del: &[Tuple]) -> Run {
        let a = &*self.data;
        let mut out =
            RunBuilder::with_capacity(a.arity(), a.len.saturating_sub(del.len()) + add.len());
        let (mut i, mut ai, mut di) = (0usize, 0usize, 0usize);
        while i < a.len {
            // Emit pending adds strictly below the current base row.
            while ai < add.len() {
                match a.row_cmp_tuple(i, &add[ai]).reverse() {
                    Ordering::Less => {
                        out.push_tuple(&add[ai]);
                        ai += 1;
                    }
                    Ordering::Equal => {
                        ai += 1; // already present in base
                    }
                    Ordering::Greater => break,
                }
            }
            // Deleted?
            let mut dead = false;
            while di < del.len() {
                match a.row_cmp_tuple(i, &del[di]) {
                    Ordering::Greater => di += 1, // del row absent from base
                    Ordering::Equal => {
                        dead = true;
                        di += 1;
                        break;
                    }
                    Ordering::Less => break,
                }
            }
            if !dead {
                out.push_row(a, i);
            }
            i += 1;
        }
        for t in &add[ai..] {
            out.push_tuple(t);
        }
        out.finish()
    }
}

impl std::fmt::Debug for Run {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Run({} rows, arity {})", self.len(), self.arity())
    }
}

/// Point-in-time storage-engine counters for one relation.
///
/// Snapshots come from
/// [`Relation::storage_stats`](crate::Relation::storage_stats) and are
/// listed per instance by
/// [`Instance::storage_stats`](crate::Instance::storage_stats). The
/// counters ride along with the relation through clones, promotions,
/// and demotions; they are evaluation artifacts and never take part in
/// equality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Small-regime → sorted-run promotions in this relation's lineage.
    pub promotions: u64,
    /// Sorted-run folds: columnar tail merges, plus order-demanded
    /// sorts of the small-regime log.
    pub folds: u64,
    /// Linear probe operations over the small-regime log (one per
    /// insert / remove / membership call, not per comparison).
    pub small_probes: u64,
    /// High-water mark of the mutable tail: the small-regime log
    /// length, or the columnar add+delete tail length.
    pub tail_hwm: u64,
}

impl StorageStats {
    /// Fold another snapshot into this one (counters sum; the
    /// high-water mark takes the max) — for whole-instance rollups.
    pub fn absorb(&mut self, other: &StorageStats) {
        self.promotions += other.promotions;
        self.folds += other.folds;
        self.small_probes += other.small_probes;
        self.tail_hwm = self.tail_hwm.max(other.tail_hwm);
    }

    /// Is every counter zero?
    pub fn is_zero(&self) -> bool {
        *self == StorageStats::default()
    }

    /// Publish this snapshot into the global [`rtx_obs`] registry:
    /// `storage.folds` / `storage.small_probes` counters and the
    /// `storage.tail_hwm` histogram. Promotions and demotions are
    /// *not* published here — they are counted live at the transition
    /// sites (`storage.promotions` / `storage.demotions`), so calling
    /// this on an end-of-run rollup cannot double count them. Call
    /// once per rollup snapshot, not per access.
    pub fn publish(&self) {
        rtx_obs::registry::add("storage.folds", self.folds);
        rtx_obs::registry::add("storage.small_probes", self.small_probes);
        if self.tail_hwm > 0 {
            rtx_obs::registry::record("storage.tail_hwm", self.tail_hwm);
        }
    }
}

/// Interior-mutable cells behind [`StorageStats`]: folds and probes
/// happen on shared read paths (`&self`), so the counters are relaxed
/// atomics. Cloning copies the current values.
#[derive(Default)]
pub(crate) struct StatCells {
    promotions: AtomicU64,
    folds: AtomicU64,
    small_probes: AtomicU64,
    tail_hwm: AtomicU64,
}

impl StatCells {
    pub(crate) fn snapshot(&self) -> StorageStats {
        StorageStats {
            promotions: self.promotions.load(AtomicOrd::Relaxed),
            folds: self.folds.load(AtomicOrd::Relaxed),
            small_probes: self.small_probes.load(AtomicOrd::Relaxed),
            tail_hwm: self.tail_hwm.load(AtomicOrd::Relaxed),
        }
    }

    pub(crate) fn note_promotion(&self) {
        self.promotions.fetch_add(1, AtomicOrd::Relaxed);
    }

    pub(crate) fn note_fold(&self) {
        self.folds.fetch_add(1, AtomicOrd::Relaxed);
    }

    pub(crate) fn note_probe(&self) {
        self.small_probes.fetch_add(1, AtomicOrd::Relaxed);
    }

    pub(crate) fn note_tail_len(&self, len: usize) {
        self.tail_hwm.fetch_max(len as u64, AtomicOrd::Relaxed);
    }
}

impl Clone for StatCells {
    fn clone(&self) -> StatCells {
        let s = self.snapshot();
        StatCells {
            promotions: AtomicU64::new(s.promotions),
            folds: AtomicU64::new(s.folds),
            small_probes: AtomicU64::new(s.small_probes),
            tail_hwm: AtomicU64::new(s.tail_hwm),
        }
    }
}

/// The adaptive engine's *small regime*: a flat **unsorted** append
/// log of tuples with tombstones — no base run, no sort, no fold cost
/// on mutation. Insert, remove, and membership are linear probes over
/// the log, which at the few-hundred-tuple scale the round executors
/// live at beats any tree or merge bookkeeping.
///
/// A sorted [`Run`] over the live tuples is built only when a consumer
/// actually needs one (a sorted scan, a galloping merge, delta
/// normalization, an index probe) and is cached until the next
/// mutation, so repeated reads of an unchanged relation sort once.
/// The **order-demanded** signal is tracked separately from the cache:
/// only genuinely ordered reads ([`SmallTail::sorted_run`]) set it,
/// while index builds ([`SmallTail::cached_run`]) fill the cache
/// without it — [`Relation`](crate::Relation) promotes a small
/// relation to columnar runs when it mutates with the signal set and
/// its size is above the hysteresis floor, and a relation probed by
/// point lookups alone must never migrate — see
/// `StorageMode::Adaptive`.
///
/// The log holds at most one entry per tuple value: a re-insert of a
/// tombstoned tuple revives its entry in place, and the log compacts
/// (drops tombstones) whenever it grows past `2 × live + 32`, keeping
/// probe cost proportional to the live size.
pub struct SmallTail {
    arity: usize,
    /// `(tuple, alive)` — append order, at most one entry per tuple.
    log: Vec<(Tuple, bool)>,
    /// Number of alive entries.
    live: usize,
    /// Sorted view of the live tuples. Every mutation clears it.
    sorted: OnceLock<Arc<Run>>,
    /// Was order demanded (not just an index build) since the last
    /// mutation? Atomic because demands happen through `&self`.
    ordered: AtomicBool,
    stats: StatCells,
}

// `sorted` is a cache of a pure function of the log and `ordered` is a
// promotion hint; both are carried verbatim — a clone starts with the
// same caches and the same pending policy signal.
impl Clone for SmallTail {
    fn clone(&self) -> SmallTail {
        let sorted = OnceLock::new();
        if let Some(run) = self.sorted.get() {
            let _ = sorted.set(Arc::clone(run));
        }
        SmallTail {
            arity: self.arity,
            log: self.log.clone(),
            live: self.live,
            sorted,
            ordered: AtomicBool::new(self.ordered.load(AtomicOrd::Relaxed)),
            stats: self.stats.clone(),
        }
    }
}

impl SmallTail {
    /// An empty small tail of the given arity.
    pub fn new(arity: usize) -> SmallTail {
        SmallTail {
            arity,
            log: Vec::new(),
            live: 0,
            sorted: OnceLock::new(),
            ordered: AtomicBool::new(false),
            stats: StatCells::default(),
        }
    }

    /// Build from sorted, duplicate-free tuples (e.g. run rows).
    pub fn from_sorted(arity: usize, tuples: Vec<Tuple>) -> SmallTail {
        SmallTail::with_stats(arity, tuples, StatCells::default())
    }

    /// Build from an existing sorted run, carrying counters across a
    /// demotion. The run is kept as the pre-built sorted cache, so the
    /// representation change costs no re-sort and the run's cached row
    /// materialization and index views survive — a per-tick bulk
    /// rebuild that demotes would otherwise pay a sort plus a view
    /// rebuild on the very next ordered read.
    pub(crate) fn from_run(run: Arc<Run>, stats: StatCells) -> SmallTail {
        let live = run.len();
        stats.note_tail_len(live);
        let log = run.rows().iter().cloned().map(|t| (t, true)).collect();
        let arity = run.arity();
        let sorted = OnceLock::new();
        let _ = sorted.set(run);
        SmallTail {
            arity,
            log,
            live,
            sorted,
            // The pre-built cache is a gift, not a demand: the relation
            // just demoted, so no promotion pressure carries over.
            ordered: AtomicBool::new(false),
            stats,
        }
    }

    /// Build from sorted tuples, carrying counters across a demotion.
    pub(crate) fn with_stats(arity: usize, tuples: Vec<Tuple>, stats: StatCells) -> SmallTail {
        let live = tuples.len();
        stats.note_tail_len(live);
        SmallTail {
            arity,
            log: tuples.into_iter().map(|t| (t, true)).collect(),
            live,
            sorted: OnceLock::new(),
            ordered: AtomicBool::new(false),
            stats,
        }
    }

    /// Arity of every tuple in the tail.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the tail empty (no live tuples)?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Membership probe — one linear scan of the log.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.stats.note_probe();
        self.log.iter().any(|(u, alive)| *alive && u == t)
    }

    /// Insert; `true` if newly inserted (or revived from a tombstone).
    pub fn insert(&mut self, t: Tuple) -> bool {
        debug_assert_eq!(t.arity(), self.arity);
        self.sorted.take();
        *self.ordered.get_mut() = false;
        self.stats.note_probe();
        for (u, alive) in self.log.iter_mut() {
            if *u == t {
                if *alive {
                    return false;
                }
                *alive = true;
                self.live += 1;
                return true;
            }
        }
        self.log.push((t, true));
        self.live += 1;
        self.stats.note_tail_len(self.log.len());
        true
    }

    /// Remove; `true` if the tuple was live. Tombstones the entry and
    /// compacts the log when tombstones dominate.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.sorted.take();
        *self.ordered.get_mut() = false;
        self.stats.note_probe();
        for (u, alive) in self.log.iter_mut() {
            if *alive && u == t {
                *alive = false;
                self.live -= 1;
                if self.log.len() >= 2 * self.live + 32 {
                    self.log.retain(|(_, alive)| *alive);
                }
                return true;
            }
        }
        false
    }

    /// The live tuples in log (insertion) order — for probe-based
    /// consumers that do **not** need sorted output.
    pub fn live_tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.log.iter().filter(|(_, alive)| *alive).map(|(t, _)| t)
    }

    /// Has a consumer demanded order (not just an index) since the
    /// last mutation?
    pub fn order_demanded(&self) -> bool {
        self.ordered.load(AtomicOrd::Relaxed)
    }

    /// The sorted run over the live tuples, built on demand and cached
    /// until the next mutation. Calling this **is** the order-demand
    /// signal (see [`SmallTail::order_demanded`]).
    pub fn sorted_run(&self) -> &Arc<Run> {
        self.ordered.store(true, AtomicOrd::Relaxed);
        self.cached_run()
    }

    /// The sorted run **without** registering an order demand — the
    /// memoization path for index probes, which are point lookups and
    /// must not push a small relation toward promotion however often
    /// they repeat. The run (and the index views hanging off it) is
    /// cached until the next mutation, so repeated probes of an
    /// unchanged relation sort once.
    pub(crate) fn cached_run(&self) -> &Arc<Run> {
        if self.sorted.get().is_none() {
            self.stats.note_fold();
        }
        self.sorted.get_or_init(|| {
            let mut live: Vec<&Tuple> = self.live_tuples().collect();
            live.sort_unstable();
            Arc::new(Run::from_sorted(self.arity, live.into_iter()))
        })
    }

    pub(crate) fn stats_cells(&self) -> &StatCells {
        &self.stats
    }
}

impl std::fmt::Debug for SmallTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SmallTail({} live of {} logged, arity {})",
            self.live,
            self.log.len(),
            self.arity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Value};
    use std::collections::BTreeSet;

    fn run_of(ts: &[Tuple]) -> Run {
        let set: BTreeSet<Tuple> = ts.iter().cloned().collect();
        let arity = ts.first().map(|t| t.arity()).unwrap_or(0);
        Run::from_sorted(arity, set.iter())
    }

    #[test]
    fn from_sorted_roundtrips_rows() {
        let ts = [tuple![2, "b"], tuple![1, "a"], tuple![2, "a"]];
        let r = run_of(&ts);
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows(), &[tuple![1, "a"], tuple![2, "a"], tuple![2, "b"]]);
        assert!(r.contains(&tuple![2, "a"]));
        assert!(!r.contains(&tuple![3, "a"]));
    }

    #[test]
    fn set_ops_match_btree_semantics() {
        let a = run_of(&[tuple![1], tuple![2], tuple![3], tuple![5]]);
        let b = run_of(&[tuple![2], tuple![4], tuple![5]]);
        assert_eq!(
            a.union(&b).rows(),
            &[tuple![1], tuple![2], tuple![3], tuple![4], tuple![5]]
        );
        assert_eq!(a.intersect(&b).rows(), &[tuple![2], tuple![5]]);
        assert_eq!(a.difference(&b).rows(), &[tuple![1], tuple![3]]);
        assert!(run_of(&[tuple![2], tuple![5]]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn galloping_merges_handle_skew() {
        // One side far larger than the other exercises the gallop path.
        let big: Vec<Tuple> = (0..1000).map(|i| tuple![i]).collect();
        let small = [tuple![-1], tuple![500], tuple![2000]];
        let a = run_of(&big);
        let b = run_of(&small);
        let u = a.union(&b);
        assert_eq!(u.len(), 1002);
        let d = a.difference(&b);
        assert_eq!(d.len(), 999);
        assert!(!d.contains(&tuple![500]));
        let i = a.intersect(&b);
        assert_eq!(i.rows(), &[tuple![500]]);
        assert!(b.is_subset(&u));
    }

    #[test]
    fn diff_reports_only_changes() {
        let a = run_of(&[tuple![1], tuple![2], tuple![4]]);
        let b = run_of(&[tuple![1], tuple![3], tuple![4]]);
        let (added, removed) = a.diff(&b);
        assert_eq!(added, vec![tuple![2]]);
        assert_eq!(removed, vec![tuple![3]]);
    }

    #[test]
    fn apply_sorted_merges_adds_and_dels() {
        let base = run_of(&[tuple![1], tuple![3], tuple![5]]);
        let out = base.apply_sorted(
            &[tuple![0], tuple![3], tuple![4], tuple![9]],
            &[tuple![2], tuple![5]],
        );
        assert_eq!(
            out.rows(),
            &[tuple![0], tuple![1], tuple![3], tuple![4], tuple![9]]
        );
    }

    #[test]
    fn prefix_range_refines_per_column() {
        let r = run_of(&[
            tuple![1, 1],
            tuple![1, 2],
            tuple![2, 1],
            tuple![2, 2],
            tuple![2, 3],
            tuple![3, 1],
        ]);
        let k = |i: i64| Vid::from_value(&Value::int(i));
        assert_eq!(r.data.prefix_range(&[k(2)]), 2..5);
        assert_eq!(r.data.prefix_range(&[k(2), k(3)]), 4..5);
        assert_eq!(r.data.prefix_range(&[k(9)]), 6..6);
        assert_eq!(r.data.prefix_range(&[]), 0..6);
    }

    #[test]
    fn view_cache_returns_same_arc() {
        let r = run_of(&[tuple![1, 2], tuple![2, 1]]);
        let a = r.view(&[1]);
        let b = r.view(&[1]);
        assert!(Arc::ptr_eq(&a, &b));
        let c = r.view(&[0]);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn nullary_runs() {
        let t = run_of(&[Tuple::empty()]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.arity(), 0);
        assert!(t.contains(&Tuple::empty()));
        let e = Run::empty(0);
        assert!(e.is_empty());
        assert_eq!(t.difference(&t).len(), 0);
        assert_eq!(t.union(&e).len(), 1);
    }
}

//! Tuples and facts.
//!
//! A *fact* is an expression `R(a1, …, ak)` with `ai ∈ dom` and `R` a
//! relation name of arity `k` (paper, Section 2). Instances are sets of
//! facts; message buffers are multisets of facts.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An interned relation name.
///
/// Relation names occur in every fact and every schema lookup, so they are
/// interned (`Arc<str>`) to keep clones cheap and comparisons fast.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelName(Arc<str>);

impl RelName {
    /// Intern a relation name.
    pub fn new(name: impl AsRef<str>) -> Self {
        RelName(Arc::from(name.as_ref()))
    }

    /// The textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for RelName {
    fn from(s: &str) -> Self {
        RelName::new(s)
    }
}

impl From<String> for RelName {
    fn from(s: String) -> Self {
        RelName::new(s)
    }
}

impl AsRef<str> for RelName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A tuple of atomic data elements.
///
/// Immutable once built; stored as a boxed slice so a `Tuple` is two words
/// and relations holding millions of tuples stay compact.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(Arc::from(values.into()))
    }

    /// The empty (nullary) tuple — used to encode boolean results, as in
    /// the paper ("the value 'true' (encoded by the empty tuple)").
    pub fn empty() -> Self {
        Tuple(Arc::from(Vec::new()))
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Component access.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Components as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterate over components.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// A new tuple with `f` applied to every component (used for
    /// isomorphisms `h(I)`).
    pub fn map(&self, mut f: impl FnMut(&Value) -> Value) -> Tuple {
        Tuple(self.0.iter().map(&mut f).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// Project onto the given positions. Panics if an index is out of
    /// bounds — projections are built against a validated schema.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i]).collect())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Convenience: build a tuple from displayable literals.
///
/// ```
/// use rtx_relational::{tuple, Value};
/// let t = tuple![1, "a"];
/// assert_eq!(t.values(), &[Value::int(1), Value::sym("a")]);
/// ```
#[macro_export]
macro_rules! tuple {
    ($($x:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($x)),*])
    };
}

/// A fact `R(a1, …, ak)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    rel: RelName,
    tuple: Tuple,
}

impl Fact {
    /// Build a fact.
    pub fn new(rel: impl Into<RelName>, tuple: impl Into<Tuple>) -> Self {
        Fact {
            rel: rel.into(),
            tuple: tuple.into(),
        }
    }

    /// The relation name.
    pub fn rel(&self) -> &RelName {
        &self.rel
    }

    /// The tuple.
    pub fn tuple(&self) -> &Tuple {
        &self.tuple
    }

    /// Arity of the fact (length of its tuple).
    pub fn arity(&self) -> usize {
        self.tuple.arity()
    }

    /// Decompose into parts.
    pub fn into_parts(self) -> (RelName, Tuple) {
        (self.rel, self.tuple)
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.rel, self.tuple)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convenience: build a fact `fact!("R", 1, "a")`.
#[macro_export]
macro_rules! fact {
    ($rel:expr $(, $x:expr)* $(,)?) => {
        $crate::Fact::new($rel, $crate::Tuple::new(vec![$($crate::Value::from($x)),*]))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relname_interning_and_display() {
        let r = RelName::new("Edge");
        assert_eq!(r.as_str(), "Edge");
        assert_eq!(format!("{r}"), "Edge");
        assert_eq!(RelName::from("Edge"), r);
    }

    #[test]
    fn tuple_basics() {
        let t = tuple![1, 2, "x"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::int(1)));
        assert_eq!(t.get(3), None);
        assert_eq!(format!("{t}"), "(1,2,x)");
    }

    #[test]
    fn empty_tuple_is_nullary() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(format!("{t}"), "()");
    }

    #[test]
    fn tuple_map_applies_componentwise() {
        let t = tuple![1, 2];
        let u = t.map(|v| match v {
            Value::Int(i) => Value::int(i + 10),
            other => *other,
        });
        assert_eq!(u, tuple![11, 12]);
    }

    #[test]
    fn tuple_concat_and_project() {
        let t = tuple![1, 2].concat(&tuple!["a"]);
        assert_eq!(t, tuple![1, 2, "a"]);
        assert_eq!(t.project(&[2, 0]), tuple!["a", 1]);
    }

    #[test]
    fn fact_construction_and_parts() {
        let f = fact!("R", 1, "a");
        assert_eq!(f.rel().as_str(), "R");
        assert_eq!(f.arity(), 2);
        assert_eq!(format!("{f}"), "R(1,a)");
        let (r, t) = f.into_parts();
        assert_eq!(r.as_str(), "R");
        assert_eq!(t, tuple![1, "a"]);
    }

    #[test]
    fn facts_order_by_relation_then_tuple() {
        let mut v = vec![fact!("S", 1), fact!("R", 2), fact!("R", 1)];
        v.sort();
        assert_eq!(v, vec![fact!("R", 1), fact!("R", 2), fact!("S", 1)]);
    }
}

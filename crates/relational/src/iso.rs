//! Isomorphisms (injective renamings) of **dom**.
//!
//! A query `Q` is *generic* when `Q(h(I)) = h(Q(I))` for every permutation
//! `h` of **dom** (paper, Section 2, condition (ii)). Since instances are
//! finite, it suffices to specify `h` on finitely many values and require
//! injectivity; values outside the map are fixed.

use crate::error::RelError;
use crate::instance::Instance;
use crate::relation::Relation;
use crate::value::Value;
use std::collections::BTreeMap;

/// A finitely-supported injective renaming of **dom**, identity elsewhere.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Iso {
    map: BTreeMap<Value, Value>,
}

impl Iso {
    /// The identity isomorphism.
    pub fn identity() -> Self {
        Iso::default()
    }

    /// Build from `(from, to)` pairs; errors when the pairs are not
    /// injective or remap the same source twice inconsistently.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Value, Value)>) -> Result<Self, RelError> {
        let mut map = BTreeMap::new();
        let mut seen_targets = BTreeMap::new();
        for (from, to) in pairs {
            if let Some(prev) = map.get(&from) {
                if prev != &to {
                    return Err(RelError::NotInjective);
                }
                continue;
            }
            if let Some(prev_src) = seen_targets.get(&to) {
                if prev_src != &from {
                    return Err(RelError::NotInjective);
                }
            }
            seen_targets.insert(to, from);
            map.insert(from, to);
        }
        Ok(Iso { map })
    }

    /// Apply to a single value.
    pub fn apply(&self, v: &Value) -> Value {
        self.map.get(v).cloned().unwrap_or(*v)
    }

    /// Apply to an instance: the isomorphic instance `h(I)`.
    pub fn apply_instance(&self, i: &Instance) -> Instance {
        i.map_values(|v| self.apply(v))
    }

    /// Apply to a relation: `h(R)`.
    pub fn apply_relation(&self, r: &Relation) -> Relation {
        r.map_values(|v| self.apply(v))
    }

    /// The inverse renaming (support swapped).
    pub fn inverse(&self) -> Iso {
        Iso {
            map: self.map.iter().map(|(a, b)| (*b, *a)).collect(),
        }
    }

    /// Number of explicitly-moved values.
    pub fn support_len(&self) -> usize {
        self.map.len()
    }

    /// Is this renaming injective *as a function on all of dom*?
    ///
    /// `from_pairs` guarantees pairwise-distinct targets, but a target that
    /// is a non-source value collides with that value's identity image
    /// (e.g. `{a→b}` with `b` not in the support maps both `a` and `b` to
    /// `b`). Permutation-like isos avoid this by having support = image.
    pub fn is_permutation_like(&self) -> bool {
        self.map
            .values()
            .all(|target| self.map.contains_key(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::{fact, tuple};

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    #[test]
    fn identity_fixes_everything() {
        let h = Iso::identity();
        assert_eq!(h.apply(&v(5)), v(5));
        assert_eq!(h.support_len(), 0);
        assert!(h.is_permutation_like());
    }

    #[test]
    fn swap_is_a_permutation() {
        let h = Iso::from_pairs(vec![(v(1), v(2)), (v(2), v(1))]).unwrap();
        assert_eq!(h.apply(&v(1)), v(2));
        assert_eq!(h.apply(&v(2)), v(1));
        assert_eq!(h.apply(&v(3)), v(3));
        assert!(h.is_permutation_like());
        assert_eq!(h.inverse(), h);
    }

    #[test]
    fn non_injective_rejected() {
        assert!(Iso::from_pairs(vec![(v(1), v(3)), (v(2), v(3))]).is_err());
        assert!(Iso::from_pairs(vec![(v(1), v(2)), (v(1), v(3))]).is_err());
        // duplicate consistent pair is fine
        assert!(Iso::from_pairs(vec![(v(1), v(2)), (v(1), v(2))]).is_ok());
    }

    #[test]
    fn rename_into_fresh_values_is_not_permutation_like() {
        let h = Iso::from_pairs(vec![(v(1), v(100))]).unwrap();
        assert!(!h.is_permutation_like());
    }

    #[test]
    fn apply_instance_renames_facts() {
        let sch = Schema::new().with("R", 2);
        let i = Instance::from_facts(sch, vec![fact!("R", 1, 2)]).unwrap();
        let h = Iso::from_pairs(vec![(v(1), v(2)), (v(2), v(1))]).unwrap();
        let j = h.apply_instance(&i);
        assert!(j.contains_fact(&fact!("R", 2, 1)));
        assert_eq!(j.fact_count(), 1);
    }

    #[test]
    fn inverse_round_trips() {
        let h = Iso::from_pairs(vec![(v(1), v(7)), (v(2), v(8))]).unwrap();
        let sch = Schema::new().with("R", 1);
        let i = Instance::from_facts(sch, vec![fact!("R", 1), fact!("R", 2)]).unwrap();
        let back = h.inverse().apply_instance(&h.apply_instance(&i));
        assert_eq!(back, i);
    }

    #[test]
    fn apply_relation_maps_tuples() {
        let r = Relation::from_tuples(1, vec![tuple![1]]).unwrap();
        let h = Iso::from_pairs(vec![(v(1), v(9))]).unwrap();
        assert!(h.apply_relation(&r).contains(&tuple![9]));
    }
}

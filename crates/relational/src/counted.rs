//! Relations with per-tuple derivation counts.
//!
//! Incremental Datalog maintenance (counting-based DRed) needs to know
//! not just *whether* a fact holds but *how many* derivations currently
//! support it: retracting one derivation of a doubly-supported fact must
//! leave the fact in place, while retracting the last one deletes it.
//! A [`CountedRelation`] is that bookkeeping structure — a finite map
//! from tuples to positive support counts, with ± delta application.

use crate::error::RelError;
use crate::fact::Tuple;
use crate::relation::Relation;
use std::collections::BTreeMap;
use std::fmt;

/// A `k`-ary relation where every tuple carries a positive support
/// count (number of derivations currently justifying it).
///
/// The *set* view of a counted relation is its key set: a tuple is
/// "present" iff its count is ≥ 1. Counts never go negative —
/// over-subtracting is reported as an error, since it means the
/// maintenance bookkeeping lost a derivation.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct CountedRelation {
    arity: usize,
    counts: BTreeMap<Tuple, u64>,
}

impl CountedRelation {
    /// The empty counted relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        CountedRelation {
            arity,
            counts: BTreeMap::new(),
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of distinct tuples with positive support.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Is the relation empty (no supported tuples)?
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The support count of a tuple (0 when absent).
    pub fn count(&self, t: &Tuple) -> u64 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Membership in the set view.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.counts.contains_key(t)
    }

    /// Add `k` derivations of `t`; `Ok(true)` when the tuple becomes
    /// newly present (count went 0 → positive). Adding 0 is a no-op.
    pub fn add(&mut self, t: Tuple, k: u64) -> Result<bool, RelError> {
        if t.arity() != self.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: t.arity(),
            });
        }
        if k == 0 {
            return Ok(false);
        }
        match self.counts.entry(t) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(k);
                Ok(true)
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                *e.get_mut() += k;
                Ok(false)
            }
        }
    }

    /// Retract `k` derivations of `t`; `Ok(true)` when the tuple
    /// vanishes (count hit exactly 0). Retracting from an absent tuple
    /// or below zero is an error — the caller's derivation accounting
    /// has drifted.
    pub fn sub(&mut self, t: &Tuple, k: u64) -> Result<bool, RelError> {
        if k == 0 {
            return Ok(false);
        }
        match self.counts.get_mut(t) {
            None => Err(RelError::NegativeSupport {
                have: 0,
                retract: k,
            }),
            Some(c) if *c < k => Err(RelError::NegativeSupport {
                have: *c,
                retract: k,
            }),
            Some(c) if *c == k => {
                self.counts.remove(t);
                Ok(true)
            }
            Some(c) => {
                *c -= k;
                Ok(false)
            }
        }
    }

    /// Apply a signed delta: positive `k` adds derivations, negative
    /// retracts them. Returns `true` when the tuple's *presence*
    /// changed (appeared or vanished).
    pub fn apply_signed(&mut self, t: &Tuple, k: i64) -> Result<bool, RelError> {
        match k.cmp(&0) {
            std::cmp::Ordering::Greater => self.add(t.clone(), k as u64),
            std::cmp::Ordering::Less => self.sub(t, k.unsigned_abs()),
            std::cmp::Ordering::Equal => Ok(false),
        }
    }

    /// Drop a tuple entirely, whatever its count; returns the dropped
    /// count (0 when absent). Used by DRed over-deletion, where a
    /// fact's support is recomputed from scratch at re-derivation.
    pub fn clear_tuple(&mut self, t: &Tuple) -> u64 {
        self.counts.remove(t).unwrap_or(0)
    }

    /// Iterate over `(tuple, count)` pairs in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// The set view as a plain [`Relation`].
    pub fn to_relation(&self) -> Relation {
        Relation::from_tuples(self.arity, self.counts.keys().cloned())
            .expect("all stored tuples have the stored arity")
    }
}

impl fmt::Debug for CountedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, c)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}×{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn add_and_sub_track_presence() {
        let mut r = CountedRelation::empty(1);
        assert!(r.add(tuple![1], 2).unwrap()); // newly present
        assert!(!r.add(tuple![1], 1).unwrap()); // just more support
        assert_eq!(r.count(&tuple![1]), 3);
        assert!(!r.sub(&tuple![1], 2).unwrap());
        assert!(r.sub(&tuple![1], 1).unwrap()); // vanished
        assert!(!r.contains(&tuple![1]));
        assert!(r.is_empty());
    }

    #[test]
    fn oversubtraction_is_an_error() {
        let mut r = CountedRelation::empty(1);
        r.add(tuple![1], 1).unwrap();
        assert!(matches!(
            r.sub(&tuple![1], 2),
            Err(RelError::NegativeSupport {
                have: 1,
                retract: 2
            })
        ));
        assert!(r.sub(&tuple![9], 1).is_err());
    }

    #[test]
    fn signed_application_and_zero_noop() {
        let mut r = CountedRelation::empty(2);
        assert!(!r.apply_signed(&tuple![1, 2], 0).unwrap());
        assert!(r.apply_signed(&tuple![1, 2], 2).unwrap());
        assert!(!r.apply_signed(&tuple![1, 2], -1).unwrap());
        assert!(r.apply_signed(&tuple![1, 2], -1).unwrap());
        assert!(!r.add(tuple![1, 2], 0).unwrap());
        assert!(!r.sub(&tuple![1, 2], 0).unwrap());
    }

    #[test]
    fn arity_enforced() {
        let mut r = CountedRelation::empty(2);
        assert!(r.add(tuple![1], 1).is_err());
    }

    #[test]
    fn clear_tuple_and_set_view() {
        let mut r = CountedRelation::empty(1);
        r.add(tuple![1], 5).unwrap();
        r.add(tuple![2], 1).unwrap();
        assert_eq!(r.clear_tuple(&tuple![1]), 5);
        assert_eq!(r.clear_tuple(&tuple![1]), 0);
        let s = r.to_relation();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&tuple![2]));
        assert_eq!(r.iter().count(), 1);
        assert_eq!(r.len(), 1);
    }
}

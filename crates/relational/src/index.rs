//! Secondary hash indexes over relations.
//!
//! An [`Index`] groups the tuples of a relation by their values on a
//! chosen column subset, so a join can probe exactly the tuples matching
//! the columns already bound instead of scanning the whole relation.
//! Indexes are immutable snapshots; [`crate::Relation`] builds them
//! lazily, caches them per column subset, and drops the cache on any
//! mutation, so holders of an `Arc<Index>` always see a consistent
//! picture of the relation at build time.

use crate::fact::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A hash index on a subset of a relation's columns.
///
/// Within each key group the tuples keep the relation's deterministic
/// (sorted) iteration order, so an index probe enumerates exactly the
/// subsequence of a full scan that matches on the key columns — callers
/// can switch between scanning and probing without changing results.
pub struct Index {
    cols: Box<[usize]>,
    groups: HashMap<Box<[Value]>, Vec<Tuple>>,
}

impl Index {
    /// Build an index on `cols` from tuples in relation iteration order.
    ///
    /// Callers must have validated that every column is below the
    /// relation arity; [`crate::Relation::index`] does.
    pub(crate) fn build<'a>(cols: &[usize], tuples: impl Iterator<Item = &'a Tuple>) -> Self {
        let cols: Box<[usize]> = cols.into();
        let mut groups: HashMap<Box<[Value]>, Vec<Tuple>> = HashMap::new();
        for t in tuples {
            let key: Box<[Value]> = cols.iter().map(|&c| t.values()[c].clone()).collect();
            groups.entry(key).or_default().push(t.clone());
        }
        Index { cols, groups }
    }

    /// The indexed column positions.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The tuples whose values on the indexed columns equal `key`, in the
    /// relation's deterministic order; empty when no tuple matches.
    pub fn probe(&self, key: &[Value]) -> &[Tuple] {
        self.groups.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.groups.len()
    }
}

impl fmt::Debug for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Index(cols={:?}, {} keys)", self.cols, self.groups.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn build_and_probe() {
        let tuples = [tuple![1, 2], tuple![1, 3], tuple![2, 3]];
        let idx = Index::build(&[0], tuples.iter());
        assert_eq!(idx.cols(), &[0]);
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.probe(&[Value::int(1)]).len(), 2);
        assert_eq!(idx.probe(&[Value::int(2)]), &[tuple![2, 3]]);
        assert!(idx.probe(&[Value::int(9)]).is_empty());
    }

    #[test]
    fn probe_preserves_scan_order() {
        let tuples = [tuple![1, 1], tuple![1, 2], tuple![1, 3]];
        let idx = Index::build(&[0], tuples.iter());
        assert_eq!(
            idx.probe(&[Value::int(1)]),
            &[tuple![1, 1], tuple![1, 2], tuple![1, 3]]
        );
    }

    #[test]
    fn multi_column_keys() {
        let tuples = [tuple![1, 2, 3], tuple![1, 2, 4], tuple![1, 9, 3]];
        let idx = Index::build(&[0, 1], tuples.iter());
        assert_eq!(idx.probe(&[Value::int(1), Value::int(2)]).len(), 2);
        assert_eq!(idx.probe(&[Value::int(1), Value::int(9)]).len(), 1);
    }
}

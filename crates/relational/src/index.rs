//! Secondary indexes over relations.
//!
//! An [`Index`] lets a join probe exactly the tuples matching the
//! columns already bound instead of scanning the whole relation.
//! Indexes are immutable snapshots; [`crate::Relation`] builds them
//! lazily and caches them (per column subset, per storage generation),
//! so holders of an `Arc<Index>` always see a consistent picture of the
//! relation at build time.
//!
//! Two physical forms exist behind the one probe API:
//!
//! * **hash** — the classic side table grouping tuples by key values,
//!   built for BTree-stored relations;
//! * **view** — for columnar relations, a view into the sorted run:
//!   when the key columns are a prefix of the column order the sorted
//!   run *is* the index (a probe is a per-column binary search yielding
//!   a contiguous row range, no side structure at all); otherwise the
//!   view is a row-index permutation sorted by the key columns.
//!
//! Either way a probe enumerates exactly the subsequence of a full scan
//! that matches on the key columns — callers can switch between
//! scanning and probing without changing results.

use crate::fact::Tuple;
use crate::intern::Vid;
use crate::runs::RunData;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

enum Kind {
    Hash(HashMap<Box<[Value]>, Vec<Tuple>>),
    Prefix(Arc<RunData>),
    Perm {
        data: Arc<RunData>,
        perm: Box<[u32]>,
    },
}

/// An index on a subset of a relation's columns.
///
/// Within each key group the tuples keep the relation's deterministic
/// (sorted) iteration order, whatever the physical form.
pub struct Index {
    cols: Box<[usize]>,
    kind: Kind,
}

impl Index {
    /// Build a hash index on `cols` from tuples in relation iteration
    /// order (the BTree storage path).
    ///
    /// Callers must have validated that every column is below the
    /// relation arity; [`crate::Relation::index`] does.
    pub(crate) fn build<'a>(cols: &[usize], tuples: impl Iterator<Item = &'a Tuple>) -> Self {
        let cols: Box<[usize]> = cols.into();
        let mut groups: HashMap<Box<[Value]>, Vec<Tuple>> = HashMap::new();
        for t in tuples {
            let key: Box<[Value]> = cols.iter().map(|&c| t.values()[c]).collect();
            groups.entry(key).or_default().push(t.clone());
        }
        Index {
            cols,
            kind: Kind::Hash(groups),
        }
    }

    /// A prefix view: `cols == [0, 1, …, k-1]`, the run's own sort
    /// order is the index.
    pub(crate) fn view_prefix(cols: &[usize], data: Arc<RunData>) -> Self {
        Index {
            cols: cols.into(),
            kind: Kind::Prefix(data),
        }
    }

    /// A permutation view: row indices sorted by the key columns (ties
    /// in scan order).
    pub(crate) fn view_perm(cols: &[usize], data: Arc<RunData>, perm: Box<[u32]>) -> Self {
        Index {
            cols: cols.into(),
            kind: Kind::Perm { data, perm },
        }
    }

    /// The indexed column positions.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The tuples whose values on the indexed columns equal `key`, in
    /// the relation's deterministic order; empty when no tuple matches.
    pub fn probe(&self, key: &[Value]) -> ProbeHits<'_> {
        debug_assert_eq!(key.len(), self.cols.len());
        match &self.kind {
            Kind::Hash(groups) => {
                ProbeHits::Slice(groups.get(key).map(Vec::as_slice).unwrap_or(&[]))
            }
            Kind::Prefix(data) => {
                let k: Vec<Vid> = key.iter().map(Vid::from_value).collect();
                let range = data.prefix_range(&k);
                ProbeHits::Slice(&data.rows()[range])
            }
            Kind::Perm { data, perm } => {
                let k: Vec<Vid> = key.iter().map(Vid::from_value).collect();
                // Key of permuted row r vs probe key, lexicographically.
                let cmp = |r: u32| -> Ordering {
                    for (i, &c) in self.cols.iter().enumerate() {
                        match data.vid(c, r as usize).cmp_structural(k[i]) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    Ordering::Equal
                };
                let lo = perm.partition_point(|&r| cmp(r) == Ordering::Less);
                let hi = perm[lo..].partition_point(|&r| cmp(r) == Ordering::Equal) + lo;
                ProbeHits::Perm {
                    rows: data.rows(),
                    perm: &perm[lo..hi],
                }
            }
        }
    }

    /// The matching *row indices* of the underlying run for an
    /// interned key — the zero-materialization probe used by columnar
    /// join executors. Returns `None` for hash indexes (the BTree
    /// storage path), which have no run to index into.
    pub fn probe_rows(&self, key: &[Vid]) -> Option<RowHits<'_>> {
        debug_assert_eq!(key.len(), self.cols.len());
        match &self.kind {
            Kind::Hash(_) => None,
            Kind::Prefix(data) => Some(RowHits::Range(data.prefix_range(key))),
            Kind::Perm { data, perm } => {
                let cmp = |r: u32| -> Ordering {
                    for (i, &c) in self.cols.iter().enumerate() {
                        match data.vid(c, r as usize).cmp_structural(key[i]) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    Ordering::Equal
                };
                let lo = perm.partition_point(|&r| cmp(r) == Ordering::Less);
                let hi = perm[lo..].partition_point(|&r| cmp(r) == Ordering::Equal) + lo;
                Some(RowHits::Rows(&perm[lo..hi]))
            }
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match &self.kind {
            Kind::Hash(groups) => groups.len(),
            Kind::Prefix(data) => {
                let mut n = 0;
                let mut prev: Option<usize> = None;
                for r in 0..data.len() {
                    let fresh = match prev {
                        None => true,
                        Some(p) => self.cols.iter().any(|&c| data.vid(c, r) != data.vid(c, p)),
                    };
                    if fresh {
                        n += 1;
                    }
                    prev = Some(r);
                }
                n
            }
            Kind::Perm { data, perm } => {
                let mut n = 0;
                let mut prev: Option<u32> = None;
                for &r in perm.iter() {
                    let fresh = match prev {
                        None => true,
                        Some(p) => self
                            .cols
                            .iter()
                            .any(|&c| data.vid(c, r as usize) != data.vid(c, p as usize)),
                    };
                    if fresh {
                        n += 1;
                    }
                    prev = Some(r);
                }
                n
            }
        }
    }
}

impl fmt::Debug for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let form = match &self.kind {
            Kind::Hash(_) => "hash",
            Kind::Prefix(_) => "prefix-view",
            Kind::Perm { .. } => "perm-view",
        };
        write!(f, "Index(cols={:?}, {form})", self.cols)
    }
}

/// The matching row indices from [`Index::probe_rows`]: either a
/// contiguous range of the run (prefix views) or an explicit index
/// list in scan order (permutation views).
#[derive(Clone, Debug)]
pub enum RowHits<'a> {
    /// Contiguous run rows.
    Range(std::ops::Range<usize>),
    /// Explicit row indices, in scan order.
    Rows(&'a [u32]),
}

impl RowHits<'_> {
    /// Number of matching rows.
    pub fn len(&self) -> usize {
        match self {
            RowHits::Range(r) => r.len(),
            RowHits::Rows(rs) => rs.len(),
        }
    }

    /// Any matches?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Iterator for RowHits<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        match self {
            RowHits::Range(r) => r.next(),
            RowHits::Rows(rs) => {
                let (&first, rest) = rs.split_first()?;
                *rs = rest;
                Some(first as usize)
            }
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len(), Some(self.len()))
    }
}

/// The result of an index probe: a borrowed set of matching tuples in
/// the relation's deterministic order.
#[derive(Clone, Copy)]
pub enum ProbeHits<'a> {
    /// A contiguous slice of tuples (hash group or prefix-view range).
    Slice(&'a [Tuple]),
    /// A permuted subset of a run's rows (general-column view).
    Perm {
        /// The run's materialized rows.
        rows: &'a [Tuple],
        /// Row indices of the matches, in scan order.
        perm: &'a [u32],
    },
}

impl<'a> ProbeHits<'a> {
    /// Number of matching tuples.
    pub fn len(&self) -> usize {
        match self {
            ProbeHits::Slice(s) => s.len(),
            ProbeHits::Perm { perm, .. } => perm.len(),
        }
    }

    /// Any matches?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the matching tuples in scan order.
    pub fn iter(&self) -> ProbeIter<'a> {
        match *self {
            ProbeHits::Slice(s) => ProbeIter::Slice(s.iter()),
            ProbeHits::Perm { rows, perm } => ProbeIter::Perm {
                rows,
                perm: perm.iter(),
            },
        }
    }

    /// Collect the matches into owned tuples (mostly for tests).
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }
}

impl<'a> IntoIterator for ProbeHits<'a> {
    type Item = &'a Tuple;
    type IntoIter = ProbeIter<'a>;
    fn into_iter(self) -> ProbeIter<'a> {
        self.iter()
    }
}

/// Iterator over probe hits (see [`ProbeHits::iter`]).
pub enum ProbeIter<'a> {
    /// Contiguous form.
    Slice(std::slice::Iter<'a, Tuple>),
    /// Permuted form.
    Perm {
        /// The run's materialized rows.
        rows: &'a [Tuple],
        /// Remaining match row indices.
        perm: std::slice::Iter<'a, u32>,
    },
}

impl<'a> Iterator for ProbeIter<'a> {
    type Item = &'a Tuple;
    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            ProbeIter::Slice(it) => it.next(),
            ProbeIter::Perm { rows, perm } => perm.next().map(|&r| &rows[r as usize]),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ProbeIter::Slice(it) => it.size_hint(),
            ProbeIter::Perm { perm, .. } => perm.size_hint(),
        }
    }
}

impl<'a> ExactSizeIterator for ProbeIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn build_and_probe() {
        let tuples = [tuple![1, 2], tuple![1, 3], tuple![2, 3]];
        let idx = Index::build(&[0], tuples.iter());
        assert_eq!(idx.cols(), &[0]);
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.probe(&[Value::int(1)]).len(), 2);
        assert_eq!(idx.probe(&[Value::int(2)]).to_vec(), vec![tuple![2, 3]]);
        assert!(idx.probe(&[Value::int(9)]).is_empty());
    }

    #[test]
    fn probe_preserves_scan_order() {
        let tuples = [tuple![1, 1], tuple![1, 2], tuple![1, 3]];
        let idx = Index::build(&[0], tuples.iter());
        assert_eq!(
            idx.probe(&[Value::int(1)]).to_vec(),
            vec![tuple![1, 1], tuple![1, 2], tuple![1, 3]]
        );
    }

    #[test]
    fn multi_column_keys() {
        let tuples = [tuple![1, 2, 3], tuple![1, 2, 4], tuple![1, 9, 3]];
        let idx = Index::build(&[0, 1], tuples.iter());
        assert_eq!(idx.probe(&[Value::int(1), Value::int(2)]).len(), 2);
        assert_eq!(idx.probe(&[Value::int(1), Value::int(9)]).len(), 1);
    }

    #[test]
    fn view_probes_match_hash_probes() {
        use crate::runs::Run;
        use std::collections::BTreeSet;
        let set: BTreeSet<Tuple> = [
            tuple![1, 2, "x"],
            tuple![1, 3, "x"],
            tuple![2, 2, "y"],
            tuple![2, 3, "x"],
            tuple![3, 1, "z"],
        ]
        .into_iter()
        .collect();
        let run = Run::from_sorted(3, set.iter());
        for cols in [
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![1, 2],
            vec![0, 1, 2],
        ] {
            let view = run.view(&cols);
            let hash = Index::build(&cols, set.iter());
            for t in &set {
                let key: Vec<Value> = cols.iter().map(|&c| t.values()[c]).collect();
                assert_eq!(
                    view.probe(&key).to_vec(),
                    hash.probe(&key).to_vec(),
                    "cols {cols:?} key {key:?}"
                );
            }
            assert_eq!(view.key_count(), hash.key_count(), "cols {cols:?}");
            // A key matching nothing.
            let miss: Vec<Value> = cols.iter().map(|_| Value::int(99)).collect();
            assert!(view.probe(&miss).is_empty());
        }
    }
}

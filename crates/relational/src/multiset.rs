//! Multisets of facts — the message buffers of the operational semantics.
//!
//! The paper's configurations map every node to "a finite multiset of
//! facts over `S_msg`" (Section 3). Delivery removes *one copy*; sending
//! is multiset union.

use crate::fact::Fact;
use std::collections::BTreeMap;
use std::fmt;

/// A finite multiset of facts with deterministic iteration order.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct FactMultiset {
    counts: BTreeMap<Fact, usize>,
    total: usize,
}

impl FactMultiset {
    /// The empty multiset.
    pub fn new() -> Self {
        FactMultiset::default()
    }

    /// Total number of copies.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Is the multiset empty?
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of *distinct* facts.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity of a fact.
    pub fn count(&self, f: &Fact) -> usize {
        self.counts.get(f).copied().unwrap_or(0)
    }

    /// Does the multiset contain at least one copy of `f`?
    pub fn contains(&self, f: &Fact) -> bool {
        self.count(f) > 0
    }

    /// Add one copy.
    pub fn insert(&mut self, f: Fact) {
        self.insert_n(f, 1);
    }

    /// Add `n` copies.
    pub fn insert_n(&mut self, f: Fact, n: usize) {
        if n == 0 {
            return;
        }
        *self.counts.entry(f).or_insert(0) += n;
        self.total += n;
    }

    /// Remove one copy; `true` if a copy was present.
    pub fn remove_one(&mut self, f: &Fact) -> bool {
        match self.counts.get_mut(f) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.total -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(f);
                self.total -= 1;
                true
            }
            None => false,
        }
    }

    /// Multiset union: add every copy of `other`.
    pub fn extend(&mut self, other: impl IntoIterator<Item = Fact>) {
        for f in other {
            self.insert(f);
        }
    }

    /// Iterate over `(fact, multiplicity)` pairs in fact order.
    pub fn iter_counts(&self) -> impl Iterator<Item = (&Fact, usize)> {
        self.counts.iter().map(|(f, &c)| (f, c))
    }

    /// Iterate over distinct facts in order.
    pub fn distinct(&self) -> impl Iterator<Item = &Fact> {
        self.counts.keys()
    }

    /// Iterate over every copy (facts repeated per multiplicity).
    pub fn iter_copies(&self) -> impl Iterator<Item = &Fact> {
        self.counts
            .iter()
            .flat_map(|(f, &c)| std::iter::repeat_n(f, c))
    }

    /// The `i`-th copy in deterministic order (for seeded random picks).
    pub fn nth_copy(&self, mut i: usize) -> Option<&Fact> {
        for (f, &c) in &self.counts {
            if i < c {
                return Some(f);
            }
            i -= c;
        }
        None
    }
}

impl fmt::Debug for FactMultiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{|")?;
        for (i, (fact, c)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *c == 1 {
                write!(f, "{fact}")?;
            } else {
                write!(f, "{fact}×{c}")?;
            }
        }
        write!(f, "|}}")
    }
}

impl FromIterator<Fact> for FactMultiset {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        let mut m = FactMultiset::new();
        m.extend(iter);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact;

    #[test]
    fn counts_and_totals() {
        let mut m = FactMultiset::new();
        m.insert(fact!("M", 1));
        m.insert(fact!("M", 1));
        m.insert(fact!("M", 2));
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct_len(), 2);
        assert_eq!(m.count(&fact!("M", 1)), 2);
        assert!(m.contains(&fact!("M", 2)));
        assert!(!m.contains(&fact!("M", 3)));
    }

    #[test]
    fn remove_one_decrements() {
        let mut m: FactMultiset = vec![fact!("M", 1), fact!("M", 1)].into_iter().collect();
        assert!(m.remove_one(&fact!("M", 1)));
        assert_eq!(m.count(&fact!("M", 1)), 1);
        assert!(m.remove_one(&fact!("M", 1)));
        assert!(!m.remove_one(&fact!("M", 1)));
        assert!(m.is_empty());
    }

    #[test]
    fn insert_n_zero_is_noop() {
        let mut m = FactMultiset::new();
        m.insert_n(fact!("M", 1), 0);
        assert!(m.is_empty());
        m.insert_n(fact!("M", 1), 5);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn nth_copy_walks_in_order() {
        let mut m = FactMultiset::new();
        m.insert_n(fact!("M", 1), 2);
        m.insert(fact!("M", 2));
        assert_eq!(m.nth_copy(0), Some(&fact!("M", 1)));
        assert_eq!(m.nth_copy(1), Some(&fact!("M", 1)));
        assert_eq!(m.nth_copy(2), Some(&fact!("M", 2)));
        assert_eq!(m.nth_copy(3), None);
    }

    #[test]
    fn iter_copies_repeats_by_multiplicity() {
        let mut m = FactMultiset::new();
        m.insert_n(fact!("M", 7), 3);
        assert_eq!(m.iter_copies().count(), 3);
    }

    #[test]
    fn debug_format_shows_multiplicity() {
        let mut m = FactMultiset::new();
        m.insert_n(fact!("M", 1), 2);
        assert_eq!(format!("{m:?}"), "{|M(1)×2|}");
    }
}

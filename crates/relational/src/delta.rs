//! Delta views: the difference between two relations or instances.
//!
//! The runtimes built on this kernel (semi-naive Datalog, the Dedalus
//! tick loop) advance a store from one version to the next. Rather than
//! cloning whole relations per step, they compute a [`RelationDelta`] /
//! [`InstanceDelta`] once and apply it in place — cheap when consecutive
//! versions mostly agree, which is the common case for persistence-style
//! programs.

use crate::error::RelError;
use crate::fact::{Fact, Tuple};
use std::fmt;

/// The difference between two same-arity relations: tuples to add and
/// tuples to remove, always disjoint.
#[derive(Clone, PartialEq, Eq)]
pub struct RelationDelta {
    arity: usize,
    added: Vec<Tuple>,
    removed: Vec<Tuple>,
}

impl RelationDelta {
    pub(crate) fn new(arity: usize, added: Vec<Tuple>, removed: Vec<Tuple>) -> Self {
        RelationDelta {
            arity,
            added,
            removed,
        }
    }

    /// Arity of the relations this delta mediates between.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Tuples present in the target but not the source.
    pub fn added(&self) -> &[Tuple] {
        &self.added
    }

    /// Tuples present in the source but not the target.
    pub fn removed(&self) -> &[Tuple] {
        &self.removed
    }

    /// Does the delta change nothing?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of changed tuples.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Decompose into `(added, removed)` tuple lists.
    pub fn into_parts(self) -> (Vec<Tuple>, Vec<Tuple>) {
        (self.added, self.removed)
    }
}

impl fmt::Debug for RelationDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ(+{:?}, −{:?})", self.added, self.removed)
    }
}

/// The difference between two instances, as facts to add and remove.
#[derive(Clone, PartialEq, Eq)]
pub struct InstanceDelta {
    added: Vec<Fact>,
    removed: Vec<Fact>,
}

impl InstanceDelta {
    pub(crate) fn new(added: Vec<Fact>, removed: Vec<Fact>) -> Self {
        InstanceDelta { added, removed }
    }

    /// Build a delta from explicit insertion and retraction lists —
    /// retractions are first-class data, not an implied complement.
    ///
    /// The lists are normalized: duplicates collapse, and a fact named
    /// on both sides cancels (the delta's net effect is empty for it),
    /// so `added()` and `removed()` are always disjoint and sorted, as
    /// [`Instance::diff`](crate::Instance::diff) guarantees.
    pub fn from_parts(
        added: impl IntoIterator<Item = Fact>,
        removed: impl IntoIterator<Item = Fact>,
    ) -> Self {
        let mut add: std::collections::BTreeSet<Fact> = added.into_iter().collect();
        let mut rem: std::collections::BTreeSet<Fact> = removed.into_iter().collect();
        let both: Vec<Fact> = add.intersection(&rem).cloned().collect();
        for f in &both {
            add.remove(f);
            rem.remove(f);
        }
        InstanceDelta {
            added: add.into_iter().collect(),
            removed: rem.into_iter().collect(),
        }
    }

    /// Decompose into `(added, removed)` fact lists.
    pub fn into_parts(self) -> (Vec<Fact>, Vec<Fact>) {
        (self.added, self.removed)
    }

    /// Facts present in the target but not the source.
    pub fn added(&self) -> &[Fact] {
        &self.added
    }

    /// Facts present in the source but not the target.
    pub fn removed(&self) -> &[Fact] {
        &self.removed
    }

    /// Does the delta change nothing?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of changed facts.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

impl fmt::Debug for InstanceDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ(+{:?}, −{:?})", self.added, self.removed)
    }
}

/// Validate that a delta's arity matches a relation's.
pub(crate) fn check_arity(expected: usize, found: usize) -> Result<(), RelError> {
    if expected != found {
        return Err(RelError::TupleArity { expected, found });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact;

    #[test]
    fn from_parts_normalizes_and_cancels() {
        let d = InstanceDelta::from_parts(
            vec![fact!("R", 1), fact!("R", 1), fact!("R", 2)],
            vec![fact!("R", 2), fact!("S", 3)],
        );
        assert_eq!(d.added(), &[fact!("R", 1)]);
        assert_eq!(d.removed(), &[fact!("S", 3)]);
        let (a, r) = d.into_parts();
        assert_eq!(a.len(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn from_parts_empty_is_empty() {
        let d = InstanceDelta::from_parts(Vec::new(), Vec::new());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}

//! Delta views: the difference between two relations or instances.
//!
//! The runtimes built on this kernel (semi-naive Datalog, the Dedalus
//! tick loop) advance a store from one version to the next. Rather than
//! cloning whole relations per step, they compute a [`RelationDelta`] /
//! [`InstanceDelta`] once and apply it in place — cheap when consecutive
//! versions mostly agree, which is the common case for persistence-style
//! programs.

use crate::error::RelError;
use crate::fact::{Fact, Tuple};
use std::fmt;

/// The difference between two same-arity relations: tuples to add and
/// tuples to remove, always disjoint.
#[derive(Clone, PartialEq, Eq)]
pub struct RelationDelta {
    arity: usize,
    added: Vec<Tuple>,
    removed: Vec<Tuple>,
}

impl RelationDelta {
    pub(crate) fn new(arity: usize, added: Vec<Tuple>, removed: Vec<Tuple>) -> Self {
        RelationDelta {
            arity,
            added,
            removed,
        }
    }

    /// Arity of the relations this delta mediates between.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Tuples present in the target but not the source.
    pub fn added(&self) -> &[Tuple] {
        &self.added
    }

    /// Tuples present in the source but not the target.
    pub fn removed(&self) -> &[Tuple] {
        &self.removed
    }

    /// Does the delta change nothing?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of changed tuples.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Decompose into `(added, removed)` tuple lists.
    pub fn into_parts(self) -> (Vec<Tuple>, Vec<Tuple>) {
        (self.added, self.removed)
    }
}

impl fmt::Debug for RelationDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ(+{:?}, −{:?})", self.added, self.removed)
    }
}

/// The difference between two instances, as facts to add and remove.
#[derive(Clone, PartialEq, Eq)]
pub struct InstanceDelta {
    added: Vec<Fact>,
    removed: Vec<Fact>,
}

impl InstanceDelta {
    pub(crate) fn new(added: Vec<Fact>, removed: Vec<Fact>) -> Self {
        InstanceDelta { added, removed }
    }

    /// Facts present in the target but not the source.
    pub fn added(&self) -> &[Fact] {
        &self.added
    }

    /// Facts present in the source but not the target.
    pub fn removed(&self) -> &[Fact] {
        &self.removed
    }

    /// Does the delta change nothing?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of changed facts.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

impl fmt::Debug for InstanceDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ(+{:?}, −{:?})", self.added, self.removed)
    }
}

/// Validate that a delta's arity matches a relation's.
pub(crate) fn check_arity(expected: usize, found: usize) -> Result<(), RelError> {
    if expected != found {
        return Err(RelError::TupleArity { expected, found });
    }
    Ok(())
}

//! The process-wide value interner: symbols and big integers become
//! `u32` ids, so equality is an integer compare, hashing never touches
//! string bytes, and columnar relation storage can hold flat `Vec<Vid>`
//! columns instead of boxed values.
//!
//! # Determinism
//!
//! Interner ids are assigned in first-intern order, which depends on
//! program execution history — so **nothing downstream may order by
//! id**. Every comparison exposed here ([`Symbol::cmp`], [`Vid::cmp`])
//! is *structural*: integers numerically, symbols by their string, all
//! integers before all symbols — exactly the order [`crate::Value`] has
//! always had. Two processes with arbitrarily different interner
//! histories therefore produce bit-identical sorted relations, which
//! `tests/storage.rs` checks explicitly.
//!
//! # Concurrency
//!
//! Interning (the write path) takes one of a fixed set of sharded
//! mutexes. Resolution (the read path, hit on every symbol compare and
//! every columnar row materialization) is lock-free: ids index into
//! append-only chunked tables whose slots are `OnceLock`s, so a reader
//! never blocks on a writer.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Number of doubling chunks in an append-only table: chunk `k` holds
/// `64 << k` slots, for a total capacity beyond `2^30` ids.
const CHUNKS: usize = 25;
/// Shard count for the symbol forward map.
const SHARDS: usize = 16;

/// An append-only, lock-free-readable table: slot `i` is written once
/// (under the interner's shard lock) and read any number of times.
struct AppendTable<T> {
    chunks: [OnceLock<Box<[OnceLock<T>]>>; CHUNKS],
}

impl<T> AppendTable<T> {
    const fn new() -> Self {
        AppendTable {
            chunks: [const { OnceLock::new() }; CHUNKS],
        }
    }

    /// Chunk index and offset for slot `i`: chunk `k` covers the
    /// `64 << k` slots starting at `64 * (2^k - 1)`.
    fn locate(i: u32) -> (usize, usize) {
        let n = (i / 64) + 1;
        let k = (31 - n.leading_zeros()) as usize;
        let start = 64 * ((1u32 << k) - 1);
        (k, (i - start) as usize)
    }

    fn slot(&self, i: u32) -> &OnceLock<T> {
        let (k, off) = Self::locate(i);
        let chunk = self.chunks[k].get_or_init(|| {
            let size = 64usize << k;
            let mut v = Vec::with_capacity(size);
            v.resize_with(size, OnceLock::new);
            v.into_boxed_slice()
        });
        &chunk[off]
    }

    /// Read slot `i`, which must have been published by a completed
    /// intern call.
    fn get(&self, i: u32) -> &T {
        self.slot(i).get().expect("interner id never published")
    }

    /// Write slot `i` exactly once (caller holds the shard lock).
    fn set(&self, i: u32, value: T) {
        if self.slot(i).set(value).is_err() {
            unreachable!("interner slot written twice");
        }
    }
}

/// The global symbol interner: forward maps sharded by string hash,
/// one shared reverse table indexed by id.
struct SymInterner {
    shards: [Mutex<Vec<(&'static str, u32)>>; SHARDS],
    table: AppendTable<&'static str>,
    next: Mutex<u32>,
}

static SYMS: SymInterner = SymInterner {
    shards: [const { Mutex::new(Vec::new()) }; SHARDS],
    table: AppendTable::new(),
    next: Mutex::new(0),
};

/// Big integers (outside [`Vid`]'s inline range) interned to ids.
struct IntInterner {
    map: Mutex<Vec<(i64, u32)>>,
    table: AppendTable<i64>,
}

static BIGINTS: IntInterner = IntInterner {
    map: Mutex::new(Vec::new()),
    table: AppendTable::new(),
};

fn shard_of(s: &str) -> usize {
    // FNV-1a over the bytes; only used to pick a shard.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % SHARDS
}

/// An interned string: a `u32` id whose text lives for the life of the
/// process.
///
/// Equality and hashing use the id (interning is canonical, so id
/// equality coincides with string equality); **ordering is by string**,
/// so sorted containers keep the deterministic lexicographic order the
/// kernel has always guaranteed, independent of intern history.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Intern a string (idempotent: equal strings yield equal ids).
    pub fn new(s: impl AsRef<str>) -> Self {
        let s = s.as_ref();
        let mut shard = SYMS.shards[shard_of(s)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(&(_, id)) = shard.iter().find(|(t, _)| *t == s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = {
            let mut next = SYMS.next.lock().unwrap_or_else(|e| e.into_inner());
            let id = *next;
            assert!(id < 1 << 30, "symbol interner exhausted");
            *next += 1;
            id
        };
        SYMS.table.set(id, leaked);
        shard.push((leaked, id));
        Symbol(id)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        SYMS.table.get(self.0)
    }

    /// The raw interner id (stable within a process only — never use it
    /// for ordering or cross-process identity).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Inline integer range: `[-2^30, 2^30)` encodes directly into the id
/// with its order preserved; anything outside goes through [`BIGINTS`].
const SMALL_BIAS: i64 = 1 << 30;
const SMALL_MAX_RAW: u32 = (1 << 31) - 1;
/// Tag for interned big integers (bit 31 set, bit 30 clear).
const BIG_TAG: u32 = 0x8000_0000;
/// Tag for symbols (bits 31 and 30 set) — numerically above every
/// integer encoding, matching `Int < Sym` structurally.
const SYM_TAG: u32 = 0xC000_0000;
const PAYLOAD: u32 = 0x3FFF_FFFF;

fn intern_big(i: i64) -> u32 {
    let mut map = BIGINTS.map.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&(_, id)) = map.iter().find(|(v, _)| *v == i) {
        return id;
    }
    let id = map.len() as u32;
    assert!(id <= PAYLOAD, "big-int interner exhausted");
    BIGINTS.table.set(id, i);
    map.push((i, id));
    id
}

/// A packed value id: the unit of columnar relation storage.
///
/// Layout (`u32`):
/// * `0x0000_0000..=0x7FFF_FFFF` — an integer in `[-2^30, 2^30)`,
///   stored biased so the *numeric* order is the raw `u32` order;
/// * `0x8000_0000..=0xBFFF_FFFF` — an interned big integer;
/// * `0xC000_0000..=0xFFFF_FFFF` — an interned symbol.
///
/// Equality is raw id equality (the encoding is canonical). Ordering is
/// structural ([`crate::Value`]'s order); the layout makes the common
/// cases a plain integer compare — two inline ints compare directly,
/// and symbols sit above every integer — so only comparisons involving
/// a big integer or two distinct symbols resolve through the tables.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vid(u32);

impl Vid {
    /// Encode a value, interning as needed.
    pub fn from_value(v: &crate::Value) -> Vid {
        match *v {
            crate::Value::Int(i) => {
                if (-SMALL_BIAS..SMALL_BIAS).contains(&i) {
                    Vid((i + SMALL_BIAS) as u32)
                } else {
                    Vid(BIG_TAG | intern_big(i))
                }
            }
            crate::Value::Sym(s) => Vid(SYM_TAG | s.0),
        }
    }

    /// Decode back to a value. Cheap: inline ints are arithmetic,
    /// symbols are a tag strip; only big integers read a table.
    pub fn value(self) -> crate::Value {
        match self.0 >> 30 {
            0 | 1 => crate::Value::Int(self.0 as i64 - SMALL_BIAS),
            2 => crate::Value::Int(*BIGINTS.table.get(self.0 & PAYLOAD)),
            _ => crate::Value::Sym(Symbol(self.0 & PAYLOAD)),
        }
    }

    /// Structural comparison — identical to comparing the decoded
    /// [`crate::Value`]s, with integer-only fast paths.
    pub fn cmp_structural(self, other: Vid) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        let (a, b) = (self.0, other.0);
        if a <= SMALL_MAX_RAW && b <= SMALL_MAX_RAW {
            return a.cmp(&b); // two inline ints: biased order = numeric order
        }
        match ((a >= SYM_TAG), (b >= SYM_TAG)) {
            (true, true) => Symbol(a & PAYLOAD).cmp(&Symbol(b & PAYLOAD)),
            (true, false) => Ordering::Greater, // sym > any int
            (false, true) => Ordering::Less,
            (false, false) => {
                // at least one big int: resolve both numerically
                let ai = match a >> 30 {
                    2 => *BIGINTS.table.get(a & PAYLOAD),
                    _ => a as i64 - SMALL_BIAS,
                };
                let bi = match b >> 30 {
                    2 => *BIGINTS.table.get(b & PAYLOAD),
                    _ => b as i64 - SMALL_BIAS,
                };
                ai.cmp(&bi)
            }
        }
    }

    /// Compare against an un-encoded value without interning it.
    pub fn cmp_value(self, v: &crate::Value) -> std::cmp::Ordering {
        self.value().cmp(v)
    }

    /// The raw packed id (process-local).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Does the raw id order agree with the structural order against
    /// every other raw-ordered id? True exactly for inline integers.
    pub fn raw_ordered(self) -> bool {
        self.0 <= SMALL_MAX_RAW
    }

    /// Rebuild from a raw id previously obtained via [`Vid::raw`].
    pub(crate) fn from_raw(raw: u32) -> Vid {
        Vid(raw)
    }
}

impl fmt::Debug for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;
    use std::cmp::Ordering;

    #[test]
    fn symbols_are_canonical() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("alpha");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "alpha");
        assert_ne!(Symbol::new("beta"), a);
    }

    #[test]
    fn symbol_order_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order: ids disagree with
        // string order, comparison must follow the strings.
        let z = Symbol::new("zzz-order-test");
        let a = Symbol::new("aaa-order-test");
        assert_eq!(a.cmp(&z), Ordering::Less);
        assert_eq!(z.cmp(&a), Ordering::Greater);
    }

    #[test]
    fn vid_roundtrips_all_kinds() {
        for v in [
            Value::int(0),
            Value::int(-1),
            Value::int((1 << 30) - 1),
            Value::int(-(1 << 30)),
            Value::int(1 << 40),
            Value::int(-(1 << 40)),
            Value::int(i64::MAX),
            Value::int(i64::MIN),
            Value::sym("x"),
            Value::sym(""),
        ] {
            assert_eq!(Vid::from_value(&v).value(), v, "roundtrip of {v:?}");
        }
    }

    #[test]
    fn vid_order_matches_value_order() {
        let values = [
            Value::int(i64::MIN),
            Value::int(-(1 << 40)),
            Value::int(-3),
            Value::int(0),
            Value::int(7),
            Value::int(1 << 40),
            Value::int(i64::MAX),
            Value::sym("a"),
            Value::sym("b"),
            Value::sym("ba"),
        ];
        for x in &values {
            for y in &values {
                let (vx, vy) = (Vid::from_value(x), Vid::from_value(y));
                assert_eq!(vx.cmp_structural(vy), x.cmp(y), "{x:?} vs {y:?}");
                assert_eq!(vx.cmp_value(y), x.cmp(y));
            }
        }
    }

    #[test]
    fn vid_equality_is_canonical() {
        let a = Vid::from_value(&Value::int(1 << 45));
        let b = Vid::from_value(&Value::int(1 << 45));
        assert_eq!(a, b);
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn append_table_locate_is_contiguous() {
        let mut expected = 0u32;
        for k in 0..6usize {
            for off in 0..(64usize << k) {
                assert_eq!(AppendTable::<u8>::locate(expected), (k, off));
                expected += 1;
            }
        }
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..64)
                        .map(|i| Symbol::new(format!("conc-{}", (t + i) % 16)).id())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let ids: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same string → same id, across every thread.
        for (t, thread_ids) in ids.iter().enumerate() {
            for (i, &id) in thread_ids.iter().enumerate() {
                let name = format!("conc-{}", (t + i) % 16);
                assert_eq!(Symbol::new(&name).id(), id);
            }
        }
    }
}

//! Database schemas.
//!
//! A database schema is a finite set of relation names, each with an
//! associated arity (paper, Section 2).

use crate::error::RelError;
use crate::fact::{Fact, RelName};
use std::collections::BTreeMap;
use std::fmt;

/// A database schema: a finite map from relation names to arities.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    arities: BTreeMap<RelName, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Build a schema from `(name, arity)` pairs.
    ///
    /// Returns an error when the same name is declared twice with
    /// different arities.
    pub fn from_pairs<N: Into<RelName>>(
        pairs: impl IntoIterator<Item = (N, usize)>,
    ) -> Result<Self, RelError> {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.declare(name, arity)?;
        }
        Ok(s)
    }

    /// Declare a relation. Re-declaring with the same arity is a no-op;
    /// with a different arity it is an error.
    pub fn declare(&mut self, name: impl Into<RelName>, arity: usize) -> Result<(), RelError> {
        let name = name.into();
        match self.arities.get(&name) {
            Some(&a) if a != arity => Err(RelError::ArityMismatch {
                rel: name,
                expected: a,
                found: arity,
            }),
            _ => {
                self.arities.insert(name, arity);
                Ok(())
            }
        }
    }

    /// Chainable variant of [`Schema::declare`] that panics on conflict —
    /// for statically-known schemas in tests and constructions.
    pub fn with(mut self, name: impl Into<RelName>, arity: usize) -> Self {
        self.declare(name, arity)
            .expect("conflicting arity in schema literal");
        self
    }

    /// The arity of `name`, if declared.
    pub fn arity(&self, name: &RelName) -> Option<usize> {
        self.arities.get(name).copied()
    }

    /// Does the schema declare `name`?
    pub fn contains(&self, name: &RelName) -> bool {
        self.arities.contains_key(name)
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Iterate over `(name, arity)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, usize)> {
        self.arities.iter().map(|(n, &a)| (n, a))
    }

    /// Relation names in name order.
    pub fn names(&self) -> impl Iterator<Item = &RelName> {
        self.arities.keys()
    }

    /// Disjoint union of two schemas; errors if they share a name.
    ///
    /// The transducer schema requires its four sub-schemas to be disjoint
    /// (paper, Section 2.1), so sharing a name is an error rather than a
    /// merge even when the arities agree.
    pub fn disjoint_union(&self, other: &Schema) -> Result<Schema, RelError> {
        let mut out = self.clone();
        for (name, arity) in other.iter() {
            if out.contains(name) {
                return Err(RelError::NotDisjoint { rel: name.clone() });
            }
            out.arities.insert(name.clone(), arity);
        }
        Ok(out)
    }

    /// Union of two schemas where shared names must agree on arity.
    pub fn union_compatible(&self, other: &Schema) -> Result<Schema, RelError> {
        let mut out = self.clone();
        for (name, arity) in other.iter() {
            out.declare(name.clone(), arity)?;
        }
        Ok(out)
    }

    /// Are the two schemas disjoint (no shared relation name)?
    pub fn is_disjoint_from(&self, other: &Schema) -> bool {
        self.names().all(|n| !other.contains(n))
    }

    /// Validate a fact against this schema.
    pub fn check_fact(&self, fact: &Fact) -> Result<(), RelError> {
        match self.arity(fact.rel()) {
            None => Err(RelError::UnknownRelation {
                rel: fact.rel().clone(),
            }),
            Some(a) if a != fact.arity() => Err(RelError::ArityMismatch {
                rel: fact.rel().clone(),
                expected: a,
                found: fact.arity(),
            }),
            Some(_) => Ok(()),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, a)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}/{a}")?;
        }
        write!(f, "}}")
    }
}

impl<N: Into<RelName>> FromIterator<(N, usize)> for Schema {
    /// Panics on arity conflict; use [`Schema::from_pairs`] for the
    /// fallible form.
    fn from_iter<T: IntoIterator<Item = (N, usize)>>(iter: T) -> Self {
        Schema::from_pairs(iter).expect("conflicting arity in schema literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact;

    fn s(pairs: &[(&str, usize)]) -> Schema {
        pairs.iter().map(|&(n, a)| (n, a)).collect()
    }

    #[test]
    fn declare_and_lookup() {
        let sch = s(&[("R", 2), ("S", 1)]);
        assert_eq!(sch.arity(&"R".into()), Some(2));
        assert_eq!(sch.arity(&"S".into()), Some(1));
        assert_eq!(sch.arity(&"T".into()), None);
        assert_eq!(sch.len(), 2);
        assert!(!sch.is_empty());
    }

    #[test]
    fn redeclare_same_arity_ok_different_err() {
        let mut sch = s(&[("R", 2)]);
        assert!(sch.declare("R", 2).is_ok());
        assert!(matches!(
            sch.declare("R", 3),
            Err(RelError::ArityMismatch {
                expected: 2,
                found: 3,
                ..
            })
        ));
    }

    #[test]
    fn disjoint_union_rejects_overlap() {
        let a = s(&[("R", 2)]);
        let b = s(&[("R", 2)]);
        assert!(a.disjoint_union(&b).is_err());
        let c = s(&[("S", 1)]);
        let u = a.disjoint_union(&c).unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn union_compatible_merges_when_arities_agree() {
        let a = s(&[("R", 2)]);
        let b = s(&[("R", 2), ("S", 1)]);
        let u = a.union_compatible(&b).unwrap();
        assert_eq!(u.len(), 2);
        let c = s(&[("R", 3)]);
        assert!(a.union_compatible(&c).is_err());
    }

    #[test]
    fn disjointness_check() {
        let a = s(&[("R", 2)]);
        let b = s(&[("S", 1)]);
        assert!(a.is_disjoint_from(&b));
        assert!(!a.is_disjoint_from(&s(&[("R", 5)])));
    }

    #[test]
    fn fact_validation() {
        let sch = s(&[("R", 2)]);
        assert!(sch.check_fact(&fact!("R", 1, 2)).is_ok());
        assert!(matches!(
            sch.check_fact(&fact!("R", 1)),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            sch.check_fact(&fact!("T", 1)),
            Err(RelError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn display_formats_names_and_arities() {
        let sch = s(&[("R", 2), ("S", 0)]);
        assert_eq!(format!("{sch}"), "{R/2, S/0}");
    }

    #[test]
    fn iteration_is_name_ordered() {
        let sch = s(&[("Z", 1), ("A", 1), ("M", 1)]);
        let names: Vec<_> = sch.names().map(|n| n.as_str().to_string()).collect();
        assert_eq!(names, vec!["A", "M", "Z"]);
    }
}

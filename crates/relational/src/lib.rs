//! # rtx-relational — the relational database kernel
//!
//! The substrate shared by every other crate in this workspace:
//! atomic data elements ([`Value`], the universe **dom**), tuples and
//! facts, finite relations, database schemas and instances, multisets of
//! facts (message buffers), and isomorphisms of **dom** (for genericity
//! checks).
//!
//! Values are interned process-wide ([`intern`]: inline small ints,
//! shared symbol/big-int tables, `u32` [`Vid`]s), and relations run on
//! one of three storage engines (see [`StorageMode`]): the default
//! **adaptive** engine — small relations in a flat unsorted log,
//! promoted to sorted runs on growth or order demand — the
//! **columnar** engine (`RTX_STORAGE=columnar`) — flat sorted runs of
//! value ids with galloping merge set algebra ([`runs`]) — and the
//! original **B-tree** engine (`RTX_STORAGE=btree`), kept as the
//! equivalence oracle and ablation baseline. All three iterate in the
//! same deterministic sorted order, which the network simulator relies
//! on for reproducible runs.
//!
//! Terminology follows Section 2 of *Ameloot, Neven, Van den Bussche,
//! "Relational transducers for declarative networking"* (PODS 2011).

#![warn(missing_docs)]

mod counted;
mod delta;
mod error;
mod fact;
mod index;
mod instance;
pub mod intern;
mod iso;
mod multiset;
mod relation;
pub mod runs;
mod schema;
mod value;

pub use counted::CountedRelation;
pub use delta::{InstanceDelta, RelationDelta};
pub use error::RelError;
pub use fact::{Fact, RelName, Tuple};
pub use index::{Index, ProbeHits, ProbeIter, RowHits};
pub use instance::Instance;
pub use intern::{Symbol, Vid};
pub use iso::Iso;
pub use multiset::FactMultiset;
pub use relation::{adaptive_promote_len, adaptive_reentry_len, Relation, StorageMode};
pub use runs::{Run, SmallTail, StorageStats};
pub use schema::Schema;
pub use value::Value;

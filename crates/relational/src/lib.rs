//! # rtx-relational — the relational database kernel
//!
//! The substrate shared by every other crate in this workspace:
//! atomic data elements ([`Value`], the universe **dom**), tuples and
//! facts, finite relations, database schemas and instances, multisets of
//! facts (message buffers), and isomorphisms of **dom** (for genericity
//! checks).
//!
//! All collections are B-tree-based: iteration order is deterministic,
//! which the network simulator relies on for reproducible runs.
//!
//! Terminology follows Section 2 of *Ameloot, Neven, Van den Bussche,
//! "Relational transducers for declarative networking"* (PODS 2011).

#![warn(missing_docs)]

mod counted;
mod delta;
mod error;
mod fact;
mod index;
mod instance;
mod iso;
mod multiset;
mod relation;
mod schema;
mod value;

pub use counted::CountedRelation;
pub use delta::{InstanceDelta, RelationDelta};
pub use error::RelError;
pub use fact::{Fact, RelName, Tuple};
pub use index::Index;
pub use instance::Instance;
pub use iso::Iso;
pub use multiset::FactMultiset;
pub use relation::Relation;
pub use schema::Schema;
pub use value::Value;

//! Atomic data elements — the universe **dom** of the paper.
//!
//! The paper assumes "some infinite universe **dom** of atomic data
//! elements" (Section 2). Values are *uninterpreted*: queries must be
//! generic, i.e. invariant under permutations of **dom**. We provide two
//! constructors — integers and interned symbols — purely as convenient
//! names for elements; nothing in the kernel gives them arithmetic or
//! lexicographic *semantics* (the total order on [`Value`] exists only so
//! that relations can be stored in ordered sets deterministically).

use std::fmt;
use std::sync::Arc;

/// An atomic data element of the universe **dom**.
///
/// Node identifiers of a network are also values (the paper stores nodes
/// in relations, e.g. in `Id` and `All`), so there is no separate node
/// type: a node is whatever [`Value`] names it.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer-named element.
    Int(i64),
    /// A symbol-named element (interned via `Arc<str>`, cheap to clone).
    Sym(Arc<str>),
}

impl Value {
    /// Build a symbol value from anything string-like.
    pub fn sym(s: impl AsRef<str>) -> Self {
        Value::Sym(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Return the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Sym(_) => None,
        }
    }

    /// Return the symbol payload if this is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Sym(s) => Some(s),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Sym(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sym_equality_is_structural() {
        assert_eq!(Value::sym("a"), Value::sym("a"));
        assert_ne!(Value::sym("a"), Value::sym("b"));
    }

    #[test]
    fn int_and_sym_are_distinct() {
        assert_ne!(Value::int(1), Value::sym("1"));
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut set = BTreeSet::new();
        set.insert(Value::sym("b"));
        set.insert(Value::int(2));
        set.insert(Value::sym("a"));
        set.insert(Value::int(1));
        let v: Vec<_> = set.into_iter().collect();
        // Ints sort before Syms (enum declaration order); each group ordered.
        assert_eq!(
            v,
            vec![
                Value::int(1),
                Value::int(2),
                Value::sym("a"),
                Value::sym("b")
            ]
        );
    }

    #[test]
    fn conversions() {
        let a: Value = 7.into();
        assert_eq!(a.as_int(), Some(7));
        let b: Value = "x".into();
        assert_eq!(b.as_sym(), Some("x"));
        assert_eq!(b.as_int(), None);
        let c: Value = String::from("y").into();
        assert_eq!(c.as_sym(), Some("y"));
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(format!("{}", Value::int(3)), "3");
        assert_eq!(format!("{:?}", Value::sym("n1")), "n1");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::sym("a-long-symbol-name-for-testing");
        let w = v.clone();
        assert_eq!(v, w);
    }
}

//! Atomic data elements — the universe **dom** of the paper.
//!
//! The paper assumes "some infinite universe **dom** of atomic data
//! elements" (Section 2). Values are *uninterpreted*: queries must be
//! generic, i.e. invariant under permutations of **dom**. We provide two
//! constructors — integers and interned symbols — purely as convenient
//! names for elements; nothing in the kernel gives them arithmetic or
//! lexicographic *semantics* (the total order on [`Value`] exists only so
//! that relations can be stored in ordered sets deterministically).
//!
//! Since the columnar storage engine landed, `Value` is a 16-byte
//! `Copy` type: symbols are process-interned [`Symbol`] ids (see
//! [`crate::intern`]), so cloning a value is a register move and symbol
//! equality is an integer compare. The total order is unchanged —
//! integers numerically, then symbols lexicographically — and is
//! independent of interner state.

use crate::intern::Symbol;
use std::fmt;

/// An atomic data element of the universe **dom**.
///
/// Node identifiers of a network are also values (the paper stores nodes
/// in relations, e.g. in `Id` and `All`), so there is no separate node
/// type: a node is whatever [`Value`] names it.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer-named element.
    Int(i64),
    /// A symbol-named element (process-interned, `Copy`).
    Sym(Symbol),
}

impl Value {
    /// Build a symbol value from anything string-like.
    pub fn sym(s: impl AsRef<str>) -> Self {
        Value::Sym(Symbol::new(s))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Return the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Sym(_) => None,
        }
    }

    /// Return the symbol payload if this is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Sym(s) => Some(s.as_str()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Int(_), Value::Sym(_)) => Ordering::Less,
            (Value::Sym(_), Value::Int(_)) => Ordering::Greater,
            (Value::Sym(a), Value::Sym(b)) => a.cmp(b),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sym_equality_is_structural() {
        assert_eq!(Value::sym("a"), Value::sym("a"));
        assert_ne!(Value::sym("a"), Value::sym("b"));
    }

    #[test]
    fn int_and_sym_are_distinct() {
        assert_ne!(Value::int(1), Value::sym("1"));
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut set = BTreeSet::new();
        set.insert(Value::sym("b"));
        set.insert(Value::int(2));
        set.insert(Value::sym("a"));
        set.insert(Value::int(1));
        let v: Vec<_> = set.into_iter().collect();
        // Ints sort before Syms (enum declaration order); each group ordered.
        assert_eq!(
            v,
            vec![
                Value::int(1),
                Value::int(2),
                Value::sym("a"),
                Value::sym("b")
            ]
        );
    }

    #[test]
    fn conversions() {
        let a: Value = 7.into();
        assert_eq!(a.as_int(), Some(7));
        let b: Value = "x".into();
        assert_eq!(b.as_sym(), Some("x"));
        assert_eq!(b.as_int(), None);
        let c: Value = String::from("y").into();
        assert_eq!(c.as_sym(), Some("y"));
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(format!("{}", Value::int(3)), "3");
        assert_eq!(format!("{:?}", Value::sym("n1")), "n1");
    }

    #[test]
    fn value_is_copy() {
        let v = Value::sym("a-long-symbol-name-for-testing");
        let w = v; // plain Copy, no allocation
        assert_eq!(v, w);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::sym("a-long-symbol-name-for-testing");
        let w = v;
        assert_eq!(v, w);
    }
}

//! Finite relations: ordered sets of tuples of a fixed arity.
//!
//! Two physical storage engines live behind the one `Relation` API:
//!
//! * **columnar** (the default): an immutable sorted [`Run`] of flat
//!   `Vec<Vid>` columns plus small sorted add/delete *tails*; reads
//!   that need the full sorted view fold the tails into a fresh run
//!   once (cached until the next mutation), set algebra and delta
//!   application are galloping merge walks over runs, and indexes are
//!   permutation/range views into the run rather than side tables;
//! * **btree** (`RTX_STORAGE=btree`): the original `BTreeSet<Tuple>`
//!   representation, kept as the equivalence oracle and measurable
//!   ablation.
//!
//! Both engines present identical *values*: same iteration order, same
//! equality, same `Ord` — `tests/storage.rs` holds them to that under
//! randomized schedules. Mixed-mode comparisons are supported (a
//! columnar relation can equal a btree one).

use crate::delta::RelationDelta;
use crate::error::RelError;
use crate::fact::Tuple;
use crate::index::Index;
use crate::runs::Run;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Which physical storage engine a [`Relation`] uses.
///
/// The process-wide default is [`StorageMode::Columnar`], overridable
/// with `RTX_STORAGE=btree` (the ablation/oracle engine); individual
/// relations and instances can be built in an explicit mode with the
/// `*_in` constructors, e.g. for in-process equivalence testing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StorageMode {
    /// Ordered-set storage: `BTreeSet<Tuple>` + cached hash indexes.
    Btree,
    /// Sorted columnar runs of interned ids + index views.
    Columnar,
}

impl StorageMode {
    /// Parse a mode name (`"btree"` / `"columnar"`).
    pub fn parse(s: &str) -> Option<StorageMode> {
        match s.to_ascii_lowercase().as_str() {
            "btree" => Some(StorageMode::Btree),
            "columnar" | "col" => Some(StorageMode::Columnar),
            _ => None,
        }
    }

    /// The process-wide default mode: `RTX_STORAGE` if set and valid,
    /// else [`StorageMode::Columnar`]. Read once and cached.
    pub fn global() -> StorageMode {
        static MODE: OnceLock<StorageMode> = OnceLock::new();
        *MODE.get_or_init(|| {
            rtx_core::env::parse_choice("RTX_STORAGE", "btree|columnar", StorageMode::parse)
                .unwrap_or(StorageMode::Columnar)
        })
    }
}

/// Lazily built secondary hash indexes for the btree engine, keyed by
/// indexed column subset.
///
/// The cache never influences a relation's value: it is skipped by
/// `Clone`/`Eq`/`Ord` and dropped whenever the tuple set mutates. (The
/// columnar engine needs no such cache — its index views hang off the
/// run itself, one lock-free chain per run generation.)
#[derive(Default)]
struct IndexCache(RwLock<BTreeMap<Box<[usize]>, Arc<Index>>>);

impl IndexCache {
    fn clear(&mut self) {
        // `&mut self` guarantees exclusivity; no lock needed.
        self.0.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Columnar store: an immutable sorted base run plus small mutable
/// tails, folded together on demand.
///
/// Invariants: `adds ∩ base = ∅` and `dels ⊆ base` (so `adds` and
/// `dels` are disjoint and `len = base − dels + adds` exactly); the
/// `merged` cache, when set, is exactly `(base ∖ dels) ∪ adds` — any
/// mutation first *adopts* a set `merged` as the new base (advancing
/// the run generation) and always leaves `merged` unset.
struct ColStore {
    base: Arc<Run>,
    adds: BTreeSet<Tuple>,
    dels: BTreeSet<Tuple>,
    merged: OnceLock<Arc<Run>>,
}

impl ColStore {
    fn from_run(run: Run) -> ColStore {
        ColStore {
            base: Arc::new(run),
            adds: BTreeSet::new(),
            dels: BTreeSet::new(),
            merged: OnceLock::new(),
        }
    }

    fn len(&self) -> usize {
        self.base.len() - self.dels.len() + self.adds.len()
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.adds.contains(t) || (!self.dels.contains(t) && self.base.contains(t))
    }

    /// The current sorted run — the base itself when the tails are
    /// empty, else the cached fold of base and tails.
    fn run(&self) -> &Arc<Run> {
        if self.adds.is_empty() && self.dels.is_empty() {
            &self.base
        } else {
            self.merged.get_or_init(|| {
                let add: Vec<Tuple> = self.adds.iter().cloned().collect();
                let del: Vec<Tuple> = self.dels.iter().cloned().collect();
                Arc::new(self.base.apply_sorted(&add, &del))
            })
        }
    }

    /// If a read has already folded the tails into a run, promote it to
    /// be the new base (fresh run generation); otherwise just drop the
    /// stale cache. Called before every mutation.
    fn adopt(&mut self) {
        if let Some(m) = self.merged.take() {
            self.base = m;
            self.adds.clear();
            self.dels.clear();
        }
    }
}

enum Store {
    Btree {
        tuples: BTreeSet<Tuple>,
        cache: IndexCache,
    },
    Col(ColStore),
}

/// A finite `k`-ary relation on **dom**.
///
/// Iteration order is deterministic (sorted) whatever the storage
/// engine — the whole simulator relies on runs being pure functions of
/// their inputs. Joins can additionally request a cached secondary
/// [`Index`] on any column subset via [`Relation::index`].
pub struct Relation {
    arity: usize,
    store: Store,
}

impl Relation {
    /// The empty relation of the given arity, in the process default
    /// storage mode.
    pub fn empty(arity: usize) -> Self {
        Relation::empty_in(StorageMode::global(), arity)
    }

    /// The empty relation of the given arity in an explicit mode.
    pub fn empty_in(mode: StorageMode, arity: usize) -> Self {
        let store = match mode {
            StorageMode::Btree => Store::Btree {
                tuples: BTreeSet::new(),
                cache: IndexCache::default(),
            },
            StorageMode::Columnar => Store::Col(ColStore::from_run(Run::empty(arity))),
        };
        Relation { arity, store }
    }

    /// Build from tuples, validating arity.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelError> {
        Relation::from_tuples_in(StorageMode::global(), arity, tuples)
    }

    /// Build from tuples in an explicit mode, validating arity.
    pub fn from_tuples_in(
        mode: StorageMode,
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelError> {
        match mode {
            StorageMode::Btree => {
                let mut r = Relation::empty_in(mode, arity);
                for t in tuples {
                    r.insert(t)?;
                }
                Ok(r)
            }
            StorageMode::Columnar => {
                // Sort + dedup once, then build columns directly —
                // no per-tuple tree rebalancing.
                let mut v: Vec<Tuple> = Vec::new();
                for t in tuples {
                    if t.arity() != arity {
                        return Err(RelError::TupleArity {
                            expected: arity,
                            found: t.arity(),
                        });
                    }
                    v.push(t);
                }
                v.sort_unstable();
                v.dedup();
                Ok(Relation {
                    arity,
                    store: Store::Col(ColStore::from_run(Run::from_sorted(arity, v.iter()))),
                })
            }
        }
    }

    /// The nullary relation containing the empty tuple — boolean *true*
    /// in the paper's encoding.
    pub fn nullary_true() -> Self {
        let mut r = Relation::empty(0);
        r.insert(Tuple::empty()).expect("empty tuple has arity 0");
        r
    }

    /// The empty nullary relation — boolean *false*.
    pub fn nullary_false() -> Self {
        Relation::empty(0)
    }

    /// Build a columnar relation directly from a sorted run — the
    /// zero-copy landing for columnar join outputs.
    pub fn from_run(run: Run) -> Relation {
        Relation {
            arity: run.arity(),
            store: Store::Col(ColStore::from_run(run)),
        }
    }

    /// The current sorted run, for columnar relations (folding any
    /// pending tails, cached until the next mutation); `None` under the
    /// btree engine. Columnar executors branch on this.
    pub fn columnar_run(&self) -> Option<Arc<Run>> {
        match &self.store {
            Store::Btree { .. } => None,
            Store::Col(c) => Some(Arc::clone(c.run())),
        }
    }

    /// In-place union with a run of the same arity (columnar engines
    /// merge runs; btree engines insert row by row). Returns the number
    /// of tuples actually added.
    pub fn absorb_run(&mut self, run: &Run) -> Result<usize, RelError> {
        if run.arity() != self.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: run.arity(),
            });
        }
        if run.is_empty() {
            return Ok(0);
        }
        match &mut self.store {
            Store::Btree { tuples, cache } => {
                let before = tuples.len();
                for t in run.rows() {
                    tuples.insert(t.clone());
                }
                let grown = tuples.len() - before;
                if grown > 0 {
                    cache.clear();
                }
                Ok(grown)
            }
            Store::Col(c) => {
                let before = c.len();
                c.adopt();
                if c.adds.is_empty() && c.dels.is_empty() {
                    c.base = Arc::new(c.base.union(run));
                } else {
                    let folded = c.run().union(run);
                    *c = ColStore::from_run(folded);
                }
                Ok(c.len() - before)
            }
        }
    }

    /// The storage engine backing this relation.
    pub fn mode(&self) -> StorageMode {
        match &self.store {
            Store::Btree { .. } => StorageMode::Btree,
            Store::Col(_) => StorageMode::Columnar,
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Btree { tuples, .. } => tuples.len(),
            Store::Col(c) => c.len(),
        }
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interpreted as a boolean (paper encoding): nonempty = true.
    pub fn as_bool(&self) -> bool {
        !self.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        match &self.store {
            Store::Btree { tuples, .. } => tuples.contains(t),
            Store::Col(c) => t.arity() == self.arity && c.contains(t),
        }
    }

    /// Insert a tuple; `Ok(true)` if newly inserted.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelError> {
        if t.arity() != self.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: t.arity(),
            });
        }
        match &mut self.store {
            Store::Btree { tuples, cache } => {
                let inserted = tuples.insert(t);
                if inserted {
                    cache.clear();
                }
                Ok(inserted)
            }
            Store::Col(c) => {
                c.adopt();
                if c.dels.remove(&t) {
                    return Ok(true); // was deleted from base; undelete
                }
                if c.base.contains(&t) {
                    return Ok(false);
                }
                Ok(c.adds.insert(t))
            }
        }
    }

    /// Remove a tuple; `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        match &mut self.store {
            Store::Btree { tuples, cache } => {
                let removed = tuples.remove(t);
                if removed {
                    cache.clear();
                }
                removed
            }
            Store::Col(c) => {
                if t.arity() != self.arity {
                    return false;
                }
                c.adopt();
                if c.adds.remove(t) {
                    return true;
                }
                if c.base.contains(t) {
                    return c.dels.insert(t.clone());
                }
                false
            }
        }
    }

    /// A secondary index on the given column subset, built lazily and
    /// cached until the next mutation.
    ///
    /// The returned [`Index`] is an immutable snapshot: it stays valid
    /// even if the relation mutates afterwards (the cache merely stops
    /// handing it out). For columnar relations the index is a view into
    /// the current sorted run, cached on the run itself — so clones
    /// sharing a run share its views, and no lock sits on the read
    /// path.
    pub fn index(&self, cols: &[usize]) -> Result<Arc<Index>, RelError> {
        for &c in cols {
            if c >= self.arity {
                return Err(RelError::ColumnOutOfRange {
                    column: c,
                    arity: self.arity,
                });
            }
        }
        match &self.store {
            Store::Btree { tuples, cache } => {
                if let Some(idx) = cache.0.read().unwrap_or_else(|e| e.into_inner()).get(cols) {
                    return Ok(Arc::clone(idx));
                }
                let idx = Arc::new(Index::build(cols, tuples.iter()));
                cache
                    .0
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(cols.into())
                    .or_insert_with(|| Arc::clone(&idx));
                Ok(idx)
            }
            Store::Col(c) => Ok(c.run().view(cols)),
        }
    }

    /// The delta turning `from` into `self`: `added = self ∖ from`,
    /// `removed = from ∖ self` (arities must agree).
    pub fn diff(&self, from: &Relation) -> Result<RelationDelta, RelError> {
        self.check_same_arity(from)?;
        if let (Store::Col(a), Store::Col(b)) = (&self.store, &from.store) {
            // Vid-level merge walk: only changed rows materialize.
            let (added, removed) = a.run().diff(b.run());
            return Ok(RelationDelta::new(self.arity, added, removed));
        }
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut ours = self.iter().peekable();
        let mut theirs = from.iter().peekable();
        loop {
            match (ours.peek(), theirs.peek()) {
                (None, None) => break,
                (Some(_), None) => added.push(ours.next().unwrap().clone()),
                (None, Some(_)) => removed.push(theirs.next().unwrap().clone()),
                (Some(a), Some(b)) => match a.cmp(b) {
                    std::cmp::Ordering::Less => added.push(ours.next().unwrap().clone()),
                    std::cmp::Ordering::Greater => removed.push(theirs.next().unwrap().clone()),
                    std::cmp::Ordering::Equal => {
                        ours.next();
                        theirs.next();
                    }
                },
            }
        }
        Ok(RelationDelta::new(self.arity, added, removed))
    }

    /// Apply a delta in place: remove `delta.removed()`, insert
    /// `delta.added()`. Inverse of [`Relation::diff`]:
    /// `from.apply_delta(&to.diff(&from)?)` makes `from == to`.
    pub fn apply_delta(&mut self, delta: &RelationDelta) -> Result<(), RelError> {
        crate::delta::check_arity(self.arity, delta.arity())?;
        if delta.is_empty() {
            return Ok(());
        }
        match &mut self.store {
            Store::Btree { tuples, cache } => {
                for t in delta.removed() {
                    tuples.remove(t);
                }
                for t in delta.added() {
                    tuples.insert(t.clone());
                }
                cache.clear();
            }
            Store::Col(c) => {
                // One three-way merge over the current run instead of
                // per-fact tree edits.
                let next = c.run().apply_sorted(delta.added(), delta.removed());
                *c = ColStore::from_run(next);
            }
        }
        Ok(())
    }

    /// Iterate over tuples in order.
    pub fn iter(&self) -> Iter<'_> {
        match &self.store {
            Store::Btree { tuples, .. } => Iter::Btree(tuples.iter()),
            Store::Col(c) => Iter::Slice(c.run().rows().iter()),
        }
    }

    /// Build a same-mode relation from an operation's output tuples,
    /// which are already sorted and deduplicated.
    #[allow(clippy::wrong_self_convention)] // `self` only donates the mode
    fn from_sorted_vec(&self, tuples: Vec<Tuple>) -> Relation {
        match self.mode() {
            StorageMode::Btree => Relation {
                arity: self.arity,
                store: Store::Btree {
                    tuples: tuples.into_iter().collect(),
                    cache: IndexCache::default(),
                },
            },
            StorageMode::Columnar => Relation {
                arity: self.arity,
                store: Store::Col(ColStore::from_run(Run::from_sorted(
                    self.arity,
                    tuples.iter(),
                ))),
            },
        }
    }

    fn col_pair<'a>(&'a self, other: &'a Relation) -> Option<(&'a ColStore, &'a ColStore)> {
        match (&self.store, &other.store) {
            (Store::Col(a), Store::Col(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Set union (arities must agree). Result uses `self`'s mode.
    pub fn union(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        if let Some((a, b)) = self.col_pair(other) {
            return Ok(Relation {
                arity: self.arity,
                store: Store::Col(ColStore::from_run(a.run().union(b.run()))),
            });
        }
        let mut tuples: BTreeSet<Tuple> = self.iter().cloned().collect();
        tuples.extend(other.iter().cloned());
        Ok(self.from_sorted_vec(tuples.into_iter().collect()))
    }

    /// Set intersection (arities must agree). Result uses `self`'s mode.
    pub fn intersect(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        if let Some((a, b)) = self.col_pair(other) {
            return Ok(Relation {
                arity: self.arity,
                store: Store::Col(ColStore::from_run(a.run().intersect(b.run()))),
            });
        }
        let out: Vec<Tuple> = self.iter().filter(|t| other.contains(t)).cloned().collect();
        Ok(self.from_sorted_vec(out))
    }

    /// Set difference `self \ other` (arities must agree). Result uses
    /// `self`'s mode.
    pub fn difference(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        if let Some((a, b)) = self.col_pair(other) {
            return Ok(Relation {
                arity: self.arity,
                store: Store::Col(ColStore::from_run(a.run().difference(b.run()))),
            });
        }
        let out: Vec<Tuple> = self
            .iter()
            .filter(|t| !other.contains(t))
            .cloned()
            .collect();
        Ok(self.from_sorted_vec(out))
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &Relation) -> bool {
        if self.arity != other.arity {
            return false;
        }
        if let Some((a, b)) = self.col_pair(other) {
            return a.run().is_subset(b.run());
        }
        self.iter().all(|t| other.contains(t))
    }

    /// All values occurring in the relation (its active domain).
    pub fn adom(&self) -> BTreeSet<Value> {
        self.iter().flat_map(|t| t.iter().copied()).collect()
    }

    /// A new relation with `f` applied to every value (isomorphic image).
    pub fn map_values(&self, mut f: impl FnMut(&Value) -> Value) -> Relation {
        let mut out: Vec<Tuple> = self.iter().map(|t| t.map(&mut f)).collect();
        out.sort_unstable();
        out.dedup();
        self.from_sorted_vec(out)
    }

    fn check_same_arity(&self, other: &Relation) -> Result<(), RelError> {
        if self.arity != other.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: other.arity,
            });
        }
        Ok(())
    }
}

/// Iterator over a relation's tuples in sorted order (see
/// [`Relation::iter`]).
pub enum Iter<'a> {
    /// BTree engine.
    Btree(std::collections::btree_set::Iter<'a, Tuple>),
    /// Columnar engine (materialized run rows).
    Slice(std::slice::Iter<'a, Tuple>),
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Tuple;
    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            Iter::Btree(it) => it.next(),
            Iter::Slice(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Iter::Btree(it) => it.size_hint(),
            Iter::Slice(it) => it.size_hint(),
        }
    }
}

impl<'a> ExactSizeIterator for Iter<'a> {}

// Caches (btree hash indexes, columnar merged runs and views) are
// evaluation artifacts: they must not take part in the relation's
// value, so `Clone`/`Eq`/`Ord` are written by hand over the tuple
// *sequence* only, and work across storage modes. Columnar clones
// share the base run by `Arc` (and with it the run's view cache);
// btree clones start with a cold cache.
impl Clone for Relation {
    fn clone(&self) -> Self {
        let store = match &self.store {
            Store::Btree { tuples, .. } => Store::Btree {
                tuples: tuples.clone(),
                cache: IndexCache::default(),
            },
            Store::Col(c) => Store::Col(ColStore {
                base: Arc::clone(&c.base),
                adds: c.adds.clone(),
                dels: c.dels.clone(),
                merged: c.merged.get().map_or_else(OnceLock::new, |m| {
                    let l = OnceLock::new();
                    let _ = l.set(Arc::clone(m));
                    l
                }),
            }),
        };
        Relation {
            arity: self.arity,
            store,
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if self.arity != other.arity || self.len() != other.len() {
            return false;
        }
        if let Some((a, b)) = self.col_pair(other) {
            let (ra, rb) = (a.run(), b.run());
            if Arc::ptr_eq(ra, rb) {
                return true;
            }
        }
        self.iter().eq(other.iter())
    }
}

impl Eq for Relation {}

impl PartialOrd for Relation {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Relation {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.arity
            .cmp(&other.arity)
            .then_with(|| self.iter().cmp(other.iter()))
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Owning iterator over a relation's tuples in sorted order.
pub enum IntoIter {
    /// BTree engine.
    Btree(std::collections::btree_set::IntoIter<Tuple>),
    /// Columnar engine.
    Vec(std::vec::IntoIter<Tuple>),
}

impl Iterator for IntoIter {
    type Item = Tuple;
    fn next(&mut self) -> Option<Tuple> {
        match self {
            IntoIter::Btree(it) => it.next(),
            IntoIter::Vec(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            IntoIter::Btree(it) => it.size_hint(),
            IntoIter::Vec(it) => it.size_hint(),
        }
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = IntoIter;
    fn into_iter(self) -> IntoIter {
        match self.store {
            Store::Btree { tuples, .. } => IntoIter::Btree(tuples.into_iter()),
            Store::Col(c) => IntoIter::Vec(c.run().rows().to_vec().into_iter()),
        }
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(arity: usize, ts: Vec<Tuple>) -> Relation {
        Relation::from_tuples(arity, ts).unwrap()
    }

    /// Every test in this module runs against both engines via this
    /// helper where storage behavior matters.
    fn both_modes(f: impl Fn(StorageMode)) {
        f(StorageMode::Btree);
        f(StorageMode::Columnar);
    }

    #[test]
    fn empty_and_insert() {
        both_modes(|m| {
            let mut r = Relation::empty_in(m, 2);
            assert!(r.is_empty());
            assert!(r.insert(tuple![1, 2]).unwrap());
            assert!(!r.insert(tuple![1, 2]).unwrap()); // duplicate
            assert_eq!(r.len(), 1);
            assert!(r.contains(&tuple![1, 2]));
        });
    }

    #[test]
    fn arity_enforced_on_insert() {
        both_modes(|m| {
            let mut r = Relation::empty_in(m, 2);
            assert!(matches!(
                r.insert(tuple![1]),
                Err(RelError::TupleArity {
                    expected: 2,
                    found: 1
                })
            ));
        });
    }

    #[test]
    fn boolean_encoding() {
        assert!(Relation::nullary_true().as_bool());
        assert!(!Relation::nullary_false().as_bool());
        assert_eq!(Relation::nullary_true().arity(), 0);
    }

    #[test]
    fn set_algebra() {
        both_modes(|m| {
            let a = Relation::from_tuples_in(m, 1, vec![tuple![1], tuple![2]]).unwrap();
            let b = Relation::from_tuples_in(m, 1, vec![tuple![2], tuple![3]]).unwrap();
            assert_eq!(a.union(&b).unwrap().len(), 3);
            assert_eq!(a.intersect(&b).unwrap(), rel(1, vec![tuple![2]]));
            assert_eq!(a.difference(&b).unwrap(), rel(1, vec![tuple![1]]));
            assert!(rel(1, vec![tuple![1]]).is_subset(&a));
            assert!(!a.is_subset(&b));
        });
    }

    #[test]
    fn set_algebra_rejects_mixed_arity() {
        let a = rel(1, vec![tuple![1]]);
        let b = rel(2, vec![tuple![1, 2]]);
        assert!(a.union(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn cross_mode_values_agree() {
        let ts = vec![tuple![3, "c"], tuple![1, "a"], tuple![2, "b"]];
        let col = Relation::from_tuples_in(StorageMode::Columnar, 2, ts.clone()).unwrap();
        let bt = Relation::from_tuples_in(StorageMode::Btree, 2, ts).unwrap();
        assert_eq!(col, bt);
        assert_eq!(bt, col);
        assert_eq!(col.cmp(&bt), std::cmp::Ordering::Equal);
        assert!(col.is_subset(&bt) && bt.is_subset(&col));
        assert_eq!(
            col.iter().collect::<Vec<_>>(),
            bt.iter().collect::<Vec<_>>()
        );
        // mixed-mode set algebra takes the fallback path
        assert_eq!(col.union(&bt).unwrap(), bt);
        assert_eq!(col.intersect(&bt).unwrap(), bt);
        assert!(col.difference(&bt).unwrap().is_empty());
        assert_eq!(col.union(&bt).unwrap().mode(), StorageMode::Columnar);
        assert_eq!(bt.union(&col).unwrap().mode(), StorageMode::Btree);
    }

    #[test]
    fn adom_collects_all_values() {
        let r = rel(2, vec![tuple![1, "a"], tuple![2, "a"]]);
        let d = r.adom();
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Value::int(1)));
        assert!(d.contains(&Value::sym("a")));
    }

    #[test]
    fn map_values_is_isomorphic_image() {
        both_modes(|m| {
            let r = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            let s = r.map_values(|v| match v {
                Value::Int(i) => Value::int(i * 10),
                o => *o,
            });
            assert_eq!(s, rel(2, vec![tuple![10, 20]]));
            assert_eq!(s.mode(), m);
        });
    }

    #[test]
    fn deterministic_iteration_order() {
        both_modes(|m| {
            let r = Relation::from_tuples_in(m, 1, vec![tuple![3], tuple![1], tuple![2]]).unwrap();
            let order: Vec<_> = r.iter().cloned().collect();
            assert_eq!(order, vec![tuple![1], tuple![2], tuple![3]]);
        });
    }

    #[test]
    fn remove_and_idempotence() {
        both_modes(|m| {
            let mut r = Relation::from_tuples_in(m, 1, vec![tuple![1]]).unwrap();
            assert!(r.remove(&tuple![1]));
            assert!(!r.remove(&tuple![1]));
            assert!(r.is_empty());
        });
    }

    #[test]
    fn tail_interleavings_match_btree() {
        // insert → remove → re-insert cycles through the add/del tails.
        both_modes(|m| {
            let mut r = Relation::from_tuples_in(m, 1, (0..10).map(|i| tuple![i])).unwrap();
            assert!(r.remove(&tuple![3]));
            assert!(!r.contains(&tuple![3]));
            assert!(r.insert(tuple![3]).unwrap()); // undelete
            assert!(r.contains(&tuple![3]));
            assert!(r.insert(tuple![42]).unwrap());
            assert!(r.remove(&tuple![42])); // remove from the add tail
            assert_eq!(r.len(), 10);
            let expect: Vec<Tuple> = (0..10).map(|i| tuple![i]).collect();
            assert_eq!(r.iter().cloned().collect::<Vec<_>>(), expect);
        });
    }

    #[test]
    fn index_probe_matches_scan() {
        both_modes(|m| {
            let r = Relation::from_tuples_in(m, 2, vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
                .unwrap();
            let idx = r.index(&[0]).unwrap();
            assert_eq!(idx.probe(&[Value::int(1)]).len(), 2);
            let scan: Vec<_> = r
                .iter()
                .filter(|t| t.values()[0] == Value::int(1))
                .cloned()
                .collect();
            assert_eq!(idx.probe(&[Value::int(1)]).to_vec(), scan);
            // non-prefix columns exercise the permutation view
            let idx1 = r.index(&[1]).unwrap();
            assert_eq!(idx1.probe(&[Value::int(3)]).len(), 2);
            assert_eq!(
                idx1.probe(&[Value::int(3)]).to_vec(),
                vec![tuple![1, 3], tuple![2, 3]]
            );
        });
    }

    #[test]
    fn index_is_cached_until_mutation() {
        both_modes(|m| {
            let mut r = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            let a = r.index(&[0]).unwrap();
            let b = r.index(&[0]).unwrap();
            assert!(Arc::ptr_eq(&a, &b));
            r.insert(tuple![5, 6]).unwrap();
            let c = r.index(&[0]).unwrap();
            assert!(!Arc::ptr_eq(&a, &c));
            // the old snapshot is unchanged, the fresh index sees the insert
            assert!(a.probe(&[Value::int(5)]).is_empty());
            assert_eq!(c.probe(&[Value::int(5)]).len(), 1);
        });
    }

    #[test]
    fn clones_share_columnar_index_views() {
        let r = Relation::from_tuples_in(StorageMode::Columnar, 2, vec![tuple![1, 2]]).unwrap();
        let s = r.clone();
        let a = r.index(&[0]).unwrap();
        let b = s.index(&[0]).unwrap();
        assert!(Arc::ptr_eq(&a, &b)); // same run, same view chain
    }

    #[test]
    fn index_rejects_out_of_range_columns() {
        both_modes(|m| {
            let r = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            assert!(matches!(
                r.index(&[2]),
                Err(RelError::ColumnOutOfRange {
                    column: 2,
                    arity: 2
                })
            ));
        });
    }

    #[test]
    fn cache_never_affects_equality() {
        both_modes(|m| {
            let a = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            let b = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            let _ = a.index(&[0]).unwrap();
            let _ = a.index(&[1]).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
            let c = a.clone();
            assert_eq!(a, c);
            // and with a dirty tail folded on one side only:
            let mut d = a.clone();
            d.insert(tuple![9, 9]).unwrap();
            d.remove(&tuple![9, 9]);
            let _ = d.iter().count(); // forces the merged run
            assert_eq!(a, d);
            assert_eq!(a.cmp(&d), std::cmp::Ordering::Equal);
        });
    }

    #[test]
    fn diff_apply_delta_roundtrip() {
        both_modes(|m| {
            let from = Relation::from_tuples_in(m, 1, vec![tuple![1], tuple![2]]).unwrap();
            let to = Relation::from_tuples_in(m, 1, vec![tuple![2], tuple![3]]).unwrap();
            let d = to.diff(&from).unwrap();
            assert_eq!(d.added(), &[tuple![3]]);
            assert_eq!(d.removed(), &[tuple![1]]);
            assert_eq!(d.len(), 2);
            let mut r = from.clone();
            r.apply_delta(&d).unwrap();
            assert_eq!(r, to);
            // empty delta round-trips too
            let e = to.diff(&to).unwrap();
            assert!(e.is_empty());
            r.apply_delta(&e).unwrap();
            assert_eq!(r, to);
        });
    }

    #[test]
    fn diff_rejects_mixed_arity() {
        let a = rel(1, vec![tuple![1]]);
        let b = rel(2, vec![tuple![1, 2]]);
        assert!(a.diff(&b).is_err());
        let mut c = a.clone();
        let d = b.diff(&b).unwrap();
        assert!(c.apply_delta(&d).is_err());
    }

    #[test]
    fn storage_mode_parsing() {
        assert_eq!(StorageMode::parse("btree"), Some(StorageMode::Btree));
        assert_eq!(StorageMode::parse("COLUMNAR"), Some(StorageMode::Columnar));
        assert_eq!(StorageMode::parse("col"), Some(StorageMode::Columnar));
        assert_eq!(StorageMode::parse("nope"), None);
    }
}

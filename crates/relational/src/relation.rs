//! Finite relations: ordered sets of tuples of a fixed arity.

use crate::delta::RelationDelta;
use crate::error::RelError;
use crate::fact::Tuple;
use crate::index::Index;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, RwLock};

/// Lazily built secondary indexes, keyed by indexed column subset.
///
/// The cache never influences a relation's value: it is skipped by
/// `Clone`/`Eq`/`Ord` and dropped whenever the tuple set mutates.
#[derive(Default)]
struct IndexCache(RwLock<BTreeMap<Box<[usize]>, Arc<Index>>>);

impl IndexCache {
    fn clear(&mut self) {
        // `&mut self` guarantees exclusivity; no lock needed.
        self.0.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// A finite `k`-ary relation on **dom**.
///
/// Backed by a `BTreeSet` so iteration order is deterministic — the whole
/// simulator relies on runs being pure functions of their inputs. Joins
/// can additionally request a cached secondary [`Index`] on any column
/// subset via [`Relation::index`].
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
    cache: IndexCache,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
            cache: IndexCache::default(),
        }
    }

    /// Build from tuples, validating arity.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelError> {
        let mut r = Relation::empty(arity);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The nullary relation containing the empty tuple — boolean *true*
    /// in the paper's encoding.
    pub fn nullary_true() -> Self {
        let mut r = Relation::empty(0);
        r.insert(Tuple::empty()).expect("empty tuple has arity 0");
        r
    }

    /// The empty nullary relation — boolean *false*.
    pub fn nullary_false() -> Self {
        Relation::empty(0)
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Interpreted as a boolean (paper encoding): nonempty = true.
    pub fn as_bool(&self) -> bool {
        !self.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Insert a tuple; `Ok(true)` if newly inserted.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelError> {
        if t.arity() != self.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: t.arity(),
            });
        }
        let inserted = self.tuples.insert(t);
        if inserted {
            self.cache.clear();
        }
        Ok(inserted)
    }

    /// Remove a tuple; `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let removed = self.tuples.remove(t);
        if removed {
            self.cache.clear();
        }
        removed
    }

    /// A secondary index on the given column subset, built lazily and
    /// cached until the next mutation.
    ///
    /// The returned [`Index`] is an immutable snapshot: it stays valid
    /// even if the relation mutates afterwards (the cache merely stops
    /// handing it out).
    pub fn index(&self, cols: &[usize]) -> Result<Arc<Index>, RelError> {
        for &c in cols {
            if c >= self.arity {
                return Err(RelError::ColumnOutOfRange {
                    column: c,
                    arity: self.arity,
                });
            }
        }
        if let Some(idx) = self
            .cache
            .0
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(cols)
        {
            return Ok(Arc::clone(idx));
        }
        let idx = Arc::new(Index::build(cols, self.tuples.iter()));
        self.cache
            .0
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(cols.into())
            .or_insert_with(|| Arc::clone(&idx));
        Ok(idx)
    }

    /// The delta turning `from` into `self`: `added = self ∖ from`,
    /// `removed = from ∖ self` (arities must agree).
    pub fn diff(&self, from: &Relation) -> Result<RelationDelta, RelError> {
        self.check_same_arity(from)?;
        let added = self.tuples.difference(&from.tuples).cloned().collect();
        let removed = from.tuples.difference(&self.tuples).cloned().collect();
        Ok(RelationDelta::new(self.arity, added, removed))
    }

    /// Apply a delta in place: remove `delta.removed()`, insert
    /// `delta.added()`. Inverse of [`Relation::diff`]:
    /// `from.apply_delta(&to.diff(&from)?)` makes `from == to`.
    pub fn apply_delta(&mut self, delta: &RelationDelta) -> Result<(), RelError> {
        crate::delta::check_arity(self.arity, delta.arity())?;
        if delta.is_empty() {
            return Ok(());
        }
        for t in delta.removed() {
            self.tuples.remove(t);
        }
        for t in delta.added() {
            self.tuples.insert(t.clone());
        }
        self.cache.clear();
        Ok(())
    }

    /// Iterate over tuples in order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Build from an already-validated tuple set (no per-tuple checks).
    fn from_set(arity: usize, tuples: BTreeSet<Tuple>) -> Self {
        Relation {
            arity,
            tuples,
            cache: IndexCache::default(),
        }
    }

    /// Set union (arities must agree).
    pub fn union(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        Ok(Relation::from_set(self.arity, tuples))
    }

    /// Set intersection (arities must agree).
    pub fn intersect(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        Ok(Relation::from_set(
            self.arity,
            self.tuples.intersection(&other.tuples).cloned().collect(),
        ))
    }

    /// Set difference `self \ other` (arities must agree).
    pub fn difference(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        Ok(Relation::from_set(
            self.arity,
            self.tuples.difference(&other.tuples).cloned().collect(),
        ))
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.tuples.is_subset(&other.tuples)
    }

    /// All values occurring in the relation (its active domain).
    pub fn adom(&self) -> BTreeSet<Value> {
        self.tuples.iter().flat_map(|t| t.iter().cloned()).collect()
    }

    /// A new relation with `f` applied to every value (isomorphic image).
    pub fn map_values(&self, mut f: impl FnMut(&Value) -> Value) -> Relation {
        Relation::from_set(
            self.arity,
            self.tuples.iter().map(|t| t.map(&mut f)).collect(),
        )
    }

    fn check_same_arity(&self, other: &Relation) -> Result<(), RelError> {
        if self.arity != other.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: other.arity,
            });
        }
        Ok(())
    }
}

// The index cache is an evaluation artifact: it must not take part in
// the relation's value, so `Clone`/`Eq`/`Ord` are written by hand over
// (arity, tuples) only. Clones start with a cold cache — they are
// usually about to be mutated.
impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation::from_set(self.arity, self.tuples.clone())
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl PartialOrd for Relation {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Relation {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arity, &self.tuples).cmp(&(other.arity, &other.tuples))
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = std::collections::btree_set::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(arity: usize, ts: Vec<Tuple>) -> Relation {
        Relation::from_tuples(arity, ts).unwrap()
    }

    #[test]
    fn empty_and_insert() {
        let mut r = Relation::empty(2);
        assert!(r.is_empty());
        assert!(r.insert(tuple![1, 2]).unwrap());
        assert!(!r.insert(tuple![1, 2]).unwrap()); // duplicate
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![1, 2]));
    }

    #[test]
    fn arity_enforced_on_insert() {
        let mut r = Relation::empty(2);
        assert!(matches!(
            r.insert(tuple![1]),
            Err(RelError::TupleArity {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn boolean_encoding() {
        assert!(Relation::nullary_true().as_bool());
        assert!(!Relation::nullary_false().as_bool());
        assert_eq!(Relation::nullary_true().arity(), 0);
    }

    #[test]
    fn set_algebra() {
        let a = rel(1, vec![tuple![1], tuple![2]]);
        let b = rel(1, vec![tuple![2], tuple![3]]);
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.intersect(&b).unwrap(), rel(1, vec![tuple![2]]));
        assert_eq!(a.difference(&b).unwrap(), rel(1, vec![tuple![1]]));
        assert!(rel(1, vec![tuple![1]]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn set_algebra_rejects_mixed_arity() {
        let a = rel(1, vec![tuple![1]]);
        let b = rel(2, vec![tuple![1, 2]]);
        assert!(a.union(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn adom_collects_all_values() {
        let r = rel(2, vec![tuple![1, "a"], tuple![2, "a"]]);
        let d = r.adom();
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Value::int(1)));
        assert!(d.contains(&Value::sym("a")));
    }

    #[test]
    fn map_values_is_isomorphic_image() {
        let r = rel(2, vec![tuple![1, 2]]);
        let s = r.map_values(|v| match v {
            Value::Int(i) => Value::int(i * 10),
            o => o.clone(),
        });
        assert_eq!(s, rel(2, vec![tuple![10, 20]]));
    }

    #[test]
    fn deterministic_iteration_order() {
        let r = rel(1, vec![tuple![3], tuple![1], tuple![2]]);
        let order: Vec<_> = r.iter().cloned().collect();
        assert_eq!(order, vec![tuple![1], tuple![2], tuple![3]]);
    }

    #[test]
    fn remove_and_idempotence() {
        let mut r = rel(1, vec![tuple![1]]);
        assert!(r.remove(&tuple![1]));
        assert!(!r.remove(&tuple![1]));
        assert!(r.is_empty());
    }

    #[test]
    fn index_probe_matches_scan() {
        let r = rel(2, vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]]);
        let idx = r.index(&[0]).unwrap();
        assert_eq!(idx.probe(&[Value::int(1)]).len(), 2);
        let scan: Vec<_> = r
            .iter()
            .filter(|t| t.values()[0] == Value::int(1))
            .cloned()
            .collect();
        assert_eq!(idx.probe(&[Value::int(1)]), scan.as_slice());
    }

    #[test]
    fn index_is_cached_until_mutation() {
        let mut r = rel(2, vec![tuple![1, 2]]);
        let a = r.index(&[0]).unwrap();
        let b = r.index(&[0]).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        r.insert(tuple![5, 6]).unwrap();
        let c = r.index(&[0]).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // the old snapshot is unchanged, the fresh index sees the insert
        assert!(a.probe(&[Value::int(5)]).is_empty());
        assert_eq!(c.probe(&[Value::int(5)]).len(), 1);
    }

    #[test]
    fn index_rejects_out_of_range_columns() {
        let r = rel(2, vec![tuple![1, 2]]);
        assert!(matches!(
            r.index(&[2]),
            Err(RelError::ColumnOutOfRange {
                column: 2,
                arity: 2
            })
        ));
    }

    #[test]
    fn cache_never_affects_equality() {
        let a = rel(2, vec![tuple![1, 2]]);
        let b = rel(2, vec![tuple![1, 2]]);
        let _ = a.index(&[0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let c = a.clone();
        assert_eq!(a, c);
    }

    #[test]
    fn diff_apply_delta_roundtrip() {
        let from = rel(1, vec![tuple![1], tuple![2]]);
        let to = rel(1, vec![tuple![2], tuple![3]]);
        let d = to.diff(&from).unwrap();
        assert_eq!(d.added(), &[tuple![3]]);
        assert_eq!(d.removed(), &[tuple![1]]);
        assert_eq!(d.len(), 2);
        let mut r = from.clone();
        r.apply_delta(&d).unwrap();
        assert_eq!(r, to);
        // empty delta round-trips too
        let e = to.diff(&to).unwrap();
        assert!(e.is_empty());
        r.apply_delta(&e).unwrap();
        assert_eq!(r, to);
    }

    #[test]
    fn diff_rejects_mixed_arity() {
        let a = rel(1, vec![tuple![1]]);
        let b = rel(2, vec![tuple![1, 2]]);
        assert!(a.diff(&b).is_err());
        let mut c = a.clone();
        let d = b.diff(&b).unwrap();
        assert!(c.apply_delta(&d).is_err());
    }
}

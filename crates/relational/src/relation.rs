//! Finite relations: ordered sets of tuples of a fixed arity.
//!
//! Three physical storage engines live behind the one `Relation` API:
//!
//! * **adaptive** (the default): relations stay in a flat *unsorted*
//!   append log with tombstones ([`SmallTail`]) while they are small —
//!   inserts, removes, and membership are O(tail) linear probes with
//!   zero sort/fold cost, exactly the shape of the round executors'
//!   tiny per-node relations — and **promote** to sorted columnar runs
//!   when they outgrow [`adaptive_promote_len`], when a consumer
//!   demands order while they sit above the hysteresis floor
//!   ([`adaptive_reentry_len`], a quarter of the promotion threshold),
//!   or when a bulk run absorption carries them past the floor.
//!   Promotion is one-way per growth episode; bulk rebuilds (delta
//!   application, [`crate::Instance::set_relation`]) re-enter the
//!   small regime only at or below the floor — keeping the folded run
//!   as the pre-built sorted cache — so churn-heavy workloads never
//!   flap;
//! * **columnar** (`RTX_STORAGE=columnar`): an immutable sorted
//!   [`Run`] of flat `Vec<Vid>` columns plus small sorted add/delete
//!   *tails*; reads that need the full sorted view fold the tails into
//!   a fresh run once (cached until the next mutation), set algebra
//!   and delta application are galloping merge walks over runs, and
//!   indexes are permutation/range views into the run;
//! * **btree** (`RTX_STORAGE=btree`): the original `BTreeSet<Tuple>`
//!   representation, kept as the equivalence oracle and measurable
//!   ablation.
//!
//! All engines present identical *values*: same iteration order, same
//! equality, same `Ord` — `tests/storage.rs` holds them to that under
//! randomized schedules. Mixed-mode comparisons are supported (an
//! adaptive relation can equal a btree one).

use crate::delta::RelationDelta;
use crate::error::RelError;
use crate::fact::Tuple;
use crate::index::Index;
use crate::runs::{Run, SmallTail, StatCells, StorageStats};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Which physical storage engine a [`Relation`] uses.
///
/// The process-wide default is [`StorageMode::Adaptive`], overridable
/// with `RTX_STORAGE=columnar` (always-sorted runs) or
/// `RTX_STORAGE=btree` (the original oracle engine); individual
/// relations and instances can be built in an explicit mode with the
/// `*_in` constructors, e.g. for in-process equivalence testing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StorageMode {
    /// Ordered-set storage: `BTreeSet<Tuple>` + cached hash indexes.
    Btree,
    /// Sorted columnar runs of interned ids + index views.
    Columnar,
    /// Per-relation adaptive storage: small relations live in a flat
    /// unsorted log ([`SmallTail`]) and promote to sorted columnar
    /// runs when they outgrow [`adaptive_promote_len`] or a consumer
    /// demands order above the [`adaptive_reentry_len`] hysteresis
    /// floor.
    Adaptive,
}

impl StorageMode {
    /// Parse a mode name (`"btree"` / `"columnar"` / `"adaptive"`).
    pub fn parse(s: &str) -> Option<StorageMode> {
        match s.to_ascii_lowercase().as_str() {
            "btree" => Some(StorageMode::Btree),
            "columnar" | "col" => Some(StorageMode::Columnar),
            "adaptive" | "auto" => Some(StorageMode::Adaptive),
            _ => None,
        }
    }

    /// The process-wide default mode: `RTX_STORAGE` if set and valid,
    /// else [`StorageMode::Adaptive`]. Read once and cached.
    pub fn global() -> StorageMode {
        static MODE: OnceLock<StorageMode> = OnceLock::new();
        *MODE.get_or_init(|| {
            rtx_core::env::parse_choice(
                "RTX_STORAGE",
                "btree|columnar|adaptive",
                StorageMode::parse,
            )
            .unwrap_or(StorageMode::Adaptive)
        })
    }

    /// Can relations of this mode hand out sorted runs
    /// ([`Relation::columnar_run`] is always `Some`)? True for both
    /// [`StorageMode::Columnar`] and [`StorageMode::Adaptive`] — the
    /// run-based query executors branch on this.
    pub fn uses_runs(self) -> bool {
        !matches!(self, StorageMode::Btree)
    }
}

/// The live-tuple count at which an adaptive small relation promotes
/// to sorted columnar runs. Defaults to 256, overridable with
/// `RTX_STORAGE_PROMOTE` (clamped to ≥ 4; read once). The
/// `storage-adaptive/threshold-sweep` bench group justifies the
/// default empirically.
pub fn adaptive_promote_len() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        rtx_core::env::parse_u64("RTX_STORAGE_PROMOTE")
            .map(|v| (v as usize).max(4))
            .unwrap_or(256)
    })
}

/// The hysteresis floor of the adaptive engine: a quarter of
/// [`adaptive_promote_len`]. Order demands on relations at or below
/// this size never trigger promotion, and bulk rebuilds re-enter the
/// small regime only at or below it — a promoted relation is never
/// demoted above the floor, so promote/demote cycles cannot flap.
pub fn adaptive_reentry_len() -> usize {
    adaptive_promote_len() / 4
}

/// Lazily built secondary hash indexes for the btree engine, keyed by
/// indexed column subset.
///
/// The cache never influences a relation's value: it is skipped by
/// `Clone`/`Eq`/`Ord` and dropped whenever the tuple set mutates. (The
/// columnar engine needs no such cache — its index views hang off the
/// run itself, one lock-free chain per run generation. The adaptive
/// small regime rebuilds indexes from the log on demand; at its scale
/// a build is cheaper than cache bookkeeping.)
#[derive(Default)]
struct IndexCache(RwLock<BTreeMap<Box<[usize]>, Arc<Index>>>);

impl IndexCache {
    fn clear(&mut self) {
        // `&mut self` guarantees exclusivity; no lock needed.
        self.0.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Columnar store: an immutable sorted base run plus small mutable
/// tails, folded together on demand.
///
/// Invariants: `adds ∩ base = ∅` and `dels ⊆ base` (so `adds` and
/// `dels` are disjoint and `len = base − dels + adds` exactly); the
/// `merged` cache, when set, is exactly `(base ∖ dels) ∪ adds` — any
/// mutation first *adopts* a set `merged` as the new base (advancing
/// the run generation) and always leaves `merged` unset.
///
/// `adaptive` marks a store the adaptive engine promoted (or built
/// above the small threshold): it reports [`StorageMode::Adaptive`]
/// from [`Relation::mode`] and may demote back to the small regime on
/// a bulk rebuild that lands at or below [`adaptive_reentry_len`].
#[derive(Clone)]
struct ColStore {
    base: Arc<Run>,
    adds: BTreeSet<Tuple>,
    dels: BTreeSet<Tuple>,
    merged: OnceLock<Arc<Run>>,
    adaptive: bool,
    stats: StatCells,
}

impl ColStore {
    fn from_run(run: Run) -> ColStore {
        ColStore::new(Arc::new(run), false)
    }

    fn new(base: Arc<Run>, adaptive: bool) -> ColStore {
        ColStore {
            base,
            adds: BTreeSet::new(),
            dels: BTreeSet::new(),
            merged: OnceLock::new(),
            adaptive,
            stats: StatCells::default(),
        }
    }

    fn len(&self) -> usize {
        self.base.len() - self.dels.len() + self.adds.len()
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.adds.contains(t) || (!self.dels.contains(t) && self.base.contains(t))
    }

    /// The current sorted run — the base itself when the tails are
    /// empty, else the cached fold of base and tails.
    fn run(&self) -> &Arc<Run> {
        if self.adds.is_empty() && self.dels.is_empty() {
            &self.base
        } else {
            if self.merged.get().is_none() {
                self.stats.note_fold();
            }
            self.merged.get_or_init(|| {
                let add: Vec<Tuple> = self.adds.iter().cloned().collect();
                let del: Vec<Tuple> = self.dels.iter().cloned().collect();
                Arc::new(self.base.apply_sorted(&add, &del))
            })
        }
    }

    /// If a read has already folded the tails into a run, promote it to
    /// be the new base (fresh run generation); otherwise just drop the
    /// stale cache. Called before every mutation.
    fn adopt(&mut self) {
        if let Some(m) = self.merged.take() {
            self.base = m;
            self.adds.clear();
            self.dels.clear();
        }
    }

    /// Replace the contents with a freshly built run (bulk rebuild),
    /// keeping the adaptive flag and counters.
    fn replace_base(&mut self, run: Run) {
        self.base = Arc::new(run);
        self.adds.clear();
        self.dels.clear();
        self.merged = OnceLock::new();
    }

    fn note_tail(&self) {
        self.stats.note_tail_len(self.adds.len() + self.dels.len());
    }
}

enum Store {
    Btree {
        tuples: BTreeSet<Tuple>,
        cache: IndexCache,
    },
    Col(ColStore),
    Small(SmallTail),
}

/// A finite `k`-ary relation on **dom**.
///
/// Iteration order is deterministic (sorted) whatever the storage
/// engine — the whole simulator relies on runs being pure functions of
/// their inputs. Joins can additionally request a cached secondary
/// [`Index`] on any column subset via [`Relation::index`].
pub struct Relation {
    arity: usize,
    store: Store,
}

/// Build an adaptive-mode store from sorted, duplicate-free tuples:
/// the small regime at or below the hysteresis floor, a promoted run
/// above it.
fn adaptive_store_from_sorted(arity: usize, tuples: Vec<Tuple>) -> Store {
    if tuples.len() <= adaptive_reentry_len() {
        Store::Small(SmallTail::from_sorted(arity, tuples))
    } else {
        Store::Col(ColStore::new(
            Arc::new(Run::from_sorted(arity, tuples.iter())),
            true,
        ))
    }
}

impl Relation {
    /// The empty relation of the given arity, in the process default
    /// storage mode.
    pub fn empty(arity: usize) -> Self {
        Relation::empty_in(StorageMode::global(), arity)
    }

    /// The empty relation of the given arity in an explicit mode.
    pub fn empty_in(mode: StorageMode, arity: usize) -> Self {
        let store = match mode {
            StorageMode::Btree => Store::Btree {
                tuples: BTreeSet::new(),
                cache: IndexCache::default(),
            },
            StorageMode::Columnar => Store::Col(ColStore::from_run(Run::empty(arity))),
            StorageMode::Adaptive => Store::Small(SmallTail::new(arity)),
        };
        Relation { arity, store }
    }

    /// Build from tuples, validating arity.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelError> {
        Relation::from_tuples_in(StorageMode::global(), arity, tuples)
    }

    /// Build from tuples in an explicit mode, validating arity.
    pub fn from_tuples_in(
        mode: StorageMode,
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelError> {
        match mode {
            StorageMode::Btree => {
                let mut r = Relation::empty_in(mode, arity);
                for t in tuples {
                    r.insert(t)?;
                }
                Ok(r)
            }
            StorageMode::Columnar | StorageMode::Adaptive => {
                // Sort + dedup once, then build columns directly —
                // no per-tuple tree rebalancing.
                let mut v: Vec<Tuple> = Vec::new();
                for t in tuples {
                    if t.arity() != arity {
                        return Err(RelError::TupleArity {
                            expected: arity,
                            found: t.arity(),
                        });
                    }
                    v.push(t);
                }
                v.sort_unstable();
                v.dedup();
                let store = if mode == StorageMode::Adaptive {
                    adaptive_store_from_sorted(arity, v)
                } else {
                    Store::Col(ColStore::from_run(Run::from_sorted(arity, v.iter())))
                };
                Ok(Relation { arity, store })
            }
        }
    }

    /// The nullary relation containing the empty tuple — boolean *true*
    /// in the paper's encoding.
    pub fn nullary_true() -> Self {
        let mut r = Relation::empty(0);
        r.insert(Tuple::empty()).expect("empty tuple has arity 0");
        r
    }

    /// The empty nullary relation — boolean *false*.
    pub fn nullary_false() -> Self {
        Relation::empty(0)
    }

    /// Build a columnar relation directly from a sorted run — the
    /// zero-copy landing for columnar join outputs. (Plain columnar,
    /// not adaptive: outputs headed for an adaptive instance are
    /// re-housed by [`crate::Instance::set_relation`] /
    /// [`Relation::into_mode`].)
    pub fn from_run(run: Run) -> Relation {
        Relation {
            arity: run.arity(),
            store: Store::Col(ColStore::from_run(run)),
        }
    }

    /// The current sorted run, for run-backed relations; `None` under
    /// the btree engine. Columnar relations fold any pending tails
    /// (cached until the next mutation); adaptive small relations sort
    /// their log on demand — which **is** the order-demand signal that
    /// makes the next mutation above the hysteresis floor promote.
    /// Columnar executors branch on this.
    pub fn columnar_run(&self) -> Option<Arc<Run>> {
        match &self.store {
            Store::Btree { .. } => None,
            Store::Col(c) => Some(Arc::clone(c.run())),
            Store::Small(s) => Some(Arc::clone(s.sorted_run())),
        }
    }

    /// In-place union with a run of the same arity (run-backed engines
    /// merge runs; btree engines insert row by row). Adaptive small
    /// relations point-insert only while the combined size stays at or
    /// below the hysteresis floor, else promote first and take the
    /// galloping merge: absorbing a run is a bulk operation, so the
    /// cheap-probe argument that lets point inserts ride to the full
    /// promotion threshold does not apply — repeated O(|tail|·|run|)
    /// absorbs are exactly the fixpoint inner loop the columnar engine
    /// wins. Returns the number of tuples actually added.
    pub fn absorb_run(&mut self, run: &Run) -> Result<usize, RelError> {
        if run.arity() != self.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: run.arity(),
            });
        }
        if run.is_empty() {
            return Ok(0);
        }
        self.adaptive_pre_mutation();
        if matches!(&self.store, Store::Small(s) if s.len() + run.len() > adaptive_reentry_len()) {
            self.promote();
        }
        match &mut self.store {
            Store::Btree { tuples, cache } => {
                let before = tuples.len();
                for t in run.rows() {
                    tuples.insert(t.clone());
                }
                let grown = tuples.len() - before;
                if grown > 0 {
                    cache.clear();
                }
                Ok(grown)
            }
            Store::Col(c) => {
                let before = c.len();
                c.adopt();
                if c.adds.is_empty() && c.dels.is_empty() {
                    c.base = Arc::new(c.base.union(run));
                } else {
                    let folded = c.run().union(run);
                    c.replace_base(folded);
                }
                Ok(c.len() - before)
            }
            Store::Small(s) => {
                let mut grown = 0usize;
                for t in run.rows() {
                    if s.insert(t.clone()) {
                        grown += 1;
                    }
                }
                Ok(grown)
            }
        }
    }

    /// The storage engine backing this relation. Both regimes of the
    /// adaptive engine (small log and promoted runs) report
    /// [`StorageMode::Adaptive`]; see [`Relation::in_small_regime`].
    pub fn mode(&self) -> StorageMode {
        match &self.store {
            Store::Btree { .. } => StorageMode::Btree,
            Store::Col(c) if c.adaptive => StorageMode::Adaptive,
            Store::Col(_) => StorageMode::Columnar,
            Store::Small(_) => StorageMode::Adaptive,
        }
    }

    /// Is this relation currently in the adaptive engine's small
    /// (unsorted log) regime? Always `false` for the btree and
    /// columnar engines; observability for promotion-boundary tests
    /// and diagnostics.
    pub fn in_small_regime(&self) -> bool {
        matches!(&self.store, Store::Small(_))
    }

    /// A snapshot of this relation's storage counters (promotions,
    /// folds, small-regime probes, tail high-water mark). Counters
    /// travel with the relation through clones, promotions, and
    /// demotions; the btree engine reports all zeros.
    pub fn storage_stats(&self) -> StorageStats {
        match &self.store {
            Store::Btree { .. } => StorageStats::default(),
            Store::Col(c) => c.stats.snapshot(),
            Store::Small(s) => s.stats_cells().snapshot(),
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Btree { tuples, .. } => tuples.len(),
            Store::Col(c) => c.len(),
            Store::Small(s) => s.len(),
        }
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interpreted as a boolean (paper encoding): nonempty = true.
    pub fn as_bool(&self) -> bool {
        !self.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        match &self.store {
            Store::Btree { tuples, .. } => tuples.contains(t),
            Store::Col(c) => t.arity() == self.arity && c.contains(t),
            Store::Small(s) => t.arity() == self.arity && s.contains(t),
        }
    }

    /// Promote an adaptive small relation to sorted columnar runs:
    /// adopt the sorted view of the log (building it if no consumer
    /// has yet) as the base run of a tail-less [`ColStore`], carrying
    /// the counters across. One-way per growth episode.
    fn promote(&mut self) {
        if let Store::Small(s) = &self.store {
            let base = Arc::clone(s.sorted_run());
            let stats = s.stats_cells().clone();
            stats.note_promotion();
            rtx_obs::registry::add("storage.promotions", 1);
            if rtx_obs::tracing() {
                rtx_obs::event!("storage", "promote", "len" => s.len());
            }
            let mut col = ColStore::new(base, true);
            col.stats = stats;
            self.store = Store::Col(col);
        }
    }

    /// The order-demand half of the promotion policy, run before every
    /// point mutation: a small relation whose sorted view was demanded
    /// since the last mutation, and which sits above the hysteresis
    /// floor, promotes now — the already-built sorted run becomes the
    /// base for free. At or below the floor the demand is ignored
    /// (the next mutation just drops the cache), so tiny hot relations
    /// never leave the small regime however often they are scanned.
    fn adaptive_pre_mutation(&mut self) {
        let promote = matches!(
            &self.store,
            Store::Small(s) if s.order_demanded() && s.len() > adaptive_reentry_len()
        );
        if promote {
            self.promote();
        }
    }

    /// The size half of the promotion policy, run after growth: a
    /// small relation reaching [`adaptive_promote_len`] promotes.
    fn adaptive_post_growth(&mut self) {
        let promote = matches!(&self.store, Store::Small(s) if s.len() >= adaptive_promote_len());
        if promote {
            self.promote();
        }
    }

    /// Demote a promoted adaptive relation whose *bulk rebuild* landed
    /// at or below the hysteresis floor back into the small regime
    /// (the "clear / rebuild re-enters" half of the policy). Point
    /// removals never demote.
    fn adaptive_post_rebuild(&mut self) {
        let demote = matches!(
            &self.store,
            Store::Col(c) if c.adaptive && c.len() <= adaptive_reentry_len()
        );
        if demote {
            if let Store::Col(c) = &self.store {
                // Keep the folded run as the tail's pre-built sorted
                // cache: a per-tick bulk rebuild that lands small would
                // otherwise re-sort and rebuild index views on the very
                // next ordered read, every tick.
                let run = Arc::clone(c.run());
                let stats = c.stats.clone();
                rtx_obs::registry::add("storage.demotions", 1);
                if rtx_obs::tracing() {
                    rtx_obs::event!("storage", "demote", "len" => c.len());
                }
                self.store = Store::Small(SmallTail::from_run(run, stats));
            }
        }
    }

    /// Insert a tuple; `Ok(true)` if newly inserted.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelError> {
        if t.arity() != self.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: t.arity(),
            });
        }
        self.adaptive_pre_mutation();
        let inserted = match &mut self.store {
            Store::Btree { tuples, cache } => {
                let inserted = tuples.insert(t);
                if inserted {
                    cache.clear();
                }
                inserted
            }
            Store::Col(c) => {
                c.adopt();
                if c.dels.remove(&t) {
                    true // was deleted from base; undelete
                } else if c.base.contains(&t) {
                    false
                } else {
                    let inserted = c.adds.insert(t);
                    c.note_tail();
                    inserted
                }
            }
            Store::Small(s) => s.insert(t),
        };
        self.adaptive_post_growth();
        Ok(inserted)
    }

    /// Remove a tuple; `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if t.arity() != self.arity {
            return false;
        }
        self.adaptive_pre_mutation();
        match &mut self.store {
            Store::Btree { tuples, cache } => {
                let removed = tuples.remove(t);
                if removed {
                    cache.clear();
                }
                removed
            }
            Store::Col(c) => {
                c.adopt();
                if c.adds.remove(t) {
                    return true;
                }
                if c.base.contains(t) {
                    let removed = c.dels.insert(t.clone());
                    c.note_tail();
                    return removed;
                }
                false
            }
            Store::Small(s) => s.remove(t),
        }
    }

    /// A secondary index on the given column subset.
    ///
    /// The returned [`Index`] is an immutable snapshot: it stays valid
    /// even if the relation mutates afterwards. Btree indexes are
    /// cached until the next mutation; columnar indexes are views into
    /// the current sorted run, cached on the run itself — so clones
    /// sharing a run share its views, and no lock sits on the read
    /// path. Adaptive small relations memoize a sorted run of the log
    /// (without registering an order demand, so probes alone never
    /// promote) and serve views off it — repeated probes of the same
    /// small relation, the access pattern of magic-set guards, sort
    /// once per mutation instead of once per call.
    pub fn index(&self, cols: &[usize]) -> Result<Arc<Index>, RelError> {
        for &c in cols {
            if c >= self.arity {
                return Err(RelError::ColumnOutOfRange {
                    column: c,
                    arity: self.arity,
                });
            }
        }
        match &self.store {
            Store::Btree { tuples, cache } => {
                if let Some(idx) = cache.0.read().unwrap_or_else(|e| e.into_inner()).get(cols) {
                    return Ok(Arc::clone(idx));
                }
                let idx = Arc::new(Index::build(cols, tuples.iter()));
                cache
                    .0
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(cols.into())
                    .or_insert_with(|| Arc::clone(&idx));
                Ok(idx)
            }
            Store::Col(c) => Ok(c.run().view(cols)),
            Store::Small(s) => Ok(s.cached_run().view(cols)),
        }
    }

    /// The delta turning `from` into `self`: `added = self ∖ from`,
    /// `removed = from ∖ self` (arities must agree).
    ///
    /// Delta normalization is an order demand: adaptive small operands
    /// sort their logs (and may promote on their next mutation if
    /// above the hysteresis floor).
    pub fn diff(&self, from: &Relation) -> Result<RelationDelta, RelError> {
        self.check_same_arity(from)?;
        if let Some((ra, rb)) = self.run_pair(from) {
            // Vid-level merge walk: only changed rows materialize.
            let (added, removed) = ra.diff(&rb);
            return Ok(RelationDelta::new(self.arity, added, removed));
        }
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut ours = self.iter().peekable();
        let mut theirs = from.iter().peekable();
        loop {
            match (ours.peek(), theirs.peek()) {
                (None, None) => break,
                (Some(_), None) => added.push(ours.next().unwrap().clone()),
                (None, Some(_)) => removed.push(theirs.next().unwrap().clone()),
                (Some(a), Some(b)) => match a.cmp(b) {
                    std::cmp::Ordering::Less => added.push(ours.next().unwrap().clone()),
                    std::cmp::Ordering::Greater => removed.push(theirs.next().unwrap().clone()),
                    std::cmp::Ordering::Equal => {
                        ours.next();
                        theirs.next();
                    }
                },
            }
        }
        Ok(RelationDelta::new(self.arity, added, removed))
    }

    /// Apply a delta in place: remove `delta.removed()`, insert
    /// `delta.added()`. Inverse of [`Relation::diff`]:
    /// `from.apply_delta(&to.diff(&from)?)` makes `from == to`.
    ///
    /// Adaptive small relations apply the delta as point operations —
    /// no run merge — unless the result could outgrow the promotion
    /// threshold; promoted adaptive relations rebuild with one merge
    /// and re-enter the small regime when the result lands at or below
    /// the hysteresis floor.
    pub fn apply_delta(&mut self, delta: &RelationDelta) -> Result<(), RelError> {
        crate::delta::check_arity(self.arity, delta.arity())?;
        if delta.is_empty() {
            return Ok(());
        }
        self.adaptive_pre_mutation();
        if matches!(
            &self.store,
            Store::Small(s) if s.len() + delta.added().len() >= adaptive_promote_len()
        ) {
            self.promote();
        }
        match &mut self.store {
            Store::Btree { tuples, cache } => {
                for t in delta.removed() {
                    tuples.remove(t);
                }
                for t in delta.added() {
                    tuples.insert(t.clone());
                }
                cache.clear();
            }
            Store::Col(c) => {
                // One three-way merge over the current run instead of
                // per-fact tree edits.
                let next = c.run().apply_sorted(delta.added(), delta.removed());
                c.replace_base(next);
            }
            Store::Small(s) => {
                for t in delta.removed() {
                    s.remove(t);
                }
                for t in delta.added() {
                    s.insert(t.clone());
                }
            }
        }
        self.adaptive_post_rebuild();
        Ok(())
    }

    /// Iterate over tuples in order. (An order demand: adaptive small
    /// relations sort their log on first call and cache it until the
    /// next mutation.)
    pub fn iter(&self) -> Iter<'_> {
        match &self.store {
            Store::Btree { tuples, .. } => Iter::Btree(tuples.iter()),
            Store::Col(c) => Iter::Slice(c.run().rows().iter()),
            Store::Small(s) => Iter::Slice(s.sorted_run().rows().iter()),
        }
    }

    /// Build a same-mode relation from an operation's output tuples,
    /// which are already sorted and deduplicated.
    #[allow(clippy::wrong_self_convention)] // `self` only donates the mode
    fn from_sorted_vec(&self, tuples: Vec<Tuple>) -> Relation {
        let store = match self.mode() {
            StorageMode::Btree => Store::Btree {
                tuples: tuples.into_iter().collect(),
                cache: IndexCache::default(),
            },
            StorageMode::Columnar => Store::Col(ColStore::from_run(Run::from_sorted(
                self.arity,
                tuples.iter(),
            ))),
            StorageMode::Adaptive => adaptive_store_from_sorted(self.arity, tuples),
        };
        Relation {
            arity: self.arity,
            store,
        }
    }

    /// Build a same-mode relation from a run an operation produced.
    #[allow(clippy::wrong_self_convention)] // `self` only donates the mode
    fn from_result_run(&self, run: Run) -> Relation {
        let store = match self.mode() {
            StorageMode::Btree => Store::Btree {
                tuples: run.rows().iter().cloned().collect(),
                cache: IndexCache::default(),
            },
            StorageMode::Columnar => Store::Col(ColStore::from_run(run)),
            StorageMode::Adaptive if run.len() <= adaptive_reentry_len() => Store::Small(
                // Keep the produced run as the pre-built sorted cache
                // so a downstream ordered read costs no re-sort.
                SmallTail::from_run(Arc::new(run), StatCells::default()),
            ),
            StorageMode::Adaptive => Store::Col(ColStore::new(Arc::new(run), true)),
        };
        Relation {
            arity: self.arity,
            store,
        }
    }

    /// Re-house the same tuples under `mode` (a no-op when the modes
    /// already agree).
    ///
    /// [`crate::Instance::set_relation`] uses this to keep instances
    /// storage-homogeneous: query outputs land as plain columnar runs
    /// and are re-flagged — or, when at or below the hysteresis floor,
    /// dropped into the small regime — on their way into an adaptive
    /// instance. This is the "bulk rebuild re-enters the small regime"
    /// half of the promotion hysteresis.
    pub fn into_mode(self, mode: StorageMode) -> Relation {
        if self.mode() == mode {
            return self;
        }
        let arity = self.arity;
        match mode {
            StorageMode::Btree => {
                let tuples: BTreeSet<Tuple> = self.iter().cloned().collect();
                Relation {
                    arity,
                    store: Store::Btree {
                        tuples,
                        cache: IndexCache::default(),
                    },
                }
            }
            StorageMode::Columnar | StorageMode::Adaptive => {
                let adaptive = mode == StorageMode::Adaptive;
                let store = match self.store {
                    Store::Col(mut c) => {
                        c.adaptive = adaptive;
                        Store::Col(c)
                    }
                    Store::Small(s) => {
                        // Only reachable for a columnar target: adopt
                        // the sorted view, carrying counters (a
                        // conversion, not a growth promotion).
                        let base = Arc::clone(s.sorted_run());
                        let mut col = ColStore::new(base, adaptive);
                        col.stats = s.stats_cells().clone();
                        Store::Col(col)
                    }
                    Store::Btree { tuples, .. } => Store::Col(ColStore::new(
                        Arc::new(Run::from_sorted(arity, tuples.iter())),
                        adaptive,
                    )),
                };
                let mut rel = Relation { arity, store };
                if adaptive {
                    rel.adaptive_post_rebuild();
                }
                rel
            }
        }
    }

    /// Sorted-run views of both operands when both are run-backed —
    /// the galloping-merge fast path. Sorting a small side on demand
    /// is an order demand on that operand.
    fn run_pair(&self, other: &Relation) -> Option<(Arc<Run>, Arc<Run>)> {
        if matches!(&self.store, Store::Btree { .. }) || matches!(&other.store, Store::Btree { .. })
        {
            return None;
        }
        Some((self.columnar_run()?, other.columnar_run()?))
    }

    /// Both operands' small tails, when both are in the small regime —
    /// set algebra over the logs needs no sorted view on either side.
    fn small_pair<'a>(&'a self, other: &'a Relation) -> Option<(&'a SmallTail, &'a SmallTail)> {
        match (&self.store, &other.store) {
            (Store::Small(a), Store::Small(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Set union (arities must agree). Result uses `self`'s mode.
    pub fn union(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        if let Some((a, b)) = self.small_pair(other) {
            let mut v: Vec<Tuple> = a.live_tuples().cloned().collect();
            v.extend(b.live_tuples().cloned());
            v.sort_unstable();
            v.dedup();
            return Ok(self.from_sorted_vec(v));
        }
        if let Some((ra, rb)) = self.run_pair(other) {
            return Ok(self.from_result_run(ra.union(&rb)));
        }
        let mut tuples: BTreeSet<Tuple> = self.iter().cloned().collect();
        tuples.extend(other.iter().cloned());
        Ok(self.from_sorted_vec(tuples.into_iter().collect()))
    }

    /// Set intersection (arities must agree). Result uses `self`'s mode.
    pub fn intersect(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        if let Some((a, b)) = self.small_pair(other) {
            let mut v: Vec<Tuple> = a.live_tuples().filter(|t| b.contains(t)).cloned().collect();
            v.sort_unstable();
            return Ok(self.from_sorted_vec(v));
        }
        if let Some((ra, rb)) = self.run_pair(other) {
            return Ok(self.from_result_run(ra.intersect(&rb)));
        }
        let out: Vec<Tuple> = self.iter().filter(|t| other.contains(t)).cloned().collect();
        Ok(self.from_sorted_vec(out))
    }

    /// Set difference `self \ other` (arities must agree). Result uses
    /// `self`'s mode.
    pub fn difference(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        if let Some((a, b)) = self.small_pair(other) {
            let mut v: Vec<Tuple> = a
                .live_tuples()
                .filter(|t| !b.contains(t))
                .cloned()
                .collect();
            v.sort_unstable();
            return Ok(self.from_sorted_vec(v));
        }
        if let Some((ra, rb)) = self.run_pair(other) {
            return Ok(self.from_result_run(ra.difference(&rb)));
        }
        let out: Vec<Tuple> = self
            .iter()
            .filter(|t| !other.contains(t))
            .cloned()
            .collect();
        Ok(self.from_sorted_vec(out))
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &Relation) -> bool {
        if self.arity != other.arity {
            return false;
        }
        // Probe-based paths first: subset never needs sorted order, so
        // small operands stay free of order demands.
        if let Store::Small(s) = &self.store {
            return s.live_tuples().all(|t| other.contains(t));
        }
        if matches!(&other.store, Store::Small(_)) {
            return self.iter().all(|t| other.contains(t));
        }
        if let (Store::Col(a), Store::Col(b)) = (&self.store, &other.store) {
            return a.run().is_subset(b.run());
        }
        self.iter().all(|t| other.contains(t))
    }

    /// All values occurring in the relation (its active domain).
    pub fn adom(&self) -> BTreeSet<Value> {
        if let Store::Small(s) = &self.store {
            return s.live_tuples().flat_map(|t| t.iter().copied()).collect();
        }
        self.iter().flat_map(|t| t.iter().copied()).collect()
    }

    /// A new relation with `f` applied to every value (isomorphic image).
    pub fn map_values(&self, mut f: impl FnMut(&Value) -> Value) -> Relation {
        let mut out: Vec<Tuple> = match &self.store {
            Store::Small(s) => s.live_tuples().map(|t| t.map(&mut f)).collect(),
            _ => self.iter().map(|t| t.map(&mut f)).collect(),
        };
        out.sort_unstable();
        out.dedup();
        self.from_sorted_vec(out)
    }

    fn check_same_arity(&self, other: &Relation) -> Result<(), RelError> {
        if self.arity != other.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: other.arity,
            });
        }
        Ok(())
    }
}

/// Iterator over a relation's tuples in sorted order (see
/// [`Relation::iter`]).
pub enum Iter<'a> {
    /// BTree engine.
    Btree(std::collections::btree_set::Iter<'a, Tuple>),
    /// Run-backed engines (materialized sorted rows).
    Slice(std::slice::Iter<'a, Tuple>),
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Tuple;
    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            Iter::Btree(it) => it.next(),
            Iter::Slice(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Iter::Btree(it) => it.size_hint(),
            Iter::Slice(it) => it.size_hint(),
        }
    }
}

impl<'a> ExactSizeIterator for Iter<'a> {}

// Caches (btree hash indexes, columnar merged runs and views, small
// sorted views) and counters are evaluation artifacts: they must not
// take part in the relation's value, so `Clone`/`Eq`/`Ord` are written
// by hand over the tuple *sequence* only, and work across storage
// modes. Columnar clones share the base run by `Arc` (and with it the
// run's view cache); btree clones start with a cold cache; small
// clones copy the log and counters.
impl Clone for Relation {
    fn clone(&self) -> Self {
        let store = match &self.store {
            Store::Btree { tuples, .. } => Store::Btree {
                tuples: tuples.clone(),
                cache: IndexCache::default(),
            },
            Store::Col(c) => Store::Col(c.clone()),
            Store::Small(s) => Store::Small(s.clone()),
        };
        Relation {
            arity: self.arity,
            store,
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if self.arity != other.arity || self.len() != other.len() {
            return false;
        }
        if let (Store::Col(a), Store::Col(b)) = (&self.store, &other.store) {
            let (ra, rb) = (a.run(), b.run());
            if Arc::ptr_eq(ra, rb) {
                return true;
            }
        }
        // With equal cardinalities, set equality is containment — so
        // a small operand is compared by probing, never by sorting.
        if let Store::Small(s) = &self.store {
            return s.live_tuples().all(|t| other.contains(t));
        }
        if let Store::Small(s) = &other.store {
            return s.live_tuples().all(|t| self.contains(t));
        }
        self.iter().eq(other.iter())
    }
}

impl Eq for Relation {}

impl PartialOrd for Relation {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Relation {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.arity
            .cmp(&other.arity)
            .then_with(|| self.iter().cmp(other.iter()))
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Owning iterator over a relation's tuples in sorted order.
pub enum IntoIter {
    /// BTree engine.
    Btree(std::collections::btree_set::IntoIter<Tuple>),
    /// Run-backed engines.
    Vec(std::vec::IntoIter<Tuple>),
}

impl Iterator for IntoIter {
    type Item = Tuple;
    fn next(&mut self) -> Option<Tuple> {
        match self {
            IntoIter::Btree(it) => it.next(),
            IntoIter::Vec(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            IntoIter::Btree(it) => it.size_hint(),
            IntoIter::Vec(it) => it.size_hint(),
        }
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = IntoIter;
    fn into_iter(self) -> IntoIter {
        match self.store {
            Store::Btree { tuples, .. } => IntoIter::Btree(tuples.into_iter()),
            Store::Col(c) => IntoIter::Vec(c.run().rows().to_vec().into_iter()),
            Store::Small(s) => IntoIter::Vec(s.sorted_run().rows().to_vec().into_iter()),
        }
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(arity: usize, ts: Vec<Tuple>) -> Relation {
        Relation::from_tuples(arity, ts).unwrap()
    }

    /// Every test in this module runs against all three engines via
    /// this helper where storage behavior matters.
    fn all_modes(f: impl Fn(StorageMode)) {
        f(StorageMode::Btree);
        f(StorageMode::Columnar);
        f(StorageMode::Adaptive);
    }

    #[test]
    fn empty_and_insert() {
        all_modes(|m| {
            let mut r = Relation::empty_in(m, 2);
            assert!(r.is_empty());
            assert!(r.insert(tuple![1, 2]).unwrap());
            assert!(!r.insert(tuple![1, 2]).unwrap()); // duplicate
            assert_eq!(r.len(), 1);
            assert!(r.contains(&tuple![1, 2]));
            assert_eq!(r.mode(), m);
        });
    }

    #[test]
    fn arity_enforced_on_insert() {
        all_modes(|m| {
            let mut r = Relation::empty_in(m, 2);
            assert!(matches!(
                r.insert(tuple![1]),
                Err(RelError::TupleArity {
                    expected: 2,
                    found: 1
                })
            ));
        });
    }

    #[test]
    fn boolean_encoding() {
        assert!(Relation::nullary_true().as_bool());
        assert!(!Relation::nullary_false().as_bool());
        assert_eq!(Relation::nullary_true().arity(), 0);
    }

    #[test]
    fn set_algebra() {
        all_modes(|m| {
            let a = Relation::from_tuples_in(m, 1, vec![tuple![1], tuple![2]]).unwrap();
            let b = Relation::from_tuples_in(m, 1, vec![tuple![2], tuple![3]]).unwrap();
            assert_eq!(a.union(&b).unwrap().len(), 3);
            assert_eq!(a.intersect(&b).unwrap(), rel(1, vec![tuple![2]]));
            assert_eq!(a.difference(&b).unwrap(), rel(1, vec![tuple![1]]));
            assert!(rel(1, vec![tuple![1]]).is_subset(&a));
            assert!(!a.is_subset(&b));
        });
    }

    #[test]
    fn set_algebra_rejects_mixed_arity() {
        let a = rel(1, vec![tuple![1]]);
        let b = rel(2, vec![tuple![1, 2]]);
        assert!(a.union(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn cross_mode_values_agree() {
        let ts = vec![tuple![3, "c"], tuple![1, "a"], tuple![2, "b"]];
        let col = Relation::from_tuples_in(StorageMode::Columnar, 2, ts.clone()).unwrap();
        let bt = Relation::from_tuples_in(StorageMode::Btree, 2, ts.clone()).unwrap();
        let ad = Relation::from_tuples_in(StorageMode::Adaptive, 2, ts).unwrap();
        assert_eq!(col, bt);
        assert_eq!(bt, col);
        assert_eq!(ad, bt);
        assert_eq!(col, ad);
        assert_eq!(col.cmp(&bt), std::cmp::Ordering::Equal);
        assert_eq!(ad.cmp(&bt), std::cmp::Ordering::Equal);
        assert!(col.is_subset(&bt) && bt.is_subset(&col));
        assert!(ad.is_subset(&col) && col.is_subset(&ad));
        assert_eq!(
            col.iter().collect::<Vec<_>>(),
            bt.iter().collect::<Vec<_>>()
        );
        assert_eq!(ad.iter().collect::<Vec<_>>(), bt.iter().collect::<Vec<_>>());
        // mixed-mode set algebra takes the fallback paths
        assert_eq!(col.union(&bt).unwrap(), bt);
        assert_eq!(col.intersect(&bt).unwrap(), bt);
        assert!(col.difference(&bt).unwrap().is_empty());
        assert_eq!(ad.union(&bt).unwrap(), bt);
        assert_eq!(ad.intersect(&col).unwrap(), bt);
        assert!(ad.difference(&col).unwrap().is_empty());
        assert_eq!(col.union(&bt).unwrap().mode(), StorageMode::Columnar);
        assert_eq!(bt.union(&col).unwrap().mode(), StorageMode::Btree);
        assert_eq!(ad.union(&bt).unwrap().mode(), StorageMode::Adaptive);
    }

    #[test]
    fn adom_collects_all_values() {
        all_modes(|m| {
            let r = Relation::from_tuples_in(m, 2, vec![tuple![1, "a"], tuple![2, "a"]]).unwrap();
            let d = r.adom();
            assert_eq!(d.len(), 3);
            assert!(d.contains(&Value::int(1)));
            assert!(d.contains(&Value::sym("a")));
        });
    }

    #[test]
    fn map_values_is_isomorphic_image() {
        all_modes(|m| {
            let r = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            let s = r.map_values(|v| match v {
                Value::Int(i) => Value::int(i * 10),
                o => *o,
            });
            assert_eq!(s, rel(2, vec![tuple![10, 20]]));
            assert_eq!(s.mode(), m);
        });
    }

    #[test]
    fn deterministic_iteration_order() {
        all_modes(|m| {
            let r = Relation::from_tuples_in(m, 1, vec![tuple![3], tuple![1], tuple![2]]).unwrap();
            let order: Vec<_> = r.iter().cloned().collect();
            assert_eq!(order, vec![tuple![1], tuple![2], tuple![3]]);
        });
    }

    #[test]
    fn remove_and_idempotence() {
        all_modes(|m| {
            let mut r = Relation::from_tuples_in(m, 1, vec![tuple![1]]).unwrap();
            assert!(r.remove(&tuple![1]));
            assert!(!r.remove(&tuple![1]));
            assert!(r.is_empty());
        });
    }

    #[test]
    fn tail_interleavings_match_btree() {
        // insert → remove → re-insert cycles through the add/del tails
        // (columnar) and the tombstone log (adaptive).
        all_modes(|m| {
            let mut r = Relation::from_tuples_in(m, 1, (0..10).map(|i| tuple![i])).unwrap();
            assert!(r.remove(&tuple![3]));
            assert!(!r.contains(&tuple![3]));
            assert!(r.insert(tuple![3]).unwrap()); // undelete
            assert!(r.contains(&tuple![3]));
            assert!(r.insert(tuple![42]).unwrap());
            assert!(r.remove(&tuple![42])); // remove from the add tail
            assert_eq!(r.len(), 10);
            let expect: Vec<Tuple> = (0..10).map(|i| tuple![i]).collect();
            assert_eq!(r.iter().cloned().collect::<Vec<_>>(), expect);
        });
    }

    #[test]
    fn index_probe_matches_scan() {
        all_modes(|m| {
            let r = Relation::from_tuples_in(m, 2, vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
                .unwrap();
            let idx = r.index(&[0]).unwrap();
            assert_eq!(idx.probe(&[Value::int(1)]).len(), 2);
            let scan: Vec<_> = r
                .iter()
                .filter(|t| t.values()[0] == Value::int(1))
                .cloned()
                .collect();
            assert_eq!(idx.probe(&[Value::int(1)]).to_vec(), scan);
            // non-prefix columns exercise the permutation view
            let idx1 = r.index(&[1]).unwrap();
            assert_eq!(idx1.probe(&[Value::int(3)]).len(), 2);
            assert_eq!(
                idx1.probe(&[Value::int(3)]).to_vec(),
                vec![tuple![1, 3], tuple![2, 3]]
            );
        });
    }

    #[test]
    fn index_is_cached_until_mutation() {
        // All three engines memoize: btree on the relation, columnar
        // and the adaptive small regime on the (cached) sorted run.
        for m in [
            StorageMode::Btree,
            StorageMode::Columnar,
            StorageMode::Adaptive,
        ] {
            let mut r = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            let a = r.index(&[0]).unwrap();
            let b = r.index(&[0]).unwrap();
            assert!(Arc::ptr_eq(&a, &b));
            r.insert(tuple![5, 6]).unwrap();
            let c = r.index(&[0]).unwrap();
            assert!(!Arc::ptr_eq(&a, &c));
            // the old snapshot is unchanged, the fresh index sees the insert
            assert!(a.probe(&[Value::int(5)]).is_empty());
            assert_eq!(c.probe(&[Value::int(5)]).len(), 1);
        }
    }

    #[test]
    fn small_regime_index_is_a_fresh_snapshot() {
        let mut r = Relation::from_tuples_in(StorageMode::Adaptive, 2, vec![tuple![1, 2]]).unwrap();
        assert!(r.in_small_regime());
        let a = r.index(&[0]).unwrap();
        // repeated probes of an unchanged relation reuse the memoized
        // run view instead of re-sorting the log
        assert!(Arc::ptr_eq(&a, &r.index(&[0]).unwrap()));
        r.insert(tuple![5, 6]).unwrap();
        let b = r.index(&[0]).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "mutation invalidates the memo");
        assert!(a.probe(&[Value::int(5)]).is_empty());
        assert_eq!(b.probe(&[Value::int(5)]).len(), 1);
        // building an index is not an order demand on the log
        assert!(r.in_small_regime());
        assert_eq!(r.storage_stats().promotions, 0);
    }

    #[test]
    fn clones_share_columnar_index_views() {
        let r = Relation::from_tuples_in(StorageMode::Columnar, 2, vec![tuple![1, 2]]).unwrap();
        let s = r.clone();
        let a = r.index(&[0]).unwrap();
        let b = s.index(&[0]).unwrap();
        assert!(Arc::ptr_eq(&a, &b)); // same run, same view chain
    }

    #[test]
    fn index_rejects_out_of_range_columns() {
        all_modes(|m| {
            let r = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            assert!(matches!(
                r.index(&[2]),
                Err(RelError::ColumnOutOfRange {
                    column: 2,
                    arity: 2
                })
            ));
        });
    }

    #[test]
    fn cache_never_affects_equality() {
        all_modes(|m| {
            let a = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            let b = Relation::from_tuples_in(m, 2, vec![tuple![1, 2]]).unwrap();
            let _ = a.index(&[0]).unwrap();
            let _ = a.index(&[1]).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
            let c = a.clone();
            assert_eq!(a, c);
            // and with a dirty tail folded on one side only:
            let mut d = a.clone();
            d.insert(tuple![9, 9]).unwrap();
            d.remove(&tuple![9, 9]);
            let _ = d.iter().count(); // forces the merged / sorted run
            assert_eq!(a, d);
            assert_eq!(a.cmp(&d), std::cmp::Ordering::Equal);
        });
    }

    #[test]
    fn diff_apply_delta_roundtrip() {
        all_modes(|m| {
            let from = Relation::from_tuples_in(m, 1, vec![tuple![1], tuple![2]]).unwrap();
            let to = Relation::from_tuples_in(m, 1, vec![tuple![2], tuple![3]]).unwrap();
            let d = to.diff(&from).unwrap();
            assert_eq!(d.added(), &[tuple![3]]);
            assert_eq!(d.removed(), &[tuple![1]]);
            assert_eq!(d.len(), 2);
            let mut r = from.clone();
            r.apply_delta(&d).unwrap();
            assert_eq!(r, to);
            // empty delta round-trips too
            let e = to.diff(&to).unwrap();
            assert!(e.is_empty());
            r.apply_delta(&e).unwrap();
            assert_eq!(r, to);
        });
    }

    #[test]
    fn diff_rejects_mixed_arity() {
        let a = rel(1, vec![tuple![1]]);
        let b = rel(2, vec![tuple![1, 2]]);
        assert!(a.diff(&b).is_err());
        let mut c = a.clone();
        let d = b.diff(&b).unwrap();
        assert!(c.apply_delta(&d).is_err());
    }

    #[test]
    fn storage_mode_parsing() {
        assert_eq!(StorageMode::parse("btree"), Some(StorageMode::Btree));
        assert_eq!(StorageMode::parse("COLUMNAR"), Some(StorageMode::Columnar));
        assert_eq!(StorageMode::parse("col"), Some(StorageMode::Columnar));
        assert_eq!(StorageMode::parse("adaptive"), Some(StorageMode::Adaptive));
        assert_eq!(StorageMode::parse("Auto"), Some(StorageMode::Adaptive));
        assert_eq!(StorageMode::parse("nope"), None);
        assert!(StorageMode::Adaptive.uses_runs());
        assert!(StorageMode::Columnar.uses_runs());
        assert!(!StorageMode::Btree.uses_runs());
    }

    #[test]
    fn adaptive_promotes_at_threshold_and_counts_it() {
        let n = adaptive_promote_len();
        let mut r = Relation::empty_in(StorageMode::Adaptive, 1);
        for i in 0..(n - 1) as i64 {
            r.insert(tuple![i]).unwrap();
        }
        assert!(r.in_small_regime(), "N−1 inserts stay in the small regime");
        assert_eq!(r.storage_stats().promotions, 0);
        r.insert(tuple![(n as i64) - 1]).unwrap();
        assert!(!r.in_small_regime(), "the Nth insert promotes");
        assert_eq!(r.mode(), StorageMode::Adaptive);
        assert_eq!(r.storage_stats().promotions, 1);
        r.insert(tuple![n as i64]).unwrap();
        assert_eq!(r.storage_stats().promotions, 1, "promotion is one-way");
        assert_eq!(r.len(), n + 1);
    }

    #[test]
    fn order_demand_promotes_only_above_the_floor() {
        let floor = adaptive_reentry_len();
        // At the floor: scans + mutations forever, never promotes.
        let mut r = Relation::from_tuples_in(
            StorageMode::Adaptive,
            1,
            (0..floor as i64).map(|i| tuple![i]),
        )
        .unwrap();
        for _ in 0..8 {
            let _ = r.iter().count(); // order demand
            assert!(r.remove(&tuple![0]));
            assert!(r.insert(tuple![0]).unwrap());
        }
        assert!(r.in_small_regime());
        assert_eq!(r.storage_stats().promotions, 0);
        // One above the floor: the first mutation after an order
        // demand promotes.
        let mut r = Relation::empty_in(StorageMode::Adaptive, 1);
        for i in 0..=(floor as i64) {
            r.insert(tuple![i]).unwrap();
        }
        assert!(r.in_small_regime());
        let _ = r.iter().count(); // order demand above the floor
        assert!(r.in_small_regime(), "the demand itself does not promote");
        r.remove(&tuple![0]);
        assert!(!r.in_small_regime(), "the next mutation does");
        assert_eq!(r.storage_stats().promotions, 1);
    }

    #[test]
    fn bulk_rebuild_reenters_small_regime() {
        let n = adaptive_promote_len();
        let floor = adaptive_reentry_len();
        let mut r = Relation::empty_in(StorageMode::Adaptive, 1);
        for i in 0..n as i64 {
            r.insert(tuple![i]).unwrap();
        }
        assert!(!r.in_small_regime());
        // A delta that clears almost everything re-enters the small
        // regime; the counters survive the round trip.
        let target = Relation::from_tuples_in(
            StorageMode::Adaptive,
            1,
            (0..(floor as i64) - 1).map(|i| tuple![i]),
        )
        .unwrap();
        let d = target.diff(&r).unwrap();
        r.apply_delta(&d).unwrap();
        assert_eq!(r, target);
        assert!(r.in_small_regime(), "rebuild at the floor demotes");
        assert_eq!(r.storage_stats().promotions, 1);
        // ... and the relation can grow right back up and re-promote.
        for i in 0..n as i64 {
            r.insert(tuple![i]).unwrap();
        }
        assert!(!r.in_small_regime());
        assert_eq!(r.storage_stats().promotions, 2);
    }

    #[test]
    fn point_removals_never_demote() {
        let n = adaptive_promote_len();
        let mut r = Relation::empty_in(StorageMode::Adaptive, 1);
        for i in 0..n as i64 {
            r.insert(tuple![i]).unwrap();
        }
        assert!(!r.in_small_regime());
        for i in 0..(n as i64) - 1 {
            assert!(r.remove(&tuple![i]));
        }
        assert_eq!(r.len(), 1);
        assert!(!r.in_small_regime(), "promotion is one-way per episode");
    }

    #[test]
    fn into_mode_rehouses_values() {
        let ts = vec![tuple![2, 1], tuple![1, 2]];
        for from in [
            StorageMode::Btree,
            StorageMode::Columnar,
            StorageMode::Adaptive,
        ] {
            let r = Relation::from_tuples_in(from, 2, ts.clone()).unwrap();
            for to in [
                StorageMode::Btree,
                StorageMode::Columnar,
                StorageMode::Adaptive,
            ] {
                let s = r.clone().into_mode(to);
                assert_eq!(s.mode(), to);
                assert_eq!(s, r);
            }
        }
    }
}

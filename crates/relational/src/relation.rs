//! Finite relations: ordered sets of tuples of a fixed arity.

use crate::error::RelError;
use crate::fact::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A finite `k`-ary relation on **dom**.
///
/// Backed by a `BTreeSet` so iteration order is deterministic — the whole
/// simulator relies on runs being pure functions of their inputs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Build from tuples, validating arity.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelError> {
        let mut r = Relation::empty(arity);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The nullary relation containing the empty tuple — boolean *true*
    /// in the paper's encoding.
    pub fn nullary_true() -> Self {
        let mut r = Relation::empty(0);
        r.insert(Tuple::empty()).expect("empty tuple has arity 0");
        r
    }

    /// The empty nullary relation — boolean *false*.
    pub fn nullary_false() -> Self {
        Relation::empty(0)
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Interpreted as a boolean (paper encoding): nonempty = true.
    pub fn as_bool(&self) -> bool {
        !self.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Insert a tuple; `Ok(true)` if newly inserted.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelError> {
        if t.arity() != self.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: t.arity(),
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Remove a tuple; `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Iterate over tuples in order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Set union (arities must agree).
    pub fn union(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        let mut out = self.clone();
        out.tuples.extend(other.tuples.iter().cloned());
        Ok(out)
    }

    /// Set intersection (arities must agree).
    pub fn intersect(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        Ok(Relation {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        })
    }

    /// Set difference `self \ other` (arities must agree).
    pub fn difference(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_arity(other)?;
        Ok(Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        })
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.tuples.is_subset(&other.tuples)
    }

    /// All values occurring in the relation (its active domain).
    pub fn adom(&self) -> BTreeSet<Value> {
        self.tuples.iter().flat_map(|t| t.iter().cloned()).collect()
    }

    /// A new relation with `f` applied to every value (isomorphic image).
    pub fn map_values(&self, mut f: impl FnMut(&Value) -> Value) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().map(|t| t.map(&mut f)).collect(),
        }
    }

    fn check_same_arity(&self, other: &Relation) -> Result<(), RelError> {
        if self.arity != other.arity {
            return Err(RelError::TupleArity {
                expected: self.arity,
                found: other.arity,
            });
        }
        Ok(())
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = std::collections::btree_set::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(arity: usize, ts: Vec<Tuple>) -> Relation {
        Relation::from_tuples(arity, ts).unwrap()
    }

    #[test]
    fn empty_and_insert() {
        let mut r = Relation::empty(2);
        assert!(r.is_empty());
        assert!(r.insert(tuple![1, 2]).unwrap());
        assert!(!r.insert(tuple![1, 2]).unwrap()); // duplicate
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![1, 2]));
    }

    #[test]
    fn arity_enforced_on_insert() {
        let mut r = Relation::empty(2);
        assert!(matches!(
            r.insert(tuple![1]),
            Err(RelError::TupleArity {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn boolean_encoding() {
        assert!(Relation::nullary_true().as_bool());
        assert!(!Relation::nullary_false().as_bool());
        assert_eq!(Relation::nullary_true().arity(), 0);
    }

    #[test]
    fn set_algebra() {
        let a = rel(1, vec![tuple![1], tuple![2]]);
        let b = rel(1, vec![tuple![2], tuple![3]]);
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.intersect(&b).unwrap(), rel(1, vec![tuple![2]]));
        assert_eq!(a.difference(&b).unwrap(), rel(1, vec![tuple![1]]));
        assert!(rel(1, vec![tuple![1]]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn set_algebra_rejects_mixed_arity() {
        let a = rel(1, vec![tuple![1]]);
        let b = rel(2, vec![tuple![1, 2]]);
        assert!(a.union(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn adom_collects_all_values() {
        let r = rel(2, vec![tuple![1, "a"], tuple![2, "a"]]);
        let d = r.adom();
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Value::int(1)));
        assert!(d.contains(&Value::sym("a")));
    }

    #[test]
    fn map_values_is_isomorphic_image() {
        let r = rel(2, vec![tuple![1, 2]]);
        let s = r.map_values(|v| match v {
            Value::Int(i) => Value::int(i * 10),
            o => o.clone(),
        });
        assert_eq!(s, rel(2, vec![tuple![10, 20]]));
    }

    #[test]
    fn deterministic_iteration_order() {
        let r = rel(1, vec![tuple![3], tuple![1], tuple![2]]);
        let order: Vec<_> = r.iter().cloned().collect();
        assert_eq!(order, vec![tuple![1], tuple![2], tuple![3]]);
    }

    #[test]
    fn remove_and_idempotence() {
        let mut r = rel(1, vec![tuple![1]]);
        assert!(r.remove(&tuple![1]));
        assert!(!r.remove(&tuple![1]));
        assert!(r.is_empty());
    }
}

//! Kernel error type.

use crate::fact::RelName;
use std::fmt;

/// Errors from the relational kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelError {
    /// A relation name is not declared in the relevant schema.
    UnknownRelation {
        /// The offending name.
        rel: RelName,
    },
    /// A relation was used with conflicting arities.
    ArityMismatch {
        /// The offending name.
        rel: RelName,
        /// Arity expected by the schema.
        expected: usize,
        /// Arity found.
        found: usize,
    },
    /// A tuple's arity does not match its relation.
    TupleArity {
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// Two schemas that must be disjoint share a relation name.
    NotDisjoint {
        /// The shared name.
        rel: RelName,
    },
    /// A value renaming is not injective.
    NotInjective,
    /// An index column lies outside a relation's arity.
    ColumnOutOfRange {
        /// The offending column position.
        column: usize,
        /// The relation arity.
        arity: usize,
    },
    /// A counted relation was asked to retract more derivations than a
    /// tuple has — the caller's support accounting has drifted.
    NegativeSupport {
        /// Derivations currently supporting the tuple.
        have: u64,
        /// Derivations the caller tried to retract.
        retract: u64,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownRelation { rel } => write!(f, "unknown relation `{rel}`"),
            RelError::ArityMismatch {
                rel,
                expected,
                found,
            } => {
                write!(
                    f,
                    "arity mismatch for `{rel}`: expected {expected}, found {found}"
                )
            }
            RelError::TupleArity { expected, found } => {
                write!(
                    f,
                    "tuple arity {found} does not match relation arity {expected}"
                )
            }
            RelError::NotDisjoint { rel } => {
                write!(f, "schemas are not disjoint: both declare `{rel}`")
            }
            RelError::NotInjective => write!(f, "value renaming is not injective"),
            RelError::ColumnOutOfRange { column, arity } => {
                write!(f, "index column {column} outside relation arity {arity}")
            }
            RelError::NegativeSupport { have, retract } => {
                write!(
                    f,
                    "cannot retract {retract} derivation(s) from a tuple with {have}"
                )
            }
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelError::UnknownRelation { rel: "R".into() };
        assert!(e.to_string().contains("unknown relation"));
        let e = RelError::ArityMismatch {
            rel: "R".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = RelError::TupleArity {
            expected: 1,
            found: 0,
        };
        assert!(e.to_string().contains("arity 0"));
        let e = RelError::NotDisjoint { rel: "R".into() };
        assert!(e.to_string().contains("not disjoint"));
        assert!(RelError::NotInjective.to_string().contains("injective"));
    }
}

//! Run timelines: a captured trace plus its registry delta, and the
//! exporters — Chrome `chrome://tracing` JSON and a compact text
//! flamechart.

use crate::json;
use crate::registry::Snapshot;
use crate::trace::{Event, EventKind};

/// Everything observed during one [`crate::trace::capture_run`]: the
/// merged (deterministic) event sequence, the registry delta, and how
/// many events were dropped to the buffer cap.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// The merged event sequence, in deterministic logical order.
    pub events: Vec<Event>,
    /// Registry counters/histograms accumulated during the run.
    pub counters: Snapshot,
    /// Events lost to the per-thread buffer cap (0 in any healthy run).
    pub dropped: u64,
}

impl RunTrace {
    /// An empty trace (chaos divergences recorded below `full`).
    pub fn empty() -> RunTrace {
        RunTrace {
            events: Vec::new(),
            counters: Snapshot::default(),
            dropped: 0,
        }
    }

    /// A canonical one-line-per-event rendering — what the
    /// determinism tests compare bit-for-bit across shard counts.
    pub fn canonical_lines(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|e| {
                let ph = match e.kind {
                    EventKind::Begin => "B",
                    EventKind::End => "E",
                    EventKind::Instant => "I",
                };
                let args: Vec<String> = e.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{ph} {}:{} {}", e.cat, e.name, args.join(","))
            })
            .collect()
    }

    /// Serialize as Chrome trace-event JSON (`chrome://tracing`, also
    /// readable by Perfetto): `{"traceEvents":[...]}` with the event's
    /// position in the merged sequence as its timestamp, everything on
    /// one pid/tid lane, and the registry counters appended as
    /// metadata args on a final counter event.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (ts, e) in self.events.iter().enumerate() {
            if ts > 0 {
                out.push(',');
            }
            let ph = match e.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":0,\"tid\":0",
                json::quote(e.name),
                json::quote(e.cat)
            ));
            if e.kind == EventKind::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json::quote(k), v));
                }
                out.push('}');
            }
            out.push('}');
        }
        for (i, (name, v)) in self.counters.counters.iter().enumerate() {
            if i > 0 || !self.events.is_empty() {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"registry\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{\"value\":{v}}}}}",
                json::quote(name),
                self.events.len()
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"registry\":");
        out.push_str(&self.counters.to_json());
        out.push_str(&format!(",\"dropped\":{}}}}}", self.dropped));
        out
    }

    /// A compact text flamechart: spans aggregated by call path, one
    /// line per distinct `cat:name` path with invocation count and
    /// total logical width (events spanned). Deterministic: paths are
    /// listed in first-appearance order of the sequence.
    pub fn flamechart(&self) -> String {
        struct Agg {
            order: usize,
            depth: usize,
            count: u64,
            width: u64,
        }
        let mut paths: std::collections::BTreeMap<String, Agg> = Default::default();
        // Stack of (path, begin-index).
        let mut stack: Vec<(String, usize)> = Vec::new();
        let mut order = 0usize;
        for (ts, e) in self.events.iter().enumerate() {
            match e.kind {
                EventKind::Begin => {
                    let path = match stack.last() {
                        Some((p, _)) => format!("{p};{}:{}", e.cat, e.name),
                        None => format!("{}:{}", e.cat, e.name),
                    };
                    stack.push((path, ts));
                }
                EventKind::End => {
                    if let Some((path, begin)) = stack.pop() {
                        let depth = stack.len();
                        let agg = paths.entry(path).or_insert_with(|| {
                            order += 1;
                            Agg {
                                order,
                                depth,
                                count: 0,
                                width: 0,
                            }
                        });
                        agg.count += 1;
                        agg.width += (ts - begin) as u64;
                    }
                }
                EventKind::Instant => {}
            }
        }
        // Unclosed spans (truncated trace) still show up.
        while let Some((path, begin)) = stack.pop() {
            let depth = stack.len();
            let agg = paths.entry(path).or_insert_with(|| {
                order += 1;
                Agg {
                    order,
                    depth,
                    count: 0,
                    width: 0,
                }
            });
            agg.count += 1;
            agg.width += (self.events.len() - begin) as u64;
        }
        let mut rows: Vec<(&String, &Agg)> = paths.iter().collect();
        rows.sort_by_key(|(_, a)| a.order);
        let mut out = String::new();
        for (path, a) in rows {
            let leaf = path.rsplit(';').next().unwrap_or(path);
            out.push_str(&format!(
                "{:indent$}{leaf}  x{}  width={}\n",
                "",
                a.count,
                a.width,
                indent = a.depth * 2
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("(truncated: {} events dropped)\n", self.dropped));
        }
        out
    }

    /// A round-by-round listing of the events touching one node — the
    /// chaos divergence reports print this for the localized node.
    /// Rounds are recovered from the executor's `net:round` spans; an
    /// event "touches" the node when it carries a `node == idx` arg.
    pub fn node_timeline(&self, node_idx: i64) -> Vec<String> {
        let mut out = Vec::new();
        let mut round: Option<i64> = None;
        let mut header_emitted = false;
        for e in &self.events {
            if e.cat == "net" && e.name == "round" {
                match e.kind {
                    EventKind::Begin => {
                        round = e.args.iter().find(|(k, _)| *k == "round").map(|(_, v)| *v);
                        header_emitted = false;
                    }
                    EventKind::End => round = None,
                    EventKind::Instant => {}
                }
                continue;
            }
            let touches = e.args.iter().any(|(k, v)| *k == "node" && *v == node_idx);
            if !touches {
                continue;
            }
            if !header_emitted {
                match round {
                    Some(r) => out.push(format!("round {r}:")),
                    None => out.push("(outside rounds):".to_string()),
                }
                header_emitted = true;
            }
            let args: Vec<String> = e
                .args
                .iter()
                .filter(|(k, _)| *k != "node")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push(format!("  {}:{} {}", e.cat, e.name, args.join(" ")));
        }
        out
    }

    /// Validate a Chrome trace document produced by
    /// [`RunTrace::to_chrome_json`]: parses it, checks the shape of
    /// every event record, and returns the number of trace events.
    /// Used by the round-trip tests.
    pub fn validate_chrome_json(doc: &str) -> Result<usize, String> {
        let v = json::parse(doc).map_err(|e| e.to_string())?;
        let events = v
            .get("traceEvents")
            .and_then(json::Json::items)
            .ok_or("missing traceEvents array")?;
        let mut depth = 0i64;
        let mut last_ts = -1i64;
        let mut n = 0usize;
        for e in events {
            let ph = e
                .get("ph")
                .and_then(json::Json::str)
                .ok_or("event missing ph")?;
            e.get("name")
                .and_then(json::Json::str)
                .ok_or("event missing name")?;
            let ts = e
                .get("ts")
                .and_then(json::Json::int)
                .ok_or("event missing ts")?;
            if ts < last_ts {
                return Err(format!("timestamps regress at ts={ts}"));
            }
            last_ts = ts;
            match ph {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    if depth < 0 {
                        return Err("unbalanced E before B".to_string());
                    }
                }
                "i" | "C" => {}
                other => return Err(format!("unexpected phase {other:?}")),
            }
            n += 1;
        }
        if depth != 0 {
            return Err(format!("{depth} spans left open"));
        }
        Ok(n)
    }
}

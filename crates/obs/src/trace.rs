//! The trace layer: levels, events, per-thread buffers, spans.
//!
//! Determinism contract: events carry **no wall-clock time and no
//! thread identity** — only what the instrumented code passed in. A
//! worker shard drains the events of one job with [`mark`]/
//! [`take_since`] and ships them to the coordinator, which [`splice`]s
//! them back in node order at its merge barrier; the merged sequence
//! is therefore a pure function of the computation, identical across
//! thread counts. Wall-clock time lives only in the
//! [registry](crate::registry) histograms.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::registry::Registry;
use crate::timeline::RunTrace;

/// How much the observability layer records, from the `RTX_TRACE`
/// environment variable (`off` | `counters` | `full`), overridable at
/// runtime with [`set_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// Record nothing. Every instrumentation hook reduces to one
    /// relaxed atomic load.
    Off = 0,
    /// Registry counters and histograms only — cheap enough to leave
    /// on for experiments; no per-event allocation.
    Counters = 1,
    /// Counters plus the full structured event stream.
    Full = 2,
}

impl TraceLevel {
    /// Parse a level name (the `RTX_TRACE` values).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" | "0" => Some(TraceLevel::Off),
            "counters" | "1" => Some(TraceLevel::Counters),
            "full" | "2" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// The level's `RTX_TRACE` name.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Counters => "counters",
            TraceLevel::Full => "full",
        }
    }

    fn from_u8(v: u8) -> TraceLevel {
        match v {
            1 => TraceLevel::Counters,
            2 => TraceLevel::Full,
            _ => TraceLevel::Off,
        }
    }
}

/// Sentinel: level not yet initialized from the environment.
const LEVEL_UNSET: u8 = 0xff;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The current trace level, reading `RTX_TRACE` on first use.
#[inline]
pub fn level() -> TraceLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == LEVEL_UNSET {
        init_from_env()
    } else {
        TraceLevel::from_u8(v)
    }
}

#[cold]
fn init_from_env() -> TraceLevel {
    let l = rtx_core::env::parse_choice("RTX_TRACE", "off|counters|full", TraceLevel::parse)
        .unwrap_or(TraceLevel::Off);
    LEVEL.store(l as u8, Ordering::Relaxed);
    l
}

/// Override the trace level for this process (tests, experiment
/// binaries, the chaos minimizer's forced-full replay).
pub fn set_level(l: TraceLevel) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// RAII guard restoring the previous trace level on drop.
pub struct LevelGuard {
    prev: TraceLevel,
}

/// Set the level and return a guard that restores the previous level
/// when dropped.
pub fn level_guard(l: TraceLevel) -> LevelGuard {
    let prev = level();
    set_level(l);
    LevelGuard { prev }
}

impl Drop for LevelGuard {
    fn drop(&mut self) {
        set_level(self.prev);
    }
}

/// The phase of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A span opens (matched by a later `End` in the same sequence).
    Begin,
    /// The innermost open span closes.
    End,
    /// A point event.
    Instant,
}

/// One structured trace event. Purely logical: no timestamp, no
/// thread id — its position in the merged sequence is its time.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Event phase.
    pub kind: EventKind,
    /// Category (coarse subsystem: `"net"`, `"query"`, `"storage"`, …).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    /// Named integer arguments (node indexes, round numbers, counts).
    pub args: Vec<(&'static str, i64)>,
}

/// Per-thread buffer cap: a runaway full-trace run stops recording
/// (and counts drops) instead of exhausting memory.
const MAX_BUFFERED: usize = 1 << 20;

static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SINK: RefCell<Vec<Event>> = const { RefCell::new(Vec::new()) };
}

#[inline]
fn push(ev: Event) {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        if s.len() < MAX_BUFFERED {
            s.push(ev);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Total events dropped process-wide to the buffer cap.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Record a `Begin` event (level `full` only).
#[inline]
pub fn begin(cat: &'static str, name: &'static str, args: &[(&'static str, i64)]) {
    if level() == TraceLevel::Full {
        push(Event {
            kind: EventKind::Begin,
            cat,
            name,
            args: args.to_vec(),
        });
    }
}

/// Record an `End` event (level `full` only).
#[inline]
pub fn end(cat: &'static str, name: &'static str) {
    if level() == TraceLevel::Full {
        push(Event {
            kind: EventKind::End,
            cat,
            name,
            args: Vec::new(),
        });
    }
}

/// Record an `Instant` event (level `full` only).
#[inline]
pub fn instant(cat: &'static str, name: &'static str, args: &[(&'static str, i64)]) {
    if level() == TraceLevel::Full {
        push(Event {
            kind: EventKind::Instant,
            cat,
            name,
            args: args.to_vec(),
        });
    }
}

/// A span guard: emits `Begin` on creation (via [`span`]) and `End`
/// on drop. Does nothing at levels below `full`.
pub struct Span {
    cat: &'static str,
    name: &'static str,
    armed: bool,
}

/// Open a span (the function behind the [`span!`](crate::span) macro).
#[inline]
pub fn span(cat: &'static str, name: &'static str, args: &[(&'static str, i64)]) -> Span {
    let armed = level() == TraceLevel::Full;
    if armed {
        begin(cat, name, args);
    }
    Span { cat, name, armed }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            end(self.cat, self.name);
        }
    }
}

/// The current length of this thread's event buffer — a position to
/// [`take_since`] later. Workers call this before running a job.
#[inline]
pub fn mark() -> usize {
    if level() != TraceLevel::Full {
        return 0;
    }
    SINK.with(|s| s.borrow().len())
}

/// Drain every event recorded on this thread since `mark`. Workers
/// call this after a job and ship the fragment to the coordinator.
#[inline]
pub fn take_since(mark: usize) -> Vec<Event> {
    if level() != TraceLevel::Full {
        return Vec::new();
    }
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        if mark >= s.len() {
            Vec::new()
        } else {
            s.split_off(mark)
        }
    })
}

/// Append a fragment of events (a job's worth, drained on a worker
/// with [`take_since`]) to this thread's buffer. The coordinator calls
/// this in deterministic node order at its merge barrier.
#[inline]
pub fn splice(events: Vec<Event>) {
    if events.is_empty() {
        return;
    }
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        let room = MAX_BUFFERED.saturating_sub(s.len());
        if events.len() > room {
            DROPPED.fetch_add((events.len() - room) as u64, Ordering::Relaxed);
        }
        let take = events.len().min(room);
        s.extend(events.into_iter().take(take));
    });
}

/// Run `f` in a fresh capture frame and return its result plus the
/// [`RunTrace`] of everything recorded on this thread (including
/// fragments spliced in from workers) and the registry delta of the
/// run. Frames nest: the enclosing frame's events are saved and
/// restored around `f`.
pub fn capture_run<T>(f: impl FnOnce() -> T) -> (T, RunTrace) {
    let prev = SINK.with(|s| s.take());
    let snap0 = Registry::global().snapshot();
    let dropped0 = dropped();
    let out = f();
    let events = SINK.with(|s| s.take());
    SINK.with(|s| *s.borrow_mut() = prev);
    let counters = Registry::global().snapshot().diff(&snap0);
    let trace = RunTrace {
        events,
        counters,
        dropped: dropped() - dropped0,
    };
    (out, trace)
}

//! The metrics registry: named counters and log2-bucket histograms
//! behind one snapshot/diff/serialize interface.
//!
//! Publishing is gated on [`crate::counting`] by the callers (one
//! relaxed atomic load at `RTX_TRACE=off`); values themselves are
//! plain `u64`s behind a mutex — every publish site is a cold path
//! (end of a run, a promotion, a stratum close), never a per-tuple
//! loop.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// A fixed-64-log2-bucket histogram. Bucket `i` holds values whose
/// bit length is `i` (bucket 0 is exactly zero; the top bucket
/// saturates), so merge and diff are bucketwise and allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Per-bucket observation counts.
    pub buckets: [u64; 64],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }
}

impl Hist {
    /// The bucket index for a value: its bit length, clamped to 63.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(63)
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Bucketwise `self - earlier` (saturating), for snapshot diffs.
    pub fn diff(&self, earlier: &Hist) -> Hist {
        let mut out = Hist {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            ..Hist::default()
        };
        for i in 0..64 {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }

    /// Bucketwise merge.
    pub fn absorb(&mut self, other: &Hist) {
        for i in 0..64 {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// No observations?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

/// A process-global (or test-local) registry of named counters and
/// histograms.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// A fresh, empty registry (tests; the process normally uses
    /// [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry every instrumented crate publishes
    /// into.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::default)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut g = self.lock();
        match g.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                g.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Record one observation into the named histogram.
    pub fn record(&self, name: &str, value: u64) {
        let mut g = self.lock();
        match g.hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Hist::default();
                h.record(value);
                g.hists.insert(name.to_string(), h);
            }
        }
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.lock();
        Snapshot {
            counters: g.counters.clone(),
            hists: g.hists.clone(),
        }
    }

    /// Clear every counter and histogram (tests and experiment
    /// binaries that run several configurations in one process).
    pub fn reset(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.hists.clear();
    }
}

/// Convenience: add to a named counter in the global registry when
/// counting is enabled.
#[inline]
pub fn add(name: &str, delta: u64) {
    if crate::counting() {
        Registry::global().add(name, delta);
    }
}

/// Convenience: record into a named histogram in the global registry
/// when counting is enabled.
#[inline]
pub fn record(name: &str, value: u64) {
    if crate::counting() {
        Registry::global().record(name, value);
    }
}

/// An immutable copy of a registry's state, with diff/merge algebra
/// and JSON serialization. `diff` then `absorb` of the earlier
/// snapshot round-trips, and diffs against the empty snapshot are the
/// identity — the algebra `tests/obs.rs` pins.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Hist>,
}

impl Snapshot {
    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Nothing recorded?
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|v| *v == 0) && self.hists.values().all(Hist::is_empty)
    }

    /// `self - earlier`, entrywise saturating: the activity between
    /// two snapshots of the same registry. Zero entries are dropped.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, v) in &self.counters {
            let d = v.saturating_sub(earlier.counter(name));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        for (name, h) in &self.hists {
            let d = match earlier.hists.get(name) {
                Some(e) => h.diff(e),
                None => h.clone(),
            };
            if !d.is_empty() {
                out.hists.insert(name.clone(), d);
            }
        }
        out
    }

    /// Entrywise merge of another snapshot into this one.
    pub fn absorb(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().absorb(h);
        }
    }

    /// Serialize as one JSON object:
    /// `{"counters":{..},"hists":{name:{"count":..,"sum":..,"buckets":[[bit,count],..]},..}}`.
    /// Histogram buckets are emitted sparsely as `[bucket, count]`
    /// pairs. Keys are emitted in sorted order, so equal snapshots
    /// serialize identically.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{}", crate::json::quote(name), v));
        }
        out.push_str("},\"hists\":{");
        let mut first = true;
        for (name, h) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"mean\":{},\"buckets\":[",
                crate::json::quote(name),
                h.count,
                h.sum,
                h.mean()
            ));
            let mut bfirst = true;
            for (i, c) in h.buckets.iter().enumerate() {
                if *c > 0 {
                    if !bfirst {
                        out.push(',');
                    }
                    bfirst = false;
                    out.push_str(&format!("[{i},{c}]"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

//! # rtx-obs — unified tracing, metrics registry, and run timelines
//!
//! Nine PRs of executors, fixpoints, and storage engines each grew
//! their own ad-hoc counters (`FixpointStats`, `StorageStats`,
//! `ShardRunOutcome`, …) with no shared schema and no timeline. This
//! crate is the one observability seam they all plug into:
//!
//! * [`trace`] — cheap structured span/event recording into per-thread
//!   buffers. Events are **purely logical** (no wall-clock timestamps):
//!   worker shards drain their buffer per job and the coordinator
//!   splices the fragments back in deterministic node order at its
//!   merge barrier, so the merged sequence is bit-identical across
//!   thread counts — the same property the executors themselves
//!   guarantee for outputs. Gated by [`TraceLevel`] (`RTX_TRACE=
//!   off|counters|full`); at `off` every hook is a single relaxed
//!   atomic load.
//! * [`registry`] — a process-global metrics registry of named
//!   counters and log2-bucket histograms with a snapshot/diff/serialize
//!   interface. The scattered stat structs (`FixpointStats`,
//!   `StorageStats`, the `ShardRunOutcome` run counters) publish into
//!   it, so one [`registry::Snapshot`] diff describes a whole run.
//! * [`timeline`] — [`timeline::RunTrace`]: a captured event sequence
//!   plus the registry delta of the run, exportable as Chrome
//!   `chrome://tracing` JSON or a compact text flamechart.
//! * [`json`] — a minimal JSON value parser, used to validate the
//!   Chrome export round-trips (and by the experiment JSON mode's
//!   consumers in tests).
//!
//! The intended capture shape is [`trace::capture_run`]:
//!
//! ```
//! use rtx_obs::{trace, TraceLevel};
//! let _g = trace::level_guard(TraceLevel::Full);
//! let (out, run) = trace::capture_run(|| {
//!     let _s = rtx_obs::span!("demo", "outer", "k" => 1);
//!     rtx_obs::event!("demo", "inner");
//!     42
//! });
//! assert_eq!(out, 42);
//! assert_eq!(run.events.len(), 3); // begin, instant, end
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod timeline;
pub mod trace;

pub use registry::{Hist, Registry, Snapshot};
pub use timeline::RunTrace;
pub use trace::{Event, EventKind, TraceLevel};

/// Is full event tracing on? One relaxed atomic load; callers guard
/// any non-trivial argument computation behind this.
#[inline]
pub fn tracing() -> bool {
    trace::level() == TraceLevel::Full
}

/// Are registry counters on (`counters` or `full`)? One relaxed
/// atomic load.
#[inline]
pub fn counting() -> bool {
    trace::level() >= TraceLevel::Counters
}

/// Open a span: records a `Begin` event now and the matching `End`
/// when the returned guard drops. No-op (and no allocation) unless the
/// level is `full`. Usage: `let _s = span!("net", "round", "round" => r);`
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        $crate::trace::span($cat, $name, &[$(($k, $v as i64)),*])
    };
}

/// Record an `Instant` event. No-op unless the level is `full`.
/// Usage: `event!("storage", "promote", "len" => n);`
#[macro_export]
macro_rules! event {
    ($cat:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        $crate::trace::instant($cat, $name, &[$(($k, $v as i64)),*])
    };
}

//! A minimal JSON reader/writer — just enough to validate that the
//! Chrome trace export and the experiment JSON mode emit well-formed
//! documents (no registry access, so no serde).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64` (the exporters only
/// emit integers that fit exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `i64`, if this is a number.
    pub fn int(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n as i64),
            _ => None,
        }
    }
}

/// Quote a string as a JSON string literal (escaping control
/// characters, quotes, and backslashes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let b = src.as_bytes();
    let mut p = Parser { b, at: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.at != b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.at,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.at + 5 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.b[self.at + 1..self.at + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.b[self.at..];
                    let len = match rest[0] {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    s.push_str(
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.at += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

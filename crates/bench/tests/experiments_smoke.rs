//! Smoke test: the `exp_examples` experiment must run cleanly.
//!
//! Calls the library entry point in-process (the binary is a thin
//! wrapper over the same function), so the fast experiment can never
//! silently rot without failing tier-1. The slower experiment binaries
//! are compile-checked by `cargo build`/`cargo bench --no-run` and
//! documented in `EXPERIMENTS.md`.

#[test]
fn exp_examples_runs_cleanly() {
    rtx_bench::experiments::run_examples();
}

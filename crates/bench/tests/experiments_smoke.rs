//! Smoke test: the `exp_examples` and `exp_trace` experiments must run
//! cleanly.
//!
//! Calls the library entry points in-process (the binaries are thin
//! wrappers over the same functions), so the fast experiments can
//! never silently rot without failing tier-1. The slower experiment
//! binaries are compile-checked by `cargo build`/`cargo bench
//! --no-run` and documented in `EXPERIMENTS.md`.

#[test]
fn exp_examples_runs_cleanly() {
    rtx_bench::experiments::run_examples();
}

#[test]
fn exp_trace_captures_and_reconciles() {
    let (out, trace) = rtx_bench::experiments::trace_grid_flood();
    assert!(out.outcome.quiescent, "the grid flood must quiesce");
    assert!(
        !trace.events.is_empty(),
        "forced-full capture saw no events"
    );
    assert_eq!(trace.dropped, 0, "trace buffer overflowed");
    // The span tree covers rounds → phases → per-node steps.
    let lines = trace.canonical_lines();
    for needle in ["B net:round", "B net:phase.deliver", "B net:step.deliver"] {
        assert!(
            lines.iter().any(|l| l.starts_with(needle)),
            "no `{needle}` event in the captured trace"
        );
    }
    // Chrome JSON round-trips through the validator…
    let doc = trace.to_chrome_json();
    let n = rtx_obs::RunTrace::validate_chrome_json(&doc).expect("valid Chrome trace");
    assert!(n >= trace.events.len());
    // …and the registry delta reconciles exactly with the outcome.
    rtx_bench::experiments::reconcile_trace(&out, &trace);
}

//! Storage-engine microbenchmarks: the adaptive and columnar engines
//! against the `RTX_STORAGE=btree` oracle on the operations the
//! relational kernel actually spends time in — bulk construction,
//! tail inserts with adoption, delta application (run merge), and
//! membership probes — plus a `storage-adaptive/threshold-sweep`
//! group that measures insert/remove/probe/scan at relation sizes
//! straddling the promotion threshold, the empirical basis for the
//! default `RTX_STORAGE_PROMOTE=256`. All engines are pinned
//! explicitly with `empty_in`/`from_tuples_in`, so one run records
//! the ablation whatever the ambient `RTX_STORAGE` is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_relational::{Relation, StorageMode, Tuple, Value};

/// `n` two-column tuples in a shuffled-but-deterministic order, so
/// bulk construction pays a real sort and tail inserts land mid-run.
fn scattered(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let a = (i * 7919) % n;
            vec![Value::Int(a as i64), Value::Int(i as i64)].into()
        })
        .collect()
}

fn modes() -> [(&'static str, StorageMode); 3] {
    [
        ("adaptive", StorageMode::Adaptive),
        ("columnar", StorageMode::Columnar),
        ("btree", StorageMode::Btree),
    ]
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage-columnar");
    group.sample_size(10);
    for n in [1024usize, 8192] {
        let tuples = scattered(n);
        for (label, mode) in modes() {
            group.bench_with_input(
                BenchmarkId::new(format!("from-tuples-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        Relation::from_tuples_in(mode, 2, tuples.clone())
                            .unwrap()
                            .len()
                    })
                },
            );
        }

        // Tail inserts over a sorted base: the columnar engine absorbs
        // them into its mutable tail, then re-adopts on read.
        let fresh: Vec<Tuple> = (0..n / 8)
            .map(|i| vec![Value::Int(-(i as i64) - 1), Value::Int(i as i64)].into())
            .collect();
        for (label, mode) in modes() {
            let base = Relation::from_tuples_in(mode, 2, tuples.clone()).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("insert-tail-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut r = base.clone();
                        for t in &fresh {
                            r.insert(t.clone()).unwrap();
                        }
                        // Force the merged view the way a reader would.
                        assert!(r.iter().count() == n + fresh.len());
                        r.len()
                    })
                },
            );
        }

        // Delta application: adds and removes in one batch — the
        // columnar run-merge path against B-tree set edits.
        for (label, mode) in modes() {
            let base = Relation::from_tuples_in(mode, 2, tuples.clone()).unwrap();
            let mut target = base.clone();
            for t in &fresh {
                target.insert(t.clone()).unwrap();
            }
            for t in tuples.iter().step_by(16) {
                target.remove(t);
            }
            let delta = target.diff(&base).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("delta-apply-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut r = base.clone();
                        r.apply_delta(&delta).unwrap();
                        assert!(r.iter().count() == target.len());
                        r.len()
                    })
                },
            );
        }

        // Point membership over the whole key range: galloping into
        // sorted runs vs B-tree descent.
        for (label, mode) in modes() {
            let rel = Relation::from_tuples_in(mode, 2, tuples.clone()).unwrap();
            group.bench_with_input(BenchmarkId::new(format!("probe-{label}"), n), &n, |b, _| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for t in tuples.iter().step_by(3) {
                        if rel.contains(t) {
                            hits += 1;
                        }
                    }
                    hits
                })
            });
        }
    }
    group.finish();
}

/// The threshold sweep: the round executors' workload shape — point
/// inserts, removes, probes, and occasional ordered scans on relations
/// of a few dozen to a few thousand tuples — at sizes straddling the
/// promotion threshold (16/64 stay in the small regime under the
/// default threshold, 256 promotes exactly at the boundary, 1024 runs
/// promoted). The adaptive engine should track btree below the
/// threshold and columnar above it.
fn bench_threshold_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage-adaptive");
    group.sample_size(10);
    for n in [16usize, 64, 256, 1024] {
        let tuples = scattered(n);
        for (label, mode) in modes() {
            // insert: grow from empty by point inserts (the transducer
            // round shape), reading nothing.
            group.bench_with_input(
                BenchmarkId::new(format!("threshold-sweep-insert-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut r = Relation::empty_in(mode, 2);
                        for t in &tuples {
                            r.insert(t.clone()).unwrap();
                        }
                        r.len()
                    })
                },
            );

            // remove: drain half of a built relation fact by fact.
            let base = Relation::from_tuples_in(mode, 2, tuples.clone()).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("threshold-sweep-remove-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut r = base.clone();
                        for t in tuples.iter().step_by(2) {
                            r.remove(t);
                        }
                        r.len()
                    })
                },
            );

            // probe: membership over the whole key range, half misses.
            let probes: Vec<Tuple> = (0..n)
                .map(|i| {
                    let a = (i * 7919) % n;
                    let b = if i % 2 == 0 { i as i64 } else { -1 };
                    vec![Value::Int(a as i64), Value::Int(b)].into()
                })
                .collect();
            group.bench_with_input(
                BenchmarkId::new(format!("threshold-sweep-probe-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for t in &probes {
                            if base.contains(t) {
                                hits += 1;
                            }
                        }
                        hits
                    })
                },
            );

            // scan: ordered iteration after a point mutation — the
            // order-demand cost (sort for small, fold for columnar).
            group.bench_with_input(
                BenchmarkId::new(format!("threshold-sweep-scan-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut r = base.clone();
                        r.remove(&tuples[0]);
                        r.insert(tuples[0].clone()).unwrap();
                        r.iter().count()
                    })
                },
            );
        }

        // index-memo: repeated column-index probes of an *unchanged*
        // relation — the access pattern of magic-set guard relations,
        // which are consulted every semi-naive round but rarely
        // mutated. The small regime memoizes the per-call index (and
        // takes no promotion pressure from it), so repeat probes cost
        // a hash lookup, not a rebuild.
        for (label, mode) in modes() {
            let base = Relation::from_tuples_in(mode, 2, tuples.clone()).unwrap();
            let key = tuples[0].clone();
            group.bench_with_input(
                BenchmarkId::new(format!("index-memo-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for _ in 0..64 {
                            let idx = base.index(&[0]).unwrap();
                            hits += idx.probe(&key.values()[..1]).len();
                        }
                        hits
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_storage, bench_threshold_sweep);
criterion_main!(benches);

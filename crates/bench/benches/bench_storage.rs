//! Storage-engine microbenchmarks: the columnar sorted-run engine
//! against the `RTX_STORAGE=btree` oracle on the operations the
//! relational kernel actually spends time in — bulk construction,
//! tail inserts with adoption, delta application (run merge), and
//! membership probes. Both engines are pinned explicitly with
//! `empty_in`/`from_tuples_in`, so one run records the ablation
//! whatever the ambient `RTX_STORAGE` is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_relational::{Relation, StorageMode, Tuple, Value};

/// `n` two-column tuples in a shuffled-but-deterministic order, so
/// bulk construction pays a real sort and tail inserts land mid-run.
fn scattered(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let a = (i * 7919) % n;
            vec![Value::Int(a as i64), Value::Int(i as i64)].into()
        })
        .collect()
}

fn modes() -> [(&'static str, StorageMode); 2] {
    [
        ("columnar", StorageMode::Columnar),
        ("btree", StorageMode::Btree),
    ]
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage-columnar");
    group.sample_size(10);
    for n in [1024usize, 8192] {
        let tuples = scattered(n);
        for (label, mode) in modes() {
            group.bench_with_input(
                BenchmarkId::new(format!("from-tuples-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        Relation::from_tuples_in(mode, 2, tuples.clone())
                            .unwrap()
                            .len()
                    })
                },
            );
        }

        // Tail inserts over a sorted base: the columnar engine absorbs
        // them into its mutable tail, then re-adopts on read.
        let fresh: Vec<Tuple> = (0..n / 8)
            .map(|i| vec![Value::Int(-(i as i64) - 1), Value::Int(i as i64)].into())
            .collect();
        for (label, mode) in modes() {
            let base = Relation::from_tuples_in(mode, 2, tuples.clone()).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("insert-tail-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut r = base.clone();
                        for t in &fresh {
                            r.insert(t.clone()).unwrap();
                        }
                        // Force the merged view the way a reader would.
                        assert!(r.iter().count() == n + fresh.len());
                        r.len()
                    })
                },
            );
        }

        // Delta application: adds and removes in one batch — the
        // columnar run-merge path against B-tree set edits.
        for (label, mode) in modes() {
            let base = Relation::from_tuples_in(mode, 2, tuples.clone()).unwrap();
            let mut target = base.clone();
            for t in &fresh {
                target.insert(t.clone()).unwrap();
            }
            for t in tuples.iter().step_by(16) {
                target.remove(t);
            }
            let delta = target.diff(&base).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("delta-apply-{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut r = base.clone();
                        r.apply_delta(&delta).unwrap();
                        assert!(r.iter().count() == target.len());
                        r.len()
                    })
                },
            );
        }

        // Point membership over the whole key range: galloping into
        // sorted runs vs B-tree descent.
        for (label, mode) in modes() {
            let rel = Relation::from_tuples_in(mode, 2, tuples.clone()).unwrap();
            group.bench_with_input(BenchmarkId::new(format!("probe-{label}"), n), &n, |b, _| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for t in tuples.iter().step_by(3) {
                        if rel.contains(t) {
                            hits += 1;
                        }
                    }
                    hits
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);

//! EX-10 benchmark: the cost of certifying a nonmonotone query — message
//! volume of the emptiness transducer grows with the network, while the
//! monotone identity (via flooding) stays cheap on empty inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_bench::run_fifo;
use rtx_calm::constructions::flood::{flood_transducer, FloodMode};
use rtx_calm::examples::ex10_emptiness;
use rtx_net::Network;
use rtx_relational::{Instance, Schema};

fn bench_emptiness(c: &mut Criterion) {
    let schema = Schema::new().with("S", 1);
    let empty = Instance::empty(schema.clone());
    let mut group = c.benchmark_group("emptiness-vs-monotone");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let net = Network::line(n).unwrap();
        let coordinating = ex10_emptiness().unwrap();
        group.bench_with_input(BenchmarkId::new("emptiness", n), &n, |b, _| {
            b.iter(|| {
                let out = run_fifo(&net, &coordinating, &empty);
                assert!(out.output.as_bool());
                out.messages_enqueued
            })
        });
        let monotone = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        group.bench_with_input(BenchmarkId::new("flood-baseline", n), &n, |b, _| {
            b.iter(|| run_fifo(&net, &monotone, &empty).messages_enqueued)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_emptiness);
criterion_main!(benches);

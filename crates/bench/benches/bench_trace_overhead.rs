//! Observability overhead: the same two tier-1 workloads — the
//! grid-256 flood on the sharded executor (`net-sharded`'s shape) and
//! the Dedalus incremental transitive closure
//! (`dedalus-tc-fixpoint`'s shape) — measured at each `RTX_TRACE`
//! level.
//!
//! The `off` rows are the satellite proof obligation: with the
//! instrumentation compiled in but disabled, every hook is one relaxed
//! atomic load, so `off` must sit within noise (≤ 2% geomean) of the
//! same workloads' pre-observability records in `BENCH_baseline.json`
//! (`net-sharded/serial/grid-256`, `dedalus-tc-fixpoint/*` — compare
//! with `bench_diff`). The `counters` and `full` rows price the knob:
//! counters is end-of-run registry publishing, full additionally
//! buffers every span/instant event.

use criterion::{criterion_group, criterion_main, BenchmarkId, Calibration, Criterion};
use rtx_bench::set_input;
use rtx_calm::constructions::flood::{flood_transducer, FloodMode};
use rtx_dedalus::{
    DedalusOptions, DedalusProgram, DedalusRuntime, FixpointMode, StoreMode, TemporalFacts,
};
use rtx_net::{run_sharded, HorizontalPartition, Network, RunBudget, ShardOptions};
use rtx_obs::trace;
use rtx_obs::TraceLevel;
use rtx_query::atom;
use rtx_relational::Fact;

/// Match the `net-*` calibration floor (see `bench_net.rs`): whole-run
/// iterations need a larger sampling budget to converge.
fn net_cal() -> Option<Calibration> {
    Calibration::auto().map(|c| Calibration {
        budget: c.budget.max(std::time::Duration::from_millis(4000)),
        ..c
    })
}

const LEVELS: [(&str, TraceLevel); 3] = [
    ("off", TraceLevel::Off),
    ("counters", TraceLevel::Counters),
    ("full", TraceLevel::Full),
];

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace-overhead");
    group.sample_size(5);

    // The net-sharded grid-256 workload: fixed transition budget, same
    // shape as `net-sharded/serial/grid-256`.
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(8);
    let net = Network::grid(16, 16).unwrap();
    let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    let budget = RunBudget::steps(2 * 8 * net.len());
    for (label, level) in LEVELS {
        group.bench_with_input(BenchmarkId::new("net-grid-256", label), &level, |b, &lv| {
            let _guard = trace::level_guard(lv);
            b.iter_with(net_cal(), || {
                // Each iteration is one capture frame, so full-level
                // event buffers cannot accumulate across iterations.
                let (out, _trace) = trace::capture_run(|| {
                    run_sharded(&net, &t, &p, &ShardOptions::serial(), &budget).unwrap()
                });
                assert!(out.outcome.steps > 0);
                out.outcome.messages_enqueued
            })
        });
    }

    // The dedalus-tc-fixpoint workload: incremental maintenance under
    // one-edge-per-tick arrivals, same shape as
    // `dedalus-tc-fixpoint/incremental/64`.
    let program = DedalusProgram::new(vec![
        rtx_dedalus::DRule::persist("e", 2),
        rtx_dedalus::DRule::new(atom!("t"; @"X", @"Y"), rtx_dedalus::DTime::Same)
            .when(atom!("e"; @"X", @"Y")),
        rtx_dedalus::DRule::new(atom!("t"; @"X", @"Z"), rtx_dedalus::DTime::Same)
            .when(atom!("t"; @"X", @"Y"))
            .when(atom!("e"; @"Y", @"Z")),
    ])
    .unwrap();
    let rt = DedalusRuntime::new(&program).unwrap();
    let n = 64usize;
    let mut edb = TemporalFacts::new();
    for i in 0..n as i64 {
        edb.insert(
            i as u64,
            Fact::new(
                "e",
                rtx_relational::Tuple::new(vec![
                    rtx_relational::Value::int(i),
                    rtx_relational::Value::int(i + 1),
                ]),
            ),
        );
    }
    let opts = DedalusOptions {
        max_ticks: n as u64 + 8,
        async_max_delay: 1,
        seed: 0,
        async_faults: None,
    };
    for (label, level) in LEVELS {
        group.bench_with_input(
            BenchmarkId::new("dedalus-tc-64", label),
            &level,
            |b, &lv| {
                let _guard = trace::level_guard(lv);
                b.iter(|| {
                    let (trace_out, _trace) = trace::capture_run(|| {
                        rt.run_with_fixpoint(
                            &edb,
                            &opts,
                            StoreMode::Delta,
                            FixpointMode::Incremental,
                        )
                        .unwrap()
                    });
                    assert!(trace_out.converged_at.is_some());
                    trace_out.ticks.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);

//! THM-6.2 benchmark: first-output latency of the oblivious streaming
//! wrapper — monotone queries emit partial answers before the input has
//! fully disseminated ("embarrassing parallelism"), while the Theorem
//! 6(1) multicast wrapper stays silent until Ready.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_bench::chain_input;
use rtx_calm::constructions::datalog_dist::transitive_closure_program;
use rtx_calm::constructions::distribute::{distribute_any, distribute_monotone};
use rtx_calm::constructions::flood::FloodMode;
use rtx_net::{Configuration, HorizontalPartition, Network};
use rtx_query::{DatalogQuery, QueryRef};
use std::sync::Arc;

/// Steps of a FIFO round-robin run until the first output tuple appears.
fn steps_to_first_output(
    net: &Network,
    t: &rtx_transducer::Transducer,
    p: &HorizontalPartition,
) -> usize {
    use rtx_net::{Action, FifoRoundRobin, Scheduler};
    let mut cfg = Configuration::initial(net, t, p).unwrap();
    let mut sched = FifoRoundRobin::new();
    for step in 0..200_000usize {
        let rec = if cfg.all_buffers_empty() {
            let n = *net.nodes().next().unwrap();
            cfg.apply_heartbeat(net, t, &n).unwrap()
        } else {
            match sched.next_action(&cfg, net) {
                Action::Heartbeat(n) => cfg.apply_heartbeat(net, t, &n).unwrap(),
                Action::Deliver(n, i) => cfg.apply_delivery(net, t, &n, i).unwrap(),
            }
        };
        if !rec.output.is_empty() {
            return step + 1;
        }
    }
    usize::MAX
}

fn bench_monotone_stream(c: &mut Criterion) {
    let q: QueryRef = Arc::new(DatalogQuery::new(transitive_closure_program(), "T").unwrap());
    let input = chain_input("E", 5);
    let net = Network::line(4).unwrap();
    let mut group = c.benchmark_group("first-output-latency");
    group.sample_size(10);

    let streaming = distribute_monotone(q.clone(), input.schema(), FloodMode::Dedup).unwrap();
    group.bench_function(BenchmarkId::new("thm6.2-streaming", "line4"), |b| {
        b.iter(|| {
            let p = HorizontalPartition::round_robin(&net, &input);
            let s = steps_to_first_output(&net, &streaming, &p);
            assert!(s < usize::MAX);
            s
        })
    });

    let collect_first = distribute_any(q.clone(), input.schema()).unwrap();
    group.bench_function(BenchmarkId::new("thm6.1-collect-first", "line4"), |b| {
        b.iter(|| {
            let p = HorizontalPartition::round_robin(&net, &input);
            let s = steps_to_first_output(&net, &collect_first, &p);
            assert!(s < usize::MAX);
            s
        })
    });
    group.finish();
}

criterion_group!(benches, bench_monotone_stream);
criterion_main!(benches);

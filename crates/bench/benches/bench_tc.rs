//! EX-3b / THM-6.2 benchmark: distributed transitive closure —
//! convergence cost vs input size, topology, and partition skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_bench::chain_input;
use rtx_calm::examples::ex3_transitive_closure;
use rtx_net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget};

fn bench_tc(c: &mut Criterion) {
    let t = ex3_transitive_closure(true).unwrap();
    let mut group = c.benchmark_group("distributed-tc");
    group.sample_size(10);

    for n in [3usize, 5, 7] {
        let input = chain_input("S", n);
        let net = Network::ring(3).unwrap();
        group.bench_with_input(BenchmarkId::new("chain-length", n), &n, |b, _| {
            b.iter(|| {
                let p = HorizontalPartition::round_robin(&net, &input);
                let out = run(
                    &net,
                    &t,
                    &p,
                    &mut FifoRoundRobin::new(),
                    &RunBudget::steps(5_000_000),
                )
                .unwrap();
                assert!(out.quiescent);
                out.steps
            })
        });
    }

    let input = chain_input("S", 5);
    for (label, net) in [
        ("line4", Network::line(4).unwrap()),
        ("ring4", Network::ring(4).unwrap()),
        ("clique4", Network::clique(4).unwrap()),
    ] {
        group.bench_function(BenchmarkId::new("topology", label), |b| {
            b.iter(|| {
                let p = HorizontalPartition::round_robin(&net, &input);
                run(
                    &net,
                    &t,
                    &p,
                    &mut FifoRoundRobin::new(),
                    &RunBudget::steps(5_000_000),
                )
                .unwrap()
                .steps
            })
        });
    }

    // partition skew: balanced vs all-at-one-node
    let net = Network::line(4).unwrap();
    group.bench_function("partition/balanced", |b| {
        b.iter(|| {
            let p = HorizontalPartition::round_robin(&net, &input);
            run(
                &net,
                &t,
                &p,
                &mut FifoRoundRobin::new(),
                &RunBudget::steps(5_000_000),
            )
            .unwrap()
            .steps
        })
    });
    group.bench_function("partition/concentrated", |b| {
        b.iter(|| {
            let owner = net.nodes().next().unwrap();
            let p = HorizontalPartition::concentrate(&net, &input, owner).unwrap();
            run(
                &net,
                &t,
                &p,
                &mut FifoRoundRobin::new(),
                &RunBudget::steps(5_000_000),
            )
            .unwrap()
            .steps
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tc);
criterion_main!(benches);

//! Sharded vs serial round-synchronous network execution.
//!
//! Measures `rtx_net::run_sharded` wall time at `ExecMode::Serial`
//! against `ExecMode::Sharded` on ring / grid / random topologies from
//! 64 to 1024 nodes. Each iteration executes a *fixed* transition
//! budget (not to-quiescence), so serial and sharded runs do exactly
//! the same work — the executors are bit-identical by construction —
//! and the ratio is pure executor overhead vs parallel win.
//!
//! On a multicore host the sharded executor should beat serial from
//! ~256 nodes at 4 threads (per-node heartbeat/delivery steps dominate
//! and parallelize; the barrier merge is cheap). On a single-core host
//! the sharded rows degrade to serial plus coordination overhead —
//! check `nproc` before reading the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Calibration, Criterion};
use rtx_bench::set_input;
use rtx_calm::constructions::flood::{flood_transducer, FloodMode};
use rtx_net::{
    run_sharded, run_sparse_from, Configuration, DeliveryPolicy, HorizontalPartition, Network,
    NodeId, RunBudget, ShardOptions,
};

/// Rounds of work per iteration: each round is one heartbeat per node
/// plus up to one delivery per node, so the budget is `2 * ROUNDS * n`.
const ROUNDS: usize = 8;

/// Calibration for the `net-*` groups: single iterations here run
/// tens of milliseconds (a whole network to a step budget), so the
/// default 200ms sampling budget exhausts before the MAD converges
/// and the record lands `calibrated: 0` (the PR-7 baseline's
/// `net-sharded/serial/ring-256` showed a 28ms MAD). Raise the floor
/// so every committed record calibrates; `RTX_BENCH_BUDGET_MS` can
/// still push it higher.
fn net_cal() -> Option<Calibration> {
    Calibration::auto().map(|c| Calibration {
        budget: c.budget.max(std::time::Duration::from_millis(4000)),
        ..c
    })
}

fn topologies() -> Vec<(&'static str, Network)> {
    vec![
        ("ring-64", Network::ring(64).unwrap()),
        ("ring-256", Network::ring(256).unwrap()),
        ("grid-256", Network::grid(16, 16).unwrap()),
        (
            "random-256",
            Network::random_connected_seeded(256, 0.01, 7).unwrap(),
        ),
        ("grid-1024", Network::grid(32, 32).unwrap()),
    ]
}

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(8);
    let mut group = c.benchmark_group("net-sharded");
    group.sample_size(3);
    for (label, net) in topologies() {
        let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(2 * ROUNDS * net.len());
        group.bench_with_input(BenchmarkId::new("serial", label), &net, |b, net| {
            b.iter_with(net_cal(), || {
                let out = run_sharded(net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
                assert!(out.outcome.steps > 0);
                out.outcome.messages_enqueued
            })
        });
        group.bench_with_input(BenchmarkId::new("sharded-4", label), &net, |b, net| {
            b.iter_with(net_cal(), || {
                let out = run_sharded(net, &t, &p, &ShardOptions::sharded(4), &budget).unwrap();
                assert!(out.outcome.steps > 0);
                out.outcome.messages_enqueued
            })
        });
    }
    group.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(8);
    let net = Network::grid(16, 16).unwrap();
    let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    let budget = RunBudget::steps(2 * ROUNDS * net.len());
    let mut group = c.benchmark_group("net-threads-grid-256");
    group.sample_size(3);
    group.bench_function(BenchmarkId::from_parameter("serial"), |b| {
        b.iter_with(net_cal(), || {
            run_sharded(&net, &t, &p, &ShardOptions::serial(), &budget)
                .unwrap()
                .outcome
                .steps
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_with(net_cal(), || {
                    run_sharded(&net, &t, &p, &ShardOptions::sharded(threads), &budget)
                        .unwrap()
                        .outcome
                        .steps
                })
            },
        );
    }
    group.finish();
}

/// Per-edge outbox batching: to-quiescence dissemination runs with one
/// delivery per node per round vs `DeliveryPolicy::Batch(k)`. Batching
/// amortizes the per-round heartbeat sweep and barrier over up to `k`
/// delivery sub-phases, so fewer total rounds (and fewer no-op
/// heartbeats) reach the same quiescent configuration.
fn bench_delivery_batching(c: &mut Criterion) {
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(8);
    let mut group = c.benchmark_group("net-delivery-batch");
    group.sample_size(3);
    for (label, net) in [
        ("ring-64", Network::ring(64).unwrap()),
        ("grid-256", Network::grid(16, 16).unwrap()),
    ] {
        let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(50_000_000);
        for (plabel, policy) in [
            ("one", DeliveryPolicy::One),
            ("batch-4", DeliveryPolicy::Batch(4)),
            ("batch-16", DeliveryPolicy::Batch(16)),
        ] {
            let opts = ShardOptions::serial().with_delivery(policy);
            group.bench_with_input(BenchmarkId::new(plabel, label), &net, |b, net| {
                b.iter_with(net_cal(), || {
                    let out = run_sharded(net, &t, &p, &opts, &budget).unwrap();
                    assert!(out.outcome.quiescent);
                    out.rounds
                })
            });
        }
    }
    group.finish();
}

/// The event-driven sparse executor at scale: one seeded fact in the
/// corner of a long grid, so the active frontier is a BFS wave bounded
/// by the short grid side — well under 1% of the network — while the
/// dense round-synchronous executor would heartbeat every node every
/// round. Quiescing this workload densely costs at least
/// `diameter × n` node-steps (the wave needs ≥ diameter rounds, each
/// heartbeating all n nodes), so each iteration asserts the sparse
/// step count stays ≥10× below that bound, and that the scheduled
/// frontier never exceeds the 1% warm-up chunk plus a few wave fronts.
///
/// Scales: 10⁴ and 10⁵ nodes always; the 10⁶-node row only when
/// `RTX_BENCH_HUGE` is set (it is minutes of work on small hosts).
/// Initial configurations come from `Configuration::initial_lean`,
/// which skips the Θ(n²) `All`-fact population for oblivious machines.
fn bench_sparse_frontier(c: &mut Criterion) {
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(1);
    let mut group = c.benchmark_group("net-sparse");
    group.sample_size(2);
    let mut scales = vec![("grid-10k", 500usize, 20usize), ("grid-100k", 1000, 100)];
    if std::env::var_os("RTX_BENCH_HUGE").is_some() {
        scales.push(("grid-1m", 10_000, 100));
    }
    for (label, w, h) in scales {
        let net = Network::grid(w, h).unwrap();
        let n = net.len();
        let diameter = w + h - 2;
        let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        let p = HorizontalPartition::concentrate(&net, &input, &NodeId::sym("n0")).unwrap();
        let budget = RunBudget::steps(usize::MAX / 2);
        group.bench_with_input(BenchmarkId::new("sparse", label), &net, |b, net| {
            b.iter_with(net_cal(), || {
                let cfg = Configuration::initial_lean(net, &t, &p).unwrap();
                let out = run_sparse_from(net, &t, cfg, &ShardOptions::serial(), &budget).unwrap();
                assert!(out.outcome.quiescent);
                assert!(
                    out.max_active <= n / 100 + 8 * h,
                    "{label}: frontier {} too wide",
                    out.max_active
                );
                assert!(
                    out.outcome.steps * 10 <= diameter * n,
                    "{label}: sparse took {} steps, dense lower bound is {}",
                    out.outcome.steps,
                    diameter * n
                );
                out.outcome.steps
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_vs_serial,
    bench_thread_sweep,
    bench_delivery_batching,
    bench_sparse_frontier
);
criterion_main!(benches);

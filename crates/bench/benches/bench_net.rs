//! Sharded vs serial round-synchronous network execution.
//!
//! Measures `rtx_net::run_sharded` wall time at `ExecMode::Serial`
//! against `ExecMode::Sharded` on ring / grid / random topologies from
//! 64 to 1024 nodes. Each iteration executes a *fixed* transition
//! budget (not to-quiescence), so serial and sharded runs do exactly
//! the same work — the executors are bit-identical by construction —
//! and the ratio is pure executor overhead vs parallel win.
//!
//! On a multicore host the sharded executor should beat serial from
//! ~256 nodes at 4 threads (per-node heartbeat/delivery steps dominate
//! and parallelize; the barrier merge is cheap). On a single-core host
//! the sharded rows degrade to serial plus coordination overhead —
//! check `nproc` before reading the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_bench::set_input;
use rtx_calm::constructions::flood::{flood_transducer, FloodMode};
use rtx_net::{run_sharded, DeliveryPolicy, HorizontalPartition, Network, RunBudget, ShardOptions};

/// Rounds of work per iteration: each round is one heartbeat per node
/// plus up to one delivery per node, so the budget is `2 * ROUNDS * n`.
const ROUNDS: usize = 8;

fn topologies() -> Vec<(&'static str, Network)> {
    vec![
        ("ring-64", Network::ring(64).unwrap()),
        ("ring-256", Network::ring(256).unwrap()),
        ("grid-256", Network::grid(16, 16).unwrap()),
        (
            "random-256",
            Network::random_connected_seeded(256, 0.01, 7).unwrap(),
        ),
        ("grid-1024", Network::grid(32, 32).unwrap()),
    ]
}

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(8);
    let mut group = c.benchmark_group("net-sharded");
    group.sample_size(3);
    for (label, net) in topologies() {
        let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(2 * ROUNDS * net.len());
        group.bench_with_input(BenchmarkId::new("serial", label), &net, |b, net| {
            b.iter(|| {
                let out = run_sharded(net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
                assert!(out.outcome.steps > 0);
                out.outcome.messages_enqueued
            })
        });
        group.bench_with_input(BenchmarkId::new("sharded-4", label), &net, |b, net| {
            b.iter(|| {
                let out = run_sharded(net, &t, &p, &ShardOptions::sharded(4), &budget).unwrap();
                assert!(out.outcome.steps > 0);
                out.outcome.messages_enqueued
            })
        });
    }
    group.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(8);
    let net = Network::grid(16, 16).unwrap();
    let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
    let p = HorizontalPartition::round_robin(&net, &input);
    let budget = RunBudget::steps(2 * ROUNDS * net.len());
    let mut group = c.benchmark_group("net-threads-grid-256");
    group.sample_size(3);
    group.bench_function(BenchmarkId::from_parameter("serial"), |b| {
        b.iter(|| {
            run_sharded(&net, &t, &p, &ShardOptions::serial(), &budget)
                .unwrap()
                .outcome
                .steps
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_sharded(&net, &t, &p, &ShardOptions::sharded(threads), &budget)
                        .unwrap()
                        .outcome
                        .steps
                })
            },
        );
    }
    group.finish();
}

/// Per-edge outbox batching: to-quiescence dissemination runs with one
/// delivery per node per round vs `DeliveryPolicy::Batch(k)`. Batching
/// amortizes the per-round heartbeat sweep and barrier over up to `k`
/// delivery sub-phases, so fewer total rounds (and fewer no-op
/// heartbeats) reach the same quiescent configuration.
fn bench_delivery_batching(c: &mut Criterion) {
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(8);
    let mut group = c.benchmark_group("net-delivery-batch");
    group.sample_size(3);
    for (label, net) in [
        ("ring-64", Network::ring(64).unwrap()),
        ("grid-256", Network::grid(16, 16).unwrap()),
    ] {
        let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(50_000_000);
        for (plabel, policy) in [
            ("one", DeliveryPolicy::One),
            ("batch-4", DeliveryPolicy::Batch(4)),
            ("batch-16", DeliveryPolicy::Batch(16)),
        ] {
            let opts = ShardOptions::serial().with_delivery(policy);
            group.bench_with_input(BenchmarkId::new(plabel, label), &net, |b, net| {
                b.iter(|| {
                    let out = run_sharded(net, &t, &p, &opts, &budget).unwrap();
                    assert!(out.outcome.quiescent);
                    out.rounds
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_vs_serial,
    bench_thread_sweep,
    bench_delivery_batching
);
criterion_main!(benches);

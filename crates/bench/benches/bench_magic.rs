//! Goal-directed query benchmarks: a bound point lookup on large
//! recursive instances, answered three ways —
//!
//! * `materialize`: evaluate the whole program bottom-up, filter;
//! * `magic`: the magic-sets rewrite, deriving only the
//!   demand-reachable facts (the `QueryMode::Magic` default);
//! * `magic-rebind`: a maintained magic fixpoint whose binding
//!   changes between measurements — the ± seed delta path, where the
//!   previous demand is retracted and the new one derived
//!   incrementally.
//!
//! Instances: transitive closure on a chain (reachable set is O(n),
//! full closure O(n²) — the headline ≥10× case at n ≥ 1k) and
//! same-generation on a balanced binary tree (the classic
//! magic-sets example, where bound demand prunes the quadratic
//! sg-pairs space to one root-to-leaf spine's worth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_query::parser::parse_program;
use rtx_query::{atom, Program, QueryMode};
use rtx_relational::{fact, Instance, Schema};

fn chain_db(n: i64) -> Instance {
    let mut db = Instance::empty(Schema::new().with("e", 2));
    for i in 0..n {
        db.insert_fact(fact!("e", i, i + 1)).unwrap();
    }
    db
}

/// A balanced binary tree with `levels` levels as `par(child, parent)`
/// edges; node ids are heap order (root 1).
fn tree_db(levels: u32) -> Instance {
    let mut db = Instance::empty(Schema::new().with("par", 2));
    for child in 2..(1i64 << levels) {
        db.insert_fact(fact!("par", child, child / 2)).unwrap();
    }
    db
}

fn tc_program() -> Program {
    parse_program("p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), e(Y,Z).").unwrap()
}

fn sg_program() -> Program {
    parse_program(
        "sg(X,X) :- par(X,P).
         sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).",
    )
    .unwrap()
}

fn bench_magic(c: &mut Criterion) {
    let mut group = c.benchmark_group("magic");
    group.sample_size(10);

    for n in [256i64, 1024] {
        let db = chain_db(n);
        let program = tc_program();
        let pattern = atom!("p"; 0, @"Y");
        let full = program
            .for_query_mode(&pattern, QueryMode::Materialize)
            .unwrap();
        let magic = program.for_query_mode(&pattern, QueryMode::Magic).unwrap();
        assert!(magic.is_magic());
        // The rewrite must not change the answer.
        assert_eq!(magic.answer(&db).unwrap(), full.answer(&db).unwrap());

        group.bench_with_input(BenchmarkId::new("tc-point-materialize", n), &n, |b, _| {
            b.iter(|| full.answer(&db).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("tc-point-magic", n), &n, |b, _| {
            b.iter(|| magic.answer(&db).unwrap().len())
        });

        // Rebind: keep one maintained fixpoint and move the bound
        // constant each iteration — only the demand delta is
        // re-derived.
        let mut fix = magic.maintained(&db).unwrap();
        let mut current = magic.clone();
        let mut next_const = 1i64;
        group.bench_with_input(BenchmarkId::new("tc-point-magic-rebind", n), &n, |b, _| {
            b.iter(|| {
                let (q2, delta) = current.rebind(&atom!("p"; next_const, @"Y")).unwrap();
                next_const = (next_const + 1) % n;
                fix.apply(&delta).unwrap();
                current = q2;
                current.answer_from(fix.current()).unwrap().len()
            })
        });
    }

    for levels in [7u32, 9] {
        let db = tree_db(levels);
        let program = sg_program();
        let leaf = 1i64 << (levels - 1); // leftmost leaf
        let pattern = atom!("sg"; leaf, @"Y");
        let full = program
            .for_query_mode(&pattern, QueryMode::Materialize)
            .unwrap();
        let magic = program.for_query_mode(&pattern, QueryMode::Magic).unwrap();
        assert!(magic.is_magic());
        assert_eq!(magic.answer(&db).unwrap(), full.answer(&db).unwrap());

        let n = 1i64 << levels;
        group.bench_with_input(BenchmarkId::new("sg-point-materialize", n), &n, |b, _| {
            b.iter(|| full.answer(&db).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("sg-point-magic", n), &n, |b, _| {
            b.iter(|| magic.answer(&db).unwrap().len())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_magic);
criterion_main!(benches);

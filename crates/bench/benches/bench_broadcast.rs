//! LEM-5.1/5.2 benchmark: wall time of dissemination to quiescence —
//! flooding vs ack-multicast, over network size and topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_bench::{run_fifo, set_input};
use rtx_calm::constructions::flood::{flood_transducer, FloodMode};
use rtx_calm::constructions::multicast::multicast_transducer;
use rtx_net::Network;
use rtx_relational::Schema;

fn bench_broadcast(c: &mut Criterion) {
    let schema = Schema::new().with("S", 1);
    let input = set_input(4);
    let mut group = c.benchmark_group("dissemination");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let net = Network::line(n).unwrap();
        let flood = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        group.bench_with_input(BenchmarkId::new("flood-line", n), &n, |b, _| {
            b.iter(|| {
                let out = run_fifo(&net, &flood, &input);
                assert!(out.quiescent);
                out.messages_enqueued
            })
        });
        let mcast = multicast_transducer(&schema, None).unwrap();
        group.bench_with_input(BenchmarkId::new("multicast-line", n), &n, |b, _| {
            b.iter(|| {
                let out = run_fifo(&net, &mcast, &input);
                assert!(out.quiescent);
                out.messages_enqueued
            })
        });
    }
    // topology sweep at fixed size
    for (label, net) in [
        ("ring", Network::ring(5).unwrap()),
        ("star", Network::star(5).unwrap()),
        ("clique", Network::clique(5).unwrap()),
    ] {
        let flood = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        group.bench_function(BenchmarkId::new("flood-topo", label), |b| {
            b.iter(|| run_fifo(&net, &flood, &input).messages_enqueued)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);

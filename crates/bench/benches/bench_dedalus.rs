//! THM-18 benchmark: the Dedalus Turing-machine simulation — ticks and
//! wall time vs word length, against the direct interpreter baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_dedalus::{simulate_word, DedalusOptions, InputSchedule};
use rtx_machine::machines;

fn bench_dedalus(c: &mut Criterion) {
    let opts = DedalusOptions {
        max_ticks: 5000,
        async_max_delay: 1,
        seed: 0,
    };
    let mut group = c.benchmark_group("dedalus-tm");
    group.sample_size(10);
    let m = machines::even_as();
    for len in [2usize, 4, 6] {
        let word: String = "ab".repeat(len / 2);
        group.bench_with_input(BenchmarkId::new("dedalus-even-as", len), &len, |b, _| {
            b.iter(|| {
                let out = simulate_word(&m, &word, InputSchedule::AllAtZero, &opts).unwrap();
                assert!(out.converged_at.is_some());
                out.ticks
            })
        });
        group.bench_with_input(
            BenchmarkId::new("interpreter-even-as", len),
            &len,
            |b, _| b.iter(|| m.run(&word, 1_000_000).unwrap().accepted()),
        );
    }
    let pal = machines::palindrome();
    for (label, word) in [("aa", "aa"), ("abba", "abba")] {
        group.bench_function(BenchmarkId::new("dedalus-palindrome", label), |b| {
            b.iter(|| {
                simulate_word(&pal, word, InputSchedule::AllAtZero, &opts)
                    .unwrap()
                    .ticks
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dedalus);
criterion_main!(benches);

//! THM-18 benchmark: the Dedalus Turing-machine simulation — ticks and
//! wall time vs word length, against the direct interpreter baseline —
//! plus the delta-vs-clone store ablation on the TM simulation and on a
//! larger transitive-closure workload, and the cross-tick
//! incremental-vs-scratch fixpoint ablation (`dedalus-tc-fixpoint`,
//! `dedalus-tm-fixpoint`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_dedalus::{
    simulate_word, DedalusOptions, DedalusProgram, DedalusRuntime, FixpointMode, InputSchedule,
    StoreMode, TemporalFacts,
};
use rtx_machine::machines;
use rtx_query::atom;
use rtx_relational::Fact;

fn bench_dedalus(c: &mut Criterion) {
    let opts = DedalusOptions {
        max_ticks: 5000,
        async_max_delay: 1,
        seed: 0,
        async_faults: None,
    };
    let mut group = c.benchmark_group("dedalus-tm");
    group.sample_size(10);
    let m = machines::even_as();
    for len in [2usize, 4, 6] {
        let word: String = "ab".repeat(len / 2);
        group.bench_with_input(BenchmarkId::new("dedalus-even-as", len), &len, |b, _| {
            b.iter(|| {
                let out = simulate_word(&m, &word, InputSchedule::AllAtZero, &opts).unwrap();
                assert!(out.converged_at.is_some());
                out.ticks
            })
        });
        group.bench_with_input(
            BenchmarkId::new("interpreter-even-as", len),
            &len,
            |b, _| b.iter(|| m.run(&word, 1_000_000).unwrap().accepted()),
        );
    }
    let pal = machines::palindrome();
    for (label, word) in [("aa", "aa"), ("abba", "abba")] {
        group.bench_function(BenchmarkId::new("dedalus-palindrome", label), |b| {
            b.iter(|| {
                simulate_word(&pal, word, InputSchedule::AllAtZero, &opts)
                    .unwrap()
                    .ticks
            })
        });
    }
    group.finish();

    // Store ablation on the TM simulation: the compiled Theorem 18
    // program through the delta store + indexed joins vs the seed
    // clone-per-tick + scan-join loop, at the largest existing length
    // and one size up.
    let mut group = c.benchmark_group("dedalus-tm-store");
    group.sample_size(10);
    let program = rtx_dedalus::compile_tm(&m).unwrap();
    let rt = DedalusRuntime::new(&program).unwrap();
    for len in [6usize, 8] {
        let word: String = "ab".repeat(len / 2);
        let input = rtx_machine::encode_word(&word, m.input_alphabet().iter().copied()).unwrap();
        let edb = TemporalFacts::all_at_zero(&input);
        for (label, mode) in [("delta", StoreMode::Delta), ("clone", StoreMode::Cloning)] {
            group.bench_with_input(BenchmarkId::new(label, len), &len, |b, _| {
                b.iter(|| {
                    // Fixpoint pinned to Scratch: this group isolates
                    // the store ablation (see dedalus-*-fixpoint for
                    // the incremental-maintenance comparison).
                    let trace = rt
                        .run_with_fixpoint(&edb, &opts, mode, FixpointMode::Scratch)
                        .unwrap();
                    assert!(trace.converged_at.is_some());
                    trace.ticks.len()
                })
            });
        }
    }
    group.finish();

    // Store ablation on a persistence-heavy transitive-closure
    // workload: edges trickle in over the first ticks, the deductive
    // rules re-close the graph every tick, persistence re-derives the
    // whole carry — the worst case for clone-per-tick.
    let mut group = c.benchmark_group("dedalus-tc-store");
    group.sample_size(10);
    let program = tc_program();
    let rt = DedalusRuntime::new(&program).unwrap();
    for n in [16usize, 32] {
        let mut edb = TemporalFacts::new();
        for i in 0..n as i64 {
            edb.insert(
                (i as u64) % 4,
                Fact::new(
                    "e",
                    rtx_relational::Tuple::new(vec![
                        rtx_relational::Value::int(i),
                        rtx_relational::Value::int(i + 1),
                    ]),
                ),
            );
        }
        let tc_opts = DedalusOptions {
            max_ticks: 64,
            async_max_delay: 1,
            seed: 0,
            async_faults: None,
        };
        for (label, mode) in [("delta", StoreMode::Delta), ("clone", StoreMode::Cloning)] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let trace = rt
                        .run_with_fixpoint(&edb, &tc_opts, mode, FixpointMode::Scratch)
                        .unwrap();
                    assert!(trace.converged_at.is_some());
                    trace.last().fact_count()
                })
            });
        }
    }
    group.finish();
}

/// The cross-tick incremental fixpoint ablation: the same delta store
/// either re-derives the whole IDB per tick (`FixpointMode::Scratch`,
/// the seed path) or maintains it under the tick's base ±
/// (`FixpointMode::Incremental`, counting-based DRed). The TC workload
/// is the incremental sweet spot — after the arrival ticks the base
/// stops changing and maintenance is a no-op, while scratch re-closes
/// the graph all the way to convergence. The TM workload retracts and
/// re-derives a few facts every tick (head moves, state flips), so it
/// measures the DRed path under churn.
fn bench_fixpoint_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedalus-tc-fixpoint");
    group.sample_size(10);
    let program = tc_program();
    let rt = DedalusRuntime::new(&program).unwrap();
    for n in [32usize, 64] {
        // One edge arrives per tick: the run spans ~n ticks, each with
        // a one-fact base delta — scratch re-closes the whole graph
        // every tick, maintenance touches only the new paths.
        let mut edb = TemporalFacts::new();
        for i in 0..n as i64 {
            edb.insert(
                i as u64,
                Fact::new(
                    "e",
                    rtx_relational::Tuple::new(vec![
                        rtx_relational::Value::int(i),
                        rtx_relational::Value::int(i + 1),
                    ]),
                ),
            );
        }
        let opts = DedalusOptions {
            max_ticks: n as u64 + 8,
            async_max_delay: 1,
            seed: 0,
            async_faults: None,
        };
        for (label, mode) in [
            ("incremental", FixpointMode::Incremental),
            ("scratch", FixpointMode::Scratch),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let trace = rt
                        .run_with_fixpoint(&edb, &opts, StoreMode::Delta, mode)
                        .unwrap();
                    assert!(trace.converged_at.is_some());
                    trace.last().fact_count()
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("dedalus-tm-fixpoint");
    group.sample_size(10);
    let m = machines::even_as();
    let program = rtx_dedalus::compile_tm(&m).unwrap();
    let rt = DedalusRuntime::new(&program).unwrap();
    let opts = DedalusOptions {
        max_ticks: 5000,
        async_max_delay: 1,
        seed: 0,
        async_faults: None,
    };
    for len in [6usize, 8] {
        let word: String = "ab".repeat(len / 2);
        let input = rtx_machine::encode_word(&word, m.input_alphabet().iter().copied()).unwrap();
        let edb = TemporalFacts::all_at_zero(&input);
        for (label, mode) in [
            ("incremental", FixpointMode::Incremental),
            ("scratch", FixpointMode::Scratch),
        ] {
            group.bench_with_input(BenchmarkId::new(label, len), &len, |b, _| {
                b.iter(|| {
                    let trace = rt
                        .run_with_fixpoint(&edb, &opts, StoreMode::Delta, mode)
                        .unwrap();
                    assert!(trace.converged_at.is_some());
                    trace.ticks.len()
                })
            });
        }
    }
    group.finish();
}

/// Persisted edges, within-tick transitive closure.
fn tc_program() -> DedalusProgram {
    DedalusProgram::new(vec![
        rtx_dedalus::DRule::persist("e", 2),
        rtx_dedalus::DRule::new(atom!("t"; @"X", @"Y"), rtx_dedalus::DTime::Same)
            .when(atom!("e"; @"X", @"Y")),
        rtx_dedalus::DRule::new(atom!("t"; @"X", @"Z"), rtx_dedalus::DTime::Same)
            .when(atom!("t"; @"X", @"Y"))
            .when(atom!("e"; @"Y", @"Z")),
    ])
    .unwrap()
}

criterion_group!(benches, bench_dedalus, bench_fixpoint_modes);
criterion_main!(benches);

//! Substrate benchmarks: query-language evaluation, including the
//! naive-vs-semi-naive Datalog ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_bench::chain_input;
use rtx_query::atom;
use rtx_query::{DatalogQuery, EvalStrategy, FoQuery, Formula, Query};

fn bench_query(c: &mut Criterion) {
    let program =
        rtx_query::parser::parse_program("T(X,Y) :- E(X,Y). T(X,Z) :- T(X,Y), E(Y,Z).").unwrap();

    let mut group = c.benchmark_group("datalog-tc");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let input = chain_input("E", n);
        let semi = DatalogQuery::new(program.clone(), "T").unwrap();
        group.bench_with_input(BenchmarkId::new("semi-naive", n), &n, |b, _| {
            b.iter(|| semi.eval(&input).unwrap().len())
        });
        let naive = DatalogQuery::new(program.clone(), "T")
            .unwrap()
            .with_strategy(EvalStrategy::Naive);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive.eval(&input).unwrap().len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fo-eval");
    group.sample_size(10);
    // generator-optimized conjunctive shape vs quantified residual
    let conjunctive = FoQuery::new(
        ["X", "Z"],
        Formula::exists(
            ["Y"],
            Formula::and([
                Formula::atom(atom!("E"; @"X", @"Y")),
                Formula::atom(atom!("E"; @"Y", @"Z")),
            ]),
        ),
    )
    .unwrap();
    let quantified = FoQuery::sentence(Formula::forall(
        ["X", "Y"],
        Formula::or([
            Formula::not(Formula::atom(atom!("E"; @"X", @"Y"))),
            Formula::exists(["Z"], Formula::atom(atom!("E"; @"Y", @"Z"))),
        ]),
    ))
    .unwrap();
    for n in [8usize, 16] {
        let input = chain_input("E", n);
        group.bench_with_input(BenchmarkId::new("two-hop-join", n), &n, |b, _| {
            b.iter(|| conjunctive.eval(&input).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("forall-sentence", n), &n, |b, _| {
            b.iter(|| quantified.eval(&input).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);

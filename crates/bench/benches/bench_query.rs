//! Substrate benchmarks: query-language evaluation — the
//! naive-vs-semi-naive Datalog ablation and the indexed-vs-scan join
//! ablation introduced with the storage engine refactor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_bench::chain_input;
use rtx_query::atom;
use rtx_query::{DatalogQuery, EvalStrategy, FoQuery, Formula, JoinMode, Query};

fn bench_query(c: &mut Criterion) {
    let program =
        rtx_query::parser::parse_program("T(X,Y) :- E(X,Y). T(X,Z) :- T(X,Y), E(Y,Z).").unwrap();

    let mut group = c.benchmark_group("datalog-tc");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let input = chain_input("E", n);
        let semi = DatalogQuery::new(program.clone(), "T").unwrap();
        group.bench_with_input(BenchmarkId::new("semi-naive", n), &n, |b, _| {
            b.iter(|| semi.eval(&input).unwrap().len())
        });
        let naive = DatalogQuery::new(program.clone(), "T")
            .unwrap()
            .with_strategy(EvalStrategy::Naive);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive.eval(&input).unwrap().len())
        });
    }
    group.finish();

    // Indexed vs scan joins on the same semi-naive evaluator, at the
    // sizes where the access path dominates.
    let mut group = c.benchmark_group("datalog-tc-joins");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let input = chain_input("E", n);
        let indexed = DatalogQuery::new(program.clone(), "T")
            .unwrap()
            .with_join_mode(JoinMode::Indexed);
        let scan = DatalogQuery::new(program.clone(), "T")
            .unwrap()
            .with_join_mode(JoinMode::Scan);
        let expect = n * (n + 1) / 2;
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                let out = indexed.eval(&input).unwrap();
                assert_eq!(out.len(), expect);
                out.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                let out = scan.eval(&input).unwrap();
                assert_eq!(out.len(), expect);
                out.len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fo-eval");
    group.sample_size(10);
    // generator-optimized conjunctive shape vs quantified residual
    let conjunctive = FoQuery::new(
        ["X", "Z"],
        Formula::exists(
            ["Y"],
            Formula::and([
                Formula::atom(atom!("E"; @"X", @"Y")),
                Formula::atom(atom!("E"; @"Y", @"Z")),
            ]),
        ),
    )
    .unwrap();
    let quantified = FoQuery::sentence(Formula::forall(
        ["X", "Y"],
        Formula::or([
            Formula::not(Formula::atom(atom!("E"; @"X", @"Y"))),
            Formula::exists(["Z"], Formula::atom(atom!("E"; @"Y", @"Z"))),
        ]),
    ))
    .unwrap();
    for n in [8usize, 16] {
        let input = chain_input("E", n);
        group.bench_with_input(BenchmarkId::new("two-hop-join", n), &n, |b, _| {
            b.iter(|| conjunctive.eval(&input).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("forall-sentence", n), &n, |b, _| {
            b.iter(|| quantified.eval(&input).unwrap().len())
        });
    }
    group.finish();

    // The two-hop join at scale: the second E atom probes on its bound
    // first column under the indexed mode vs scanning all n edges per
    // binding under the seed scan mode.
    let mut group = c.benchmark_group("two-hop-join");
    group.sample_size(10);
    for n in [64usize, 256] {
        let input = chain_input("E", n);
        let indexed = conjunctive.clone().with_join_mode(JoinMode::Indexed);
        let scan = conjunctive.clone().with_join_mode(JoinMode::Scan);
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                let out = indexed.eval(&input).unwrap();
                assert_eq!(out.len(), n - 1);
                out.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                let out = scan.eval(&input).unwrap();
                assert_eq!(out.len(), n - 1);
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);

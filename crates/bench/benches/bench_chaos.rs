//! Overhead of the fault-injection layer.
//!
//! `chaos-overhead/*` runs the round-synchronous executor three ways on
//! the same fixed transition budget:
//!
//! * `off` — the plain [`run_sharded`] entry point (no hook at all);
//! * `noop-hook` — [`run_round_faulted`] under the **empty**
//!   [`FaultPlan`]: the hook is consulted for every sent copy and every
//!   node status, but every answer is "no fault" (delay 0, node up) —
//!   this is the pure price of the seam;
//! * `active` — a duplicating, delaying plan: not schedule-identical
//!   (it does more deliveries), but it prices a realistic chaos
//!   workload — every copy pays the seeded splitmix draws plus the
//!   maturity queue.
//!
//! `off` and `noop-hook` produce bit-identical transition sequences, so
//! that ratio is the pure price of the fault seam at delay 0. The
//! budget is fixed (not to-quiescence) for the same reason as
//! `bench_net`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_bench::set_input;
use rtx_calm::constructions::flood::{flood_transducer, FloodMode};
use rtx_chaos::{run_round_faulted, FaultPlan, FaultSession, LinkFaults};
use rtx_net::{run_sharded, HorizontalPartition, Network, RunBudget, ShardOptions};

/// Rounds of work per iteration (budget = `2 * ROUNDS * n`, as in
/// `bench_net`).
const ROUNDS: usize = 8;

fn topologies() -> Vec<(&'static str, Network)> {
    vec![
        ("ring-64", Network::ring(64).unwrap()),
        ("grid-256", Network::grid(16, 16).unwrap()),
    ]
}

fn bench_chaos_overhead(c: &mut Criterion) {
    let schema = rtx_relational::Schema::new().with("S", 1);
    let input = set_input(8);
    let mut group = c.benchmark_group("chaos-overhead");
    group.sample_size(3);
    for (label, net) in topologies() {
        let t = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        let p = HorizontalPartition::round_robin(&net, &input);
        let budget = RunBudget::steps(2 * ROUNDS * net.len());
        group.bench_with_input(BenchmarkId::new("off", label), &net, |b, net| {
            b.iter(|| {
                let out = run_sharded(net, &t, &p, &ShardOptions::serial(), &budget).unwrap();
                assert!(out.outcome.steps > 0);
                out.outcome.messages_enqueued
            })
        });
        let noop = FaultSession::new(FaultPlan::none(), 0xBE7C);
        group.bench_with_input(BenchmarkId::new("noop-hook", label), &net, |b, net| {
            b.iter(|| {
                let out = run_round_faulted(net, &t, &p, &ShardOptions::serial(), &budget, &noop)
                    .unwrap();
                assert!(out.outcome.steps > 0);
                out.outcome.messages_enqueued
            })
        });
        let mut plan = FaultPlan::none();
        plan.default_link = LinkFaults {
            delay: (0, 2),
            dup_millis: 500,
            drop_millis: 0,
        };
        let active = FaultSession::new(plan, 0xBE7C);
        group.bench_with_input(BenchmarkId::new("active", label), &net, |b, net| {
            b.iter(|| {
                let out = run_round_faulted(net, &t, &p, &ShardOptions::serial(), &budget, &active)
                    .unwrap();
                assert!(out.outcome.steps > 0);
                out.outcome.messages_enqueued
            })
        });
    }
    group.finish();
}

criterion_group!(chaos, bench_chaos_overhead);
criterion_main!(chaos);

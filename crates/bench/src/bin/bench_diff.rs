//! Diff a fresh `RTX_BENCH_JSON` run against the committed baseline.
//!
//! ```text
//! bench_diff [FRESH] [BASELINE]
//! ```
//!
//! `FRESH` defaults to `$RTX_BENCH_JSON`, `BASELINE` to
//! `BENCH_baseline.json`. Prints per-group `fresh / baseline` ratios
//! (see `rtx_bench::regression`). Informational only: the exit code is
//! nonzero only for missing or unparsable inputs, never for slow
//! numbers.

use rtx_bench::regression::{parse_bench_json, render_report};

fn main() {
    let mut args = std::env::args().skip(1);
    let fresh_path = args
        .next()
        .or_else(|| rtx_core::env::raw("RTX_BENCH_JSON"))
        .unwrap_or_default();
    let baseline_path = args
        .next()
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    if fresh_path.is_empty() {
        eprintln!("usage: bench_diff [FRESH] [BASELINE]  (or set RTX_BENCH_JSON)");
        std::process::exit(2);
    }
    let read = |path: &str| -> Vec<rtx_bench::regression::BenchEntry> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_bench_json(&text).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&baseline_path);
    let fresh = read(&fresh_path);
    println!("bench_diff: {fresh_path} vs {baseline_path}");
    print!("{}", render_report(&baseline, &fresh));
}

//! Timeline capture demo: the grid-256 flood dissemination on the
//! sharded executor, traced at `RTX_TRACE=full` (forced), exported as
//! Chrome trace-event JSON plus a compact text flamechart, with the
//! registry delta reconciled against the run outcome.
//!
//! ```text
//! cargo run --release -p rtx-bench --bin exp_trace -- --trace-out /tmp/flood.json
//! ```
//!
//! Open the emitted file in `chrome://tracing` or Perfetto. Without
//! `--trace-out` (or `RTX_TRACE_OUT`) the JSON goes to
//! `target/exp_trace.chrome.json`.

use rtx_bench::experiments::{reconcile_trace, trace_grid_flood};
use rtx_bench::Table;
use rtx_obs::RunTrace;

fn main() {
    rtx_bench::exp::run("exp_trace", exp);
}

/// Did the caller pick an export path? (`--trace-out` is written by
/// the exp harness; only the default path is written here.)
fn explicit_trace_out() -> bool {
    rtx_core::env::raw("RTX_TRACE_OUT").is_some_and(|s| !s.is_empty())
        || std::env::args().any(|a| a == "--trace-out" || a.starts_with("--trace-out="))
}

fn exp() {
    println!("\n[exp_trace] grid-256 flood on the sharded executor, forced RTX_TRACE=full");
    let (out, trace) = trace_grid_flood();
    println!(
        "run: rounds={} steps={} deliveries={} quiescent={}  trace: {} events, {} dropped",
        out.rounds,
        out.outcome.steps,
        out.outcome.deliveries,
        out.outcome.quiescent,
        trace.events.len(),
        trace.dropped
    );

    // Chrome trace-event JSON: validated round-trip, then exported.
    let doc = trace.to_chrome_json();
    let n = RunTrace::validate_chrome_json(&doc)
        .unwrap_or_else(|e| panic!("emitted Chrome trace fails validation: {e}"));
    if explicit_trace_out() {
        // Hand the events back to the harness frame so its
        // `--trace-out` export carries this timeline.
        rtx_obs::trace::splice(trace.events.clone());
    } else {
        let path = "target/exp_trace.chrome.json";
        std::fs::write(path, &doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("chrome trace: {n} records → {path}  (open in chrome://tracing or Perfetto)");
    }

    println!("\nflamechart (spans aggregated by path):");
    print!("{}", trace.flamechart());

    println!("registry ⇄ run-outcome reconciliation:");
    let mut tab = Table::new(&[("counter", 24), ("value", 12), ("reconciles", 10)]);
    for (name, v) in reconcile_trace(&out, &trace) {
        tab.row(&[name.to_string(), v.to_string(), "yes".into()]);
    }
    tab.done();
    println!("every registry counter equals the corresponding ShardRunOutcome field.");
}

//! THM-16 / COR-17: transducers without `Id` compute monotone queries —
//! the R4-ring + chord run-transfer scenario, executably.

use rtx_bench::{set_input, Table};
use rtx_calm::analysis::thm16_scenario;
use rtx_calm::examples;
use rtx_relational::{fact, Instance, Schema};
use rtx_transducer::Classification;

fn main() {
    rtx_bench::exp::run("exp_thm16", exp);
}

fn exp() {
    println!("\n[THM-16] the ring-R4 / chorded-ring transfer: out(I) ⊆ out(J) for I ⊆ J");
    let mut tab = Table::new(&[
        ("transducer", 18),
        ("uses Id", 8),
        ("|out| on R4 (I)", 16),
        ("|out| on R4+chord (J)", 22),
        ("Q(I) ⊆ Q(J)", 12),
    ]);

    // Example 15 (no Id): the theorem applies, transfer holds.
    {
        let t = examples::ex15_ping().unwrap();
        let o = thm16_scenario(&t, &set_input(2), &set_input(3), 500_000).unwrap();
        tab.row(&[
            "ex15-ping".into(),
            Classification::of(&t).system_usage.uses_id.to_string(),
            o.output_on_ring.len().to_string(),
            o.output_on_chord.len().to_string(),
            o.preserved.to_string(),
        ]);
    }
    // TC (oblivious, hence no Id): transfer holds.
    {
        let t = examples::ex3_transitive_closure(true).unwrap();
        let sch = Schema::new().with("S", 2);
        let smaller = Instance::from_facts(sch.clone(), vec![fact!("S", 1, 2)]).unwrap();
        let larger = Instance::from_facts(sch, vec![fact!("S", 1, 2), fact!("S", 2, 3)]).unwrap();
        let o = thm16_scenario(&t, &smaller, &larger, 500_000).unwrap();
        tab.row(&[
            "ex3-tc".into(),
            Classification::of(&t).system_usage.uses_id.to_string(),
            o.output_on_ring.len().to_string(),
            o.output_on_chord.len().to_string(),
            o.preserved.to_string(),
        ]);
    }
    // Emptiness (uses Id): the theorem does NOT apply — and the transfer
    // indeed fails (Q(∅)=true, Q({3})=false).
    {
        let t = examples::ex10_emptiness().unwrap();
        let o = thm16_scenario(&t, &set_input(0), &set_input(1), 500_000).unwrap();
        tab.row(&[
            "ex10-emptiness".into(),
            Classification::of(&t).system_usage.uses_id.to_string(),
            o.output_on_ring.len().to_string(),
            o.output_on_chord.len().to_string(),
            o.preserved.to_string(),
        ]);
    }
    tab.done();
    println!("paper: every query computed without Id is monotone (Theorem 16); with Id the");
    println!("emptiness query breaks the transfer — exactly why it needs the system relations.");
}

//! LEM-5.1 / LEM-5.2: dissemination protocols — message cost and rounds
//! of the ack-based multicast vs oblivious flooding, across topologies
//! and network sizes.

use rtx_bench::{run_fifo, set_input, Table};
use rtx_calm::constructions::flood::{flood_transducer, FloodMode};
use rtx_calm::constructions::multicast::multicast_transducer;
use rtx_calm::constructions::ready_rel;
use rtx_net::Network;
use rtx_relational::Schema;

fn main() {
    rtx_bench::exp::run("exp_multicast", exp);
}

fn exp() {
    let schema = Schema::new().with("S", 1);
    let input = set_input(5);

    println!("\n[LEM-5.1/5.2] dissemination: flooding vs ack-multicast (5 facts)");
    let mut tab = Table::new(&[
        ("topology", 10),
        ("nodes", 6),
        ("flood msgs", 11),
        ("flood steps", 12),
        ("mcast msgs", 11),
        ("mcast steps", 12),
        ("overhead ×", 10),
        ("all Ready", 10),
    ]);
    let topologies: Vec<(String, Network)> = vec![
        ("line".into(), Network::line(2).unwrap()),
        ("line".into(), Network::line(4).unwrap()),
        ("line".into(), Network::line(6).unwrap()),
        ("ring".into(), Network::ring(4).unwrap()),
        ("ring".into(), Network::ring(6).unwrap()),
        ("star".into(), Network::star(6).unwrap()),
        ("clique".into(), Network::clique(4).unwrap()),
    ];
    for (label, net) in topologies {
        let flood = flood_transducer(&schema, FloodMode::Dedup, None).unwrap();
        let f = run_fifo(&net, &flood, &input);
        assert!(f.quiescent);

        let mcast = multicast_transducer(&schema, None).unwrap();
        let m = run_fifo(&net, &mcast, &input);
        assert!(m.quiescent);
        let all_ready = m
            .final_config
            .state(net.nodes().next().unwrap())
            .map(|st| {
                st.relation(&ready_rel())
                    .map(|r| r.as_bool())
                    .unwrap_or(false)
            })
            .unwrap_or(false)
            && net.nodes().all(|n| {
                m.final_config
                    .state(n)
                    .and_then(|st| st.relation(&ready_rel()).ok())
                    .map(|r| r.as_bool())
                    .unwrap_or(false)
            });

        tab.row(&[
            label,
            net.len().to_string(),
            f.messages_enqueued.to_string(),
            f.steps.to_string(),
            m.messages_enqueued.to_string(),
            m.steps.to_string(),
            format!(
                "{:.1}",
                m.messages_enqueued as f64 / f.messages_enqueued.max(1) as f64
            ),
            all_ready.to_string(),
        ]);
    }
    tab.done();
    println!("paper: the multicast protocol \"requires heavy coordination\" — the overhead");
    println!("column quantifies it; Ready is true everywhere only after full dissemination.");
}

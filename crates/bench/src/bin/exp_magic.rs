//! Goal-directed evaluation, quantified: for bound point lookups on
//! recursive programs, the magic-sets rewrite (`QueryMode::Magic`)
//! derives only the demand-reachable facts, while full
//! materialization (`QueryMode::Materialize`) pays for the whole
//! model. The per-stratum `FixpointStats` counters make the saving
//! exact: same answers, derived-fact counts proportional to the
//! reachable set instead of the full closure.

use rtx_bench::Table;
use rtx_query::parser::parse_program;
use rtx_query::{atom, Atom, Program, QueryMode};
use rtx_relational::{fact, Instance, Schema};

fn chain_db(n: i64) -> Instance {
    let mut db = Instance::empty(Schema::new().with("e", 2));
    for i in 0..n {
        db.insert_fact(fact!("e", i, i + 1)).unwrap();
    }
    db
}

fn tree_db(levels: u32) -> Instance {
    let mut db = Instance::empty(Schema::new().with("par", 2));
    for child in 2..(1i64 << levels) {
        db.insert_fact(fact!("par", child, child / 2)).unwrap();
    }
    db
}

fn compare(tab: &mut Table, name: &str, program: &Program, pattern: &Atom, db: &Instance) {
    let magic = program.for_query_mode(pattern, QueryMode::Magic).unwrap();
    let full = program
        .for_query_mode(pattern, QueryMode::Materialize)
        .unwrap();
    assert!(magic.is_magic(), "{name}: rewrite must apply");
    let (ma, ms) = magic.answer_with_stats(db).unwrap();
    let (fa, fs) = full.answer_with_stats(db).unwrap();
    assert_eq!(ma, fa, "{name}: magic must not change the answer");
    assert!(
        ms.eval_derived() < fs.eval_derived(),
        "{name}: magic must derive strictly fewer facts"
    );
    tab.row(&[
        name.to_string(),
        format!("{}", ma.len()),
        format!("{}", fs.eval_derived()),
        format!("{}", ms.eval_derived()),
        format!(
            "{:.1}x",
            fs.eval_derived() as f64 / ms.eval_derived() as f64
        ),
    ]);
}

fn main() {
    rtx_bench::exp::run("exp_magic", exp);
}

fn exp() {
    println!("\n[magic] bound point lookups: derived facts, materialize vs magic");
    let mut tab = Table::new(&[
        ("query", 26),
        ("answers", 8),
        ("derived (full)", 15),
        ("derived (magic)", 16),
        ("saving", 8),
    ]);

    let tc = parse_program("p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), e(Y,Z).").unwrap();
    for n in [256i64, 1024, 4096] {
        compare(
            &mut tab,
            &format!("tc chain n={n}, p(0,Y)"),
            &tc,
            &atom!("p"; 0, @"Y"),
            &chain_db(n),
        );
    }

    let sg = parse_program(
        "sg(X,X) :- par(X,P).
         sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).",
    )
    .unwrap();
    for levels in [7u32, 9] {
        let leaf = 1i64 << (levels - 1);
        compare(
            &mut tab,
            &format!("same-gen tree n={}, sg(leaf,Y)", 1i64 << levels),
            &sg,
            &atom!("sg"; leaf, @"Y"),
            &tree_db(levels),
        );
    }
    tab.done();

    println!("\n[magic] per-stratum counters for tc n=1024, p(0,Y)");
    {
        let db = chain_db(1024);
        let magic = tc
            .for_query_mode(&atom!("p"; 0, @"Y"), QueryMode::Magic)
            .unwrap();
        let (_, stats) = magic.answer_with_stats(&db).unwrap();
        let mut tab = Table::new(&[("stratum", 8), ("considered", 12), ("derived", 12)]);
        for (i, (c, d)) in stats
            .stratum_considered
            .iter()
            .zip(&stats.stratum_derived)
            .enumerate()
        {
            tab.row(&[format!("{i}"), format!("{c}"), format!("{d}")]);
        }
        tab.done();
    }

    println!("\n[magic] binding changes through the maintained fixpoint (tc n=1024)");
    {
        let db = chain_db(1024);
        let q0 = tc
            .for_query_mode(&atom!("p"; 0, @"Y"), QueryMode::Magic)
            .unwrap();
        let mut fix = q0.maintained(&db).unwrap();
        let mut tab = Table::new(&[("binding", 10), ("answers", 8), ("matches scratch", 16)]);
        let mut q = q0;
        for c in [0i64, 512, 1000] {
            let (q2, delta) = q.rebind(&atom!("p"; c, @"Y")).unwrap();
            fix.apply(&delta).unwrap();
            q = q2;
            let ans = q.answer_from(fix.current()).unwrap();
            let scratch = q.answer(&db).unwrap();
            tab.row(&[
                format!("p({c},Y)"),
                format!("{}", ans.len()),
                format!("{}", ans == scratch),
            ]);
        }
        tab.done();
    }
}

//! THM-18: the Turing-machine-in-Dedalus table — acceptance agreement,
//! spurious-input acceptance, eventual consistency, and tick counts.

use rtx_bench::Table;
use rtx_dedalus::{compile_tm, simulate_instance, simulate_word, DedalusOptions, InputSchedule};
use rtx_machine::machines;
use rtx_relational::{Fact, Tuple};

fn main() {
    rtx_bench::exp::run("exp_dedalus_tm", exp);
}

fn exp() {
    let opts = DedalusOptions {
        max_ticks: 3000,
        async_max_delay: 1,
        seed: 0,
        async_faults: None,
    };

    println!("\n[THM-18] Q_M in Dedalus: agreement with the direct interpreter");
    let mut tab = Table::new(&[
        ("machine", 13),
        ("word", 7),
        ("interp", 7),
        ("dedalus", 8),
        ("scattered", 10),
        ("ticks", 6),
        ("converged@", 11),
        ("rules", 6),
    ]);
    for (m, cases) in machines::catalog() {
        let program_size = compile_tm(&m).unwrap().rules().len();
        for (w, expected) in cases {
            if w.len() < 2 {
                continue;
            }
            let direct = m.run(w, 1_000_000).unwrap().accepted();
            assert_eq!(direct, expected);
            let sim = simulate_word(&m, w, InputSchedule::AllAtZero, &opts).unwrap();
            let scat = simulate_word(
                &m,
                w,
                InputSchedule::Scattered { spread: 5, seed: 7 },
                &opts,
            )
            .unwrap();
            assert_eq!(sim.accepted, direct);
            assert_eq!(scat.accepted, direct);
            tab.row(&[
                m.name().into(),
                w.into(),
                direct.to_string(),
                sim.accepted.to_string(),
                scat.accepted.to_string(),
                sim.ticks.to_string(),
                sim.converged_at
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
                program_size.to_string(),
            ]);
        }
    }
    tab.done();

    println!("\n[THM-18] monotonicity guard: spurious inputs accept outright");
    let mut tab = Table::new(&[("perturbation", 28), ("accepted", 9), ("converged", 10)]);
    let m = machines::even_as(); // rejects "ab"
    let base = rtx_machine::encode_word("ab", ['a', 'b']).unwrap();
    let perturbations: Vec<(&str, Instance)> = {
        use rtx_relational::Instance;
        let mut v: Vec<(&str, Instance)> = vec![("none (proper word, rejected)", base.clone())];
        let mut double_begin = base.clone();
        double_begin
            .insert_fact(Fact::new(
                "Begin",
                Tuple::new(vec![rtx_machine::position(2)]),
            ))
            .unwrap();
        v.push(("second Begin fact", double_begin));
        let mut double_label = base.clone();
        double_label
            .insert_fact(Fact::new(
                rtx_machine::letter_rel('b'),
                Tuple::new(vec![rtx_machine::position(1)]),
            ))
            .unwrap();
        v.push(("doubly-labeled position", double_label));
        let mut branch = base.clone();
        branch
            .insert_fact(Fact::new(
                "Tape",
                Tuple::new(vec![rtx_machine::position(2), rtx_machine::position(1)]),
            ))
            .unwrap();
        v.push(("tape branch (cycle)", branch));
        v
    };
    use rtx_relational::Instance;
    for (label, input) in &perturbations {
        let out: rtx_dedalus::Thm18Outcome =
            simulate_instance(&m, input, InputSchedule::AllAtZero, &opts).unwrap();
        let _: &Instance = input;
        tab.row(&[
            (*label).into(),
            out.accepted.to_string(),
            out.converged_at.is_some().to_string(),
        ]);
    }
    tab.done();
    println!("paper: \"if Iˆ contains a word structure, but is not a word structure (due to");
    println!("spurious facts), then Q_M(I) also equals true\" — keeping Q_M monotone.");
}

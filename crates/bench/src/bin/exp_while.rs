//! LEM-5.3: while ⟺ single-node FO-transducer — the compiled
//! iterated-heartbeat simulation vs direct while evaluation.

use rtx_bench::{chain_input, Table};
use rtx_calm::constructions::while_compiler::compile_while_to_transducer;
use rtx_net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget};
use rtx_query::atom;
use rtx_query::{
    CqBuilder, Guard, Query, QueryRef, Stmt, Term, UcqQuery, WhileProgram, WhileQuery,
};
use rtx_relational::Schema;
use std::sync::Arc;

fn q(rule: rtx_query::CqRule) -> QueryRef {
    Arc::new(UcqQuery::single(rule))
}

fn tc_while() -> WhileProgram {
    let scratch = Schema::new().with("T", 2).with("Delta", 2).with("New", 2);
    let copy_e = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
        .when(atom!("E"; @"X", @"Y"))
        .build()
        .unwrap();
    let compose = CqBuilder::head(vec![Term::var("X"), Term::var("Z")])
        .when(atom!("T"; @"X", @"Y"))
        .when(atom!("E"; @"Y", @"Z"))
        .unless(atom!("T"; @"X", @"Z"))
        .build()
        .unwrap();
    let copy_new = CqBuilder::head(vec![Term::var("X"), Term::var("Y")])
        .when(atom!("New"; @"X", @"Y"))
        .build()
        .unwrap();
    let body = Stmt::Seq(vec![
        Stmt::Assign("T".into(), q(copy_e.clone())),
        Stmt::Assign("Delta".into(), q(copy_e)),
        Stmt::While(
            Guard::NonEmpty("Delta".into()),
            Box::new(Stmt::Seq(vec![
                Stmt::Assign("New".into(), q(compose)),
                Stmt::Accumulate("T".into(), q(copy_new.clone())),
                Stmt::Assign("Delta".into(), q(copy_new)),
            ])),
        ),
    ]);
    WhileProgram::new(scratch, body, "T").unwrap()
}

fn main() {
    rtx_bench::exp::run("exp_while", exp);
}

fn exp() {
    println!("\n[LEM-5.3] while-program ⟺ FO-transducer on a single-node network");
    let program = tc_while();
    let mut tab = Table::new(&[
        ("input", 10),
        ("while |Q(I)|", 13),
        ("compiled |out|", 14),
        ("heartbeats", 11),
        ("agree", 6),
    ]);
    for n in [2usize, 4, 6, 8] {
        let input = chain_input("E", n);
        let direct = WhileQuery::new(program.clone()).eval(&input).unwrap();
        let t = compile_while_to_transducer(&program, input.schema()).unwrap();
        let net = Network::single();
        let p = HorizontalPartition::replicate(&net, &input);
        let out = run(
            &net,
            &t,
            &p,
            &mut FifoRoundRobin::new(),
            &RunBudget::steps(1_000_000),
        )
        .unwrap();
        assert!(out.quiescent);
        tab.row(&[
            format!("chain-{n}"),
            direct.len().to_string(),
            out.output.len().to_string(),
            out.heartbeats.to_string(),
            (out.output == direct).to_string(),
        ]);
    }
    tab.done();
    println!("one instruction per heartbeat: the transducer simulates the while-program");
    println!("(and only heartbeat transitions exist on one node — paper, Section 3).");
}

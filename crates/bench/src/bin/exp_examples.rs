//! EX-2 / EX-3a / EX-3b / EX-4: the paper's worked examples, verified.
//!
//! Thin wrapper over [`rtx_bench::experiments::run_examples`] so the
//! same code is exercised by the tier-1 smoke test and by CI.

fn main() {
    rtx_bench::exp::run("exp_examples", rtx_bench::experiments::run_examples);
}

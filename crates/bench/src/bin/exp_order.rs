//! COR-8: a linear order on ≥ 2 nodes, and the parity (even-cardinality)
//! query computed through it.

use rtx_bench::{run_fifo, set_input, Table};
use rtx_calm::constructions::linear_order::{
    even_cardinality_transducer, is_total_order_over, linear_order_transducer,
};
use rtx_net::Network;

fn main() {
    rtx_bench::exp::run("exp_order", exp);
}

fn exp() {
    println!("\n[COR-8] every node builds a total order over adom(I) (≥ 2 nodes)");
    {
        let input = set_input(4);
        let t = linear_order_transducer(input.schema()).unwrap();
        let mut tab = Table::new(&[("topology", 10), ("nodes with a total order", 26)]);
        for net in [Network::line(2).unwrap(), Network::ring(4).unwrap()] {
            let out = run_fifo(&net, &t, &input);
            assert!(out.quiescent);
            let expected = input.adom();
            let good = net
                .nodes()
                .filter(|n| is_total_order_over(out.final_config.state(n).unwrap(), &expected))
                .count();
            tab.row(&[
                format!("{}-node", net.len()),
                format!("{good}/{}", net.len()),
            ]);
        }
        tab.done();
    }

    println!("\n[COR-8] parity of |S| — a non-FO, nonmonotone query via the order");
    {
        let t = even_cardinality_transducer().unwrap();
        let mut tab = Table::new(&[
            ("|S|", 5),
            ("expected even?", 15),
            ("2-node answer", 14),
            ("1-node answer", 14),
        ]);
        for n in [0usize, 1, 2, 3, 4, 5] {
            let input = set_input(n);
            let two = run_fifo(&Network::line(2).unwrap(), &t, &input);
            let one = run_fifo(&Network::single(), &t, &input);
            assert!(two.quiescent && one.quiescent);
            let one_str = if one.output.is_empty() && n > 0 {
                "no output".to_string()
            } else {
                one.output.as_bool().to_string()
            };
            tab.row(&[
                n.to_string(),
                (n % 2 == 0).to_string(),
                two.output.as_bool().to_string(),
                one_str,
            ]);
        }
        tab.done();
        println!("paper: \"On any network with at least two nodes, every PSPACE query can be");
        println!("computed by an FO-transducer\" — and the same transducer is mute on one node");
        println!("(\"not truly network-topology independent\").");
    }
}

//! `rtx-chaos` explorer over the paper's worked examples: the CALM
//! classifier's verdicts cross-validated against adversarial schedule
//! search.
//!
//! For each example transducer the explorer executes seeded adversarial
//! runs (targeted heuristics + random fault plans under a **fair**
//! adversary — delay, duplication, reordering, healing partitions,
//! pause-crashes) and compares every quiescent output against the
//! fault-free reference. A syntactically monotone transducer is
//! coordination-free (THM-12), so it must report `consistent`; a
//! divergence is minimized with the proptest shrinker and printed as a
//! replayable `(plan, seed)` pair.
//!
//! ```text
//! RTX_CHAOS_RUNS=200 RTX_CHAOS_SEED=0xC4A05EED \
//!   cargo run --release -p rtx-bench --bin exp_chaos
//! ```
//!
//! Replay any reported divergence from its printed plan and seed with
//! `rtx_chaos::FaultSession::new(plan, seed)` +
//! `rtx_chaos::run_round_faulted`.

use rtx_bench::Table;
use rtx_calm::examples;
use rtx_chaos::{cross_validate, ExplorerOptions};
use rtx_net::{HorizontalPartition, Network, RunBudget};
use rtx_relational::{fact, Instance, Schema};
use rtx_transducer::Transducer;

fn input_s1(vals: &[i64]) -> Instance {
    Instance::from_facts(
        Schema::new().with("S", 1),
        vals.iter().map(|&v| fact!("S", v)).collect::<Vec<_>>(),
    )
    .unwrap()
}

fn input_s2(pairs: &[(i64, i64)]) -> Instance {
    Instance::from_facts(
        Schema::new().with("S", 2),
        pairs
            .iter()
            .map(|&(a, b)| fact!("S", a, b))
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

fn main() {
    rtx_bench::exp::run("exp_chaos", exp);
}

fn exp() {
    let opts = ExplorerOptions::auto().with_budget(RunBudget::steps(8_000));
    println!(
        "\n[rtx-chaos] adversarial schedule exploration, fair adversary, {} runs per program, seed {:#x}",
        opts.runs, opts.seed
    );
    println!("(override with RTX_CHAOS_RUNS / RTX_CHAOS_SEED)");

    let cases: Vec<(&str, Transducer, Network, Instance)> = vec![
        (
            "ex2-first-element",
            examples::ex2_first_element().unwrap(),
            Network::line(3).unwrap(),
            input_s1(&[10, 20, 30]),
        ),
        (
            "ex3-eq-selection",
            examples::ex3_equality_selection().unwrap(),
            Network::line(3).unwrap(),
            input_s2(&[(1, 1), (1, 2), (5, 5)]),
        ),
        (
            "ex3-tc-naive",
            examples::ex3_transitive_closure(false).unwrap(),
            Network::ring(4).unwrap(),
            input_s2(&[(1, 2), (2, 3), (3, 4)]),
        ),
        (
            "ex3-tc-dedup",
            examples::ex3_transitive_closure(true).unwrap(),
            Network::ring(4).unwrap(),
            input_s2(&[(1, 2), (2, 3), (3, 4)]),
        ),
        (
            "ex4-echo",
            examples::ex4_echo().unwrap(),
            Network::line(3).unwrap(),
            input_s1(&[7, 8]),
        ),
    ];

    let mut tab = Table::new(&[
        ("transducer", 18),
        ("classification", 28),
        ("runs", 5),
        ("verdict", 22),
        ("minimized divergence", 34),
    ]);
    let mut divergences: Vec<(String, String)> = Vec::new();
    for (label, t, net, input) in cases {
        let p = HorizontalPartition::round_robin(&net, &input);
        let check = cross_validate(&net, &t, &p, &opts).expect(label);
        let verdict = match &check.report.divergence {
            None => format!("consistent over {}", check.report.runs_executed),
            Some(d) => format!("DIVERGES at run {}", d.found_at_run),
        };
        let min = match &check.report.divergence {
            None => "—".to_string(),
            Some(d) => {
                let loc = match &d.localization {
                    None => "no witness in the logged replay".to_string(),
                    Some(l) => format!(
                        "node {} {} {:?} (first divergent round {})",
                        l.node,
                        if l.extra {
                            "emits extra"
                        } else {
                            "never outputs"
                        },
                        l.fact,
                        l.round
                    ),
                };
                let mut detail = format!(
                    "plan: {}   seed: {:#x}\n  expected {:?}\n  observed {:?}\n  localized: {loc}",
                    d.plan, d.seed, d.expected, d.observed
                );
                // The embedded forced-full trace of the minimized
                // replay: the localized node's round-by-round events.
                if let Some(l) = &d.localization {
                    if let Some(idx) = net.nodes().position(|n| n == &l.node) {
                        let lines = d.trace.node_timeline(idx as i64);
                        detail.push_str(&format!(
                            "\n  node {} timeline in the minimized replay:",
                            l.node
                        ));
                        for line in lines.iter().take(60) {
                            detail.push_str(&format!("\n    {line}"));
                        }
                        if lines.len() > 60 {
                            detail.push_str(&format!("\n    … {} more lines", lines.len() - 60));
                        }
                    }
                }
                divergences.push((label.to_string(), detail));
                format!("{} (seed {:#x})", d.plan, d.seed)
            }
        };
        assert!(
            check.agrees(),
            "{label}: a monotone program diverged under a fair adversary — \
             the classifier or the fault layer is wrong"
        );
        tab.row(&[
            label.to_string(),
            check.classification.to_string(),
            check.report.runs_executed.to_string(),
            verdict,
            min,
        ]);
    }
    tab.done();
    for (label, detail) in divergences {
        println!("\n{label} minimized diverging schedule:\n  {detail}");
    }
    println!(
        "\nEvery verdict above is replayable: the explorer derives all plans and decision\n\
         seeds from the base seed, and any diverging run replays exactly from its (plan, seed)."
    );
}

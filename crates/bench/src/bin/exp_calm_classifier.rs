//! COR-13/14 + THM-12 + PROP-11: the CALM table over the standard suite.

use rtx_bench::Table;
use rtx_calm::analysis::{classify, standard_suite, ClassifierOptions};

fn main() {
    rtx_bench::exp::run("exp_calm_classifier", exp);
}

fn exp() {
    let opts = ClassifierOptions::default();
    println!("\n[COR-13] the CALM property, empirically");
    let mut tab = Table::new(&[
        ("case", 18),
        ("oblivious", 10),
        ("consistent", 11),
        ("nti", 6),
        ("computes Q", 11),
        ("coord-free", 11),
        ("monotone(Q)", 12),
        ("generic(Q)", 11),
    ]);
    let mut calm_holds = true;
    for case in standard_suite() {
        let v = classify(&case, &opts).expect("classification failed");
        // Theorem 12: coordination-free ⇒ monotone
        if v.coordination_free && !v.reference_monotone {
            calm_holds = false;
        }
        // Proposition 11: oblivious ⇒ coordination-free
        if v.classification.oblivious && !v.coordination_free {
            calm_holds = false;
        }
        tab.row(&[
            v.name.clone(),
            v.classification.oblivious.to_string(),
            v.consistent.to_string(),
            v.network_independent.to_string(),
            v.computes_reference.to_string(),
            v.coordination_free.to_string(),
            v.reference_monotone.to_string(),
            v.reference_generic.to_string(),
        ]);
    }
    tab.done();
    println!(
        "THM-12 (coord-free ⇒ monotone) and PROP-11 (oblivious ⇒ coord-free) hold: {calm_holds}"
    );
    println!("the ex15 row shows the gap CALM closes: a monotone query computed by a");
    println!("coordinating transducer — Corollary 13 promises (and THM-6.2 builds) an");
    println!("oblivious, coordination-free replacement for it.");
}

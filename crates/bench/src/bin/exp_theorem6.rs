//! THM-6.1/6.2/6.5: the Theorem 6 constructions, verified end to end.

use rtx_bench::{chain_input, run_fifo, Table};
use rtx_calm::constructions::datalog_dist::{distribute_datalog, transitive_closure_program};
use rtx_calm::constructions::distribute::{distribute_any, distribute_monotone};
use rtx_calm::constructions::flood::FloodMode;
use rtx_net::Network;
use rtx_query::atom;
use rtx_query::{DatalogQuery, FoQuery, Formula, Query, QueryRef};
use rtx_relational::{fact, Instance, Schema};
use rtx_transducer::Classification;
use std::sync::Arc;

fn main() {
    rtx_bench::exp::run("exp_theorem6", exp);
}

fn exp() {
    let net = Network::ring(4).unwrap();

    println!("\n[THM-6.1] any query via multicast+Ready (here: the nonmonotone emptiness)");
    {
        let schema = Schema::new().with("S", 1).with("K", 1);
        let q: QueryRef = Arc::new(
            FoQuery::sentence(Formula::not(Formula::exists(
                ["X"],
                Formula::atom(atom!("S"; @"X")),
            )))
            .unwrap(),
        );
        let t = distribute_any(q.clone(), &schema).unwrap();
        let mut tab = Table::new(&[
            ("input", 24),
            ("Q(I) central", 13),
            ("distributed", 12),
            ("agree", 6),
        ]);
        for (label, facts) in [
            ("S = ∅, K = {1,2}", vec![fact!("K", 1), fact!("K", 2)]),
            ("S = {9}, K = {1}", vec![fact!("K", 1), fact!("S", 9)]),
        ] {
            let input = Instance::from_facts(schema.clone(), facts).unwrap();
            let central = q.eval(&input).unwrap().as_bool();
            let out = run_fifo(&net, &t, &input);
            assert!(out.quiescent);
            tab.row(&[
                label.into(),
                central.to_string(),
                out.output.as_bool().to_string(),
                (central == out.output.as_bool()).to_string(),
            ]);
        }
        tab.done();
    }

    println!("\n[THM-6.2] monotone queries via oblivious flooding (TC on chains)");
    {
        let program = transitive_closure_program();
        let q: QueryRef = Arc::new(DatalogQuery::new(program, "T").unwrap());
        let mut tab = Table::new(&[
            ("chain length", 13),
            ("|Q(I)|", 8),
            ("|output|", 9),
            ("classification", 36),
            ("ok", 4),
        ]);
        for n in [2usize, 4, 6] {
            let input = chain_input("E", n);
            let expected = q.eval(&input).unwrap();
            let t = distribute_monotone(q.clone(), input.schema(), FloodMode::Dedup).unwrap();
            let out = run_fifo(&net, &t, &input);
            assert!(out.quiescent);
            tab.row(&[
                n.to_string(),
                expected.len().to_string(),
                out.output.len().to_string(),
                Classification::of(&t).to_string(),
                (out.output == expected).to_string(),
            ]);
        }
        tab.done();
        println!(
            "note: with FloodMode::Naive the same construction is additionally monotone(syn)."
        );
    }

    println!("\n[THM-6.5] Datalog via the T_P-operator transducer");
    {
        let program = transitive_closure_program();
        let q = DatalogQuery::new(program.clone(), "T").unwrap();
        let t = distribute_datalog(&program, &"T".into(), FloodMode::Dedup).unwrap();
        let c = Classification::of(&t);
        let mut tab = Table::new(&[
            ("input", 14),
            ("|Q(I)|", 8),
            ("|output|", 9),
            ("oblivious", 10),
            ("inflationary", 13),
            ("ok", 4),
        ]);
        for n in [3usize, 5] {
            let input = chain_input("E", n);
            let expected = q.eval(&input).unwrap();
            let out = run_fifo(&net, &t, &input);
            assert!(out.quiescent);
            tab.row(&[
                format!("chain-{n}"),
                expected.len().to_string(),
                out.output.len().to_string(),
                c.oblivious.to_string(),
                c.inflationary.to_string(),
                (out.output == expected).to_string(),
            ]);
        }
        tab.done();
        println!(
            "paper: \"by the monotone nature of Datalog evaluation, deletions are not needed\"."
        );
    }
}

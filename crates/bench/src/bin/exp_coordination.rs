//! EX-9 / EX-10 / EX-15 + PROP-11: coordination-freeness search over the
//! example transducers — who has a communication-free partition?

use rtx_bench::Table;
use rtx_calm::analysis::{find_coordination_free_partition, CoordinationOptions};
use rtx_calm::examples;
use rtx_net::Network;
use rtx_query::{Query, QueryRef};
use rtx_relational::{fact, Instance, Relation, Schema};
use rtx_transducer::Classification;
use std::sync::Arc;

fn main() {
    rtx_bench::exp::run("exp_coordination", exp);
}

fn exp() {
    let opts = CoordinationOptions::default();
    let net = Network::line(2).unwrap();

    println!(
        "\n[EX-9/10/15, PROP-11] coordination-freeness search (2-node line, exhaustive partitions)"
    );
    let mut tab = Table::new(&[
        ("transducer", 18),
        ("oblivious", 10),
        ("query", 22),
        ("witness partition", 22),
        ("coordination-free", 18),
    ]);

    // TC (Example 9: coordination-free)
    {
        let t = examples::ex3_transitive_closure(true).unwrap();
        let input = Instance::from_facts(
            Schema::new().with("S", 2),
            vec![fact!("S", 1, 2), fact!("S", 2, 3)],
        )
        .unwrap();
        let q: QueryRef = Arc::new(
            rtx_query::DatalogQuery::new(
                rtx_query::parser::parse_program("T(X,Y) :- S(X,Y). T(X,Z) :- T(X,Y), S(Y,Z).")
                    .unwrap(),
                "T",
            )
            .unwrap(),
        );
        let expected = q.eval(&input).unwrap();
        let v = find_coordination_free_partition(&net, &t, &input, &expected, &opts).unwrap();
        tab.row(&[
            "ex3-tc".into(),
            Classification::of(&t).oblivious.to_string(),
            "transitive closure".into(),
            v.witness.clone().unwrap_or_else(|| "—".into()),
            v.coordination_free().to_string(),
        ]);
    }

    // A/B nonempty (Section 5's contrived example)
    {
        let t = examples::ex9_ab_nonempty().unwrap();
        let input = Instance::from_facts(
            Schema::new().with("A", 1).with("B", 1),
            vec![fact!("A", 1), fact!("B", 2)],
        )
        .unwrap();
        let v =
            find_coordination_free_partition(&net, &t, &input, &Relation::nullary_true(), &opts)
                .unwrap();
        tab.row(&[
            "ex9-ab-nonempty".into(),
            Classification::of(&t).oblivious.to_string(),
            "A≠∅ ∨ B≠∅".into(),
            v.witness.clone().unwrap_or_else(|| "—".into()),
            v.coordination_free().to_string(),
        ]);
    }

    // emptiness (Example 10: NOT coordination-free)
    {
        let t = examples::ex10_emptiness().unwrap();
        let input = Instance::empty(Schema::new().with("S", 1));
        let v =
            find_coordination_free_partition(&net, &t, &input, &Relation::nullary_true(), &opts)
                .unwrap();
        tab.row(&[
            "ex10-emptiness".into(),
            Classification::of(&t).oblivious.to_string(),
            "S = ∅ (nonmonotone)".into(),
            v.witness.clone().unwrap_or_else(|| "—".into()),
            v.coordination_free().to_string(),
        ]);
    }

    // ping (Example 15: NOT coordination-free despite monotone query)
    {
        let t = examples::ex15_ping().unwrap();
        let input = Instance::from_facts(Schema::new().with("S", 1), vec![fact!("S", 1)]).unwrap();
        let mut expected = Relation::empty(1);
        expected
            .insert(rtx_relational::Tuple::new(vec![
                rtx_relational::Value::int(1),
            ]))
            .unwrap();
        let v = find_coordination_free_partition(&net, &t, &input, &expected, &opts).unwrap();
        tab.row(&[
            "ex15-ping".into(),
            Classification::of(&t).oblivious.to_string(),
            "identity (monotone)".into(),
            v.witness.clone().unwrap_or_else(|| "—".into()),
            v.coordination_free().to_string(),
        ]);
    }
    tab.done();
    println!("paper: TC and A/B are coordination-free; emptiness and the All-gated ping are not.");
    println!("PROP-11 check: every oblivious row above is coordination-free.");
}

//! Bench regression guard: diff a fresh `RTX_BENCH_JSON` run against
//! the committed `BENCH_baseline.json`.
//!
//! The report is **informational** — the 1-core CI container is far too
//! noisy to fail a build on wall-clock ratios — but it makes drift
//! visible per bench group: each group gets the geometric mean of its
//! per-record `fresh / baseline` ratios (over the outlier-robust median
//! when both sides record one, else the mean), plus the worst single
//! regression inside the group. Run it with:
//!
//! ```text
//! RTX_BENCH_JSON=/tmp/fresh.json cargo bench
//! cargo run -p rtx-bench --bin bench_diff -- /tmp/fresh.json
//! ```

use crate::Table;
use std::collections::BTreeMap;

/// One record of a `RTX_BENCH_JSON` file (a subset of the criterion
/// stand-in's `BenchRecord`; `median_ns`/`mad_ns` are absent in
/// baselines recorded before the stand-in learned medians).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchEntry {
    /// Full benchmark label (`group/function/param`).
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Minimum wall time per iteration, nanoseconds.
    pub min_ns: u128,
    /// Median wall time per iteration, when recorded.
    pub median_ns: Option<u128>,
    /// Median absolute deviation, when recorded.
    pub mad_ns: Option<u128>,
}

impl BenchEntry {
    /// The group prefix of the label (up to the first `/`).
    pub fn group(&self) -> &str {
        self.name.split('/').next().unwrap_or(&self.name)
    }
}

/// Parse the JSON array emitted by the criterion stand-in.
///
/// This is a purpose-built reader for that writer's output (flat array
/// of flat objects, string values without escapes beyond `\"` and
/// `\\`, unsigned integer numbers) — not a general JSON parser.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchEntry>, String> {
    let body = text.trim();
    let inner = body
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| "expected a top-level JSON array".to_string())?;
    let mut out = Vec::new();
    let mut rest = inner;
    while let Some(start) = rest.find('{') {
        let end = rest[start..]
            .find('}')
            .ok_or_else(|| "unterminated object".to_string())?
            + start;
        let obj = &rest[start + 1..end];
        out.push(parse_object(obj)?);
        rest = &rest[end + 1..];
    }
    Ok(out)
}

fn parse_object(obj: &str) -> Result<BenchEntry, String> {
    let mut name = None;
    let mut fields: BTreeMap<String, u128> = BTreeMap::new();
    for part in split_fields(obj) {
        let (key, value) = part
            .split_once(':')
            .ok_or_else(|| format!("malformed field `{part}`"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        if let Some(stripped) = value.strip_prefix('"') {
            let s = stripped
                .strip_suffix('"')
                .ok_or_else(|| format!("unterminated string in `{part}`"))?;
            if key == "name" {
                name = Some(s.replace("\\\"", "\"").replace("\\\\", "\\"));
            }
        } else {
            let n: u128 = value
                .parse()
                .map_err(|_| format!("non-numeric value `{value}` for `{key}`"))?;
            fields.insert(key, n);
        }
    }
    let name = name.ok_or_else(|| "record without a name".to_string())?;
    let get = |k: &str| -> Result<u128, String> {
        fields
            .get(k)
            .copied()
            .ok_or_else(|| format!("record `{name}` missing `{k}`"))
    };
    Ok(BenchEntry {
        mean_ns: get("mean_ns")?,
        min_ns: get("min_ns")?,
        median_ns: fields.get("median_ns").copied(),
        mad_ns: fields.get("mad_ns").copied(),
        name,
    })
}

/// Split `a: 1, b: "x, y"` into fields, respecting quotes.
fn split_fields(obj: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in obj.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                cur.push(c);
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                if !cur.trim().is_empty() {
                    parts.push(cur.trim().to_string());
                }
                cur.clear();
                escaped = false;
                continue;
            }
            _ => {}
        }
        escaped = false;
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

/// Per-group comparison of a fresh run against a baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupDiff {
    /// Bench group (label prefix).
    pub group: String,
    /// Records present in both runs.
    pub matched: usize,
    /// Geometric mean of the per-record `fresh / baseline` ratios.
    pub geomean_ratio: f64,
    /// The worst (largest) single ratio and its record label.
    pub worst: (String, f64),
}

/// The comparable central times of a baseline/fresh record pair: the
/// medians when **both** sides recorded one, else both means — never a
/// mean against a median (their outlier behavior differs, so a mixed
/// ratio would manufacture phantom speedups or mask regressions when
/// comparing against a pre-median baseline).
fn paired_ns(b: &BenchEntry, f: &BenchEntry) -> (u128, u128) {
    match (b.median_ns, f.median_ns) {
        (Some(bm), Some(fm)) => (bm, fm),
        _ => (b.mean_ns, f.mean_ns),
    }
}

/// Compare two record sets and produce per-group ratios. Records
/// appearing on only one side are counted but not compared.
pub fn diff_groups(baseline: &[BenchEntry], fresh: &[BenchEntry]) -> Vec<GroupDiff> {
    let base: BTreeMap<&str, &BenchEntry> = baseline.iter().map(|e| (e.name.as_str(), e)).collect();
    let mut groups: BTreeMap<&str, Vec<(&str, f64)>> = BTreeMap::new();
    for f in fresh {
        let Some(b) = base.get(f.name.as_str()) else {
            continue;
        };
        let (bns, fns) = paired_ns(b, f);
        let ratio = fns.max(1) as f64 / bns.max(1) as f64;
        groups.entry(f.group()).or_default().push((&f.name, ratio));
    }
    groups
        .into_iter()
        .map(|(g, ratios)| {
            let log_sum: f64 = ratios.iter().map(|(_, r)| r.ln()).sum();
            let geomean = (log_sum / ratios.len() as f64).exp();
            let worst = ratios
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("nonempty group");
            GroupDiff {
                group: g.to_string(),
                matched: ratios.len(),
                geomean_ratio: geomean,
                worst: (worst.0.to_string(), worst.1),
            }
        })
        .collect()
}

/// Render the informational report (ratios > 1 are slower than the
/// baseline).
pub fn render_report(baseline: &[BenchEntry], fresh: &[BenchEntry]) -> String {
    let diffs = diff_groups(baseline, fresh);
    let mut t = Table::new(&[
        ("group", 24),
        ("matched", 7),
        ("geomean fresh/base", 18),
        ("worst record", 30),
        ("worst ratio", 11),
    ]);
    for d in &diffs {
        t.row(&[
            d.group.clone(),
            d.matched.to_string(),
            format!("{:.3}×", d.geomean_ratio),
            d.worst.0.clone(),
            format!("{:.3}×", d.worst.1),
        ]);
    }
    let matched: usize = diffs.iter().map(|d| d.matched).sum();
    let mut out = t.render();
    out.push_str(&format!(
        "{} record(s) matched across {} group(s); {} fresh / {} baseline records total.\n\
         Informational only — the committed baseline was recorded on a 1-core container.\n",
        matched,
        diffs.len(),
        fresh.len(),
        baseline.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, median: u128) -> String {
        format!(
            "{{\"name\": \"{name}\", \"iters\": 10, \"mean_ns\": {}, \"min_ns\": {}, \"median_ns\": {median}, \"mad_ns\": 1}}",
            median + 5,
            median - 1
        )
    }

    #[test]
    fn parses_the_standin_format() {
        let text = format!("[\n{},\n{}\n]\n", entry("g/a/1", 100), entry("g/b/2", 200));
        let parsed = parse_bench_json(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "g/a/1");
        assert_eq!(parsed[0].group(), "g");
        assert_eq!(parsed[0].median_ns, Some(100));
        assert_eq!(parsed[1].mad_ns, Some(1));
    }

    #[test]
    fn parses_legacy_records_without_median() {
        let text = "[\n  {\"name\": \"g/a\", \"iters\": 10, \"mean_ns\": 42, \"min_ns\": 40}\n]";
        let parsed = parse_bench_json(text).unwrap();
        assert_eq!(parsed[0].median_ns, None);
        assert_eq!(parsed[0].mean_ns, 42);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_bench_json("not json").is_err());
        assert!(parse_bench_json("[{\"iters\": 1, \"mean_ns\": 2, \"min_ns\": 1}]").is_err());
        assert!(parse_bench_json("[{\"name\": \"x\", \"mean_ns\": oops}]").is_err());
    }

    #[test]
    fn escaped_quotes_in_names_survive() {
        let text =
            "[{\"name\": \"g/say \\\"hi\\\"\", \"iters\": 1, \"mean_ns\": 5, \"min_ns\": 5}]";
        let parsed = parse_bench_json(text).unwrap();
        assert_eq!(parsed[0].name, "g/say \"hi\"");
    }

    #[test]
    fn group_ratios_are_geometric_means() {
        let base = vec![
            BenchEntry {
                name: "g/a".into(),
                mean_ns: 0,
                min_ns: 0,
                median_ns: Some(100),
                mad_ns: None,
            },
            BenchEntry {
                name: "g/b".into(),
                mean_ns: 0,
                min_ns: 0,
                median_ns: Some(100),
                mad_ns: None,
            },
            BenchEntry {
                name: "h/only-in-base".into(),
                mean_ns: 10,
                min_ns: 10,
                median_ns: None,
                mad_ns: None,
            },
        ];
        let fresh = vec![
            BenchEntry {
                name: "g/a".into(),
                mean_ns: 0,
                min_ns: 0,
                median_ns: Some(400),
                mad_ns: None,
            },
            BenchEntry {
                name: "g/b".into(),
                mean_ns: 0,
                min_ns: 0,
                median_ns: Some(25),
                mad_ns: None,
            },
        ];
        let diffs = diff_groups(&base, &fresh);
        assert_eq!(diffs.len(), 1);
        let g = &diffs[0];
        assert_eq!(g.group, "g");
        assert_eq!(g.matched, 2);
        // ratios 4.0 and 0.25 → geomean exactly 1.0
        assert!((g.geomean_ratio - 1.0).abs() < 1e-9);
        assert_eq!(g.worst.0, "g/a");
        assert!((g.worst.1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_median_availability_compares_means_on_both_sides() {
        // Legacy baseline (mean only, outlier-inflated) vs fresh record
        // with a median: the ratio must pair mean with mean, not mean
        // with median (which would report a phantom speedup).
        let base = vec![BenchEntry {
            name: "g/a".into(),
            mean_ns: 150,
            min_ns: 90,
            median_ns: None,
            mad_ns: None,
        }];
        let fresh = vec![BenchEntry {
            name: "g/a".into(),
            mean_ns: 150,
            min_ns: 90,
            median_ns: Some(100),
            mad_ns: Some(2),
        }];
        let diffs = diff_groups(&base, &fresh);
        assert!((diffs[0].geomean_ratio - 1.0).abs() < 1e-9, "{diffs:?}");
    }

    #[test]
    fn report_renders_and_counts() {
        let base = parse_bench_json(&format!("[{}]", entry("g/a/1", 100))).unwrap();
        let fresh = parse_bench_json(&format!("[{}]", entry("g/a/1", 150))).unwrap();
        let report = render_report(&base, &fresh);
        assert!(report.contains("1.500×"));
        assert!(report.contains("Informational only"));
    }
}

//! Uniform harness for the `exp_*` experiment binaries: one wrapper
//! giving every experiment machine-readable output and timeline export.
//!
//! - `RTX_EXP_JSON=1` appends a single JSON line (the last line on
//!   stdout) with the experiment name, wall time, and the
//!   [`rtx_obs`] registry delta of the run — counters and histograms
//!   in one schema across all experiments. The wrapper raises the
//!   trace level to `counters` when it is `off` so the registry is
//!   actually populated.
//! - `--trace-out FILE` (or `RTX_TRACE_OUT=FILE`) forces the trace
//!   level to `full`, captures the whole run, and writes the Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto) to `FILE`.
//!
//! Both knobs compose; with neither set the wrapper is a plain call
//! into the experiment body plus one empty registry snapshot.

use rtx_obs::trace::{self, TraceLevel};

/// The harness configuration resolved from argv and the environment.
struct ExpConfig {
    json: bool,
    trace_out: Option<String>,
}

impl ExpConfig {
    fn resolve() -> ExpConfig {
        let mut trace_out = rtx_core::env::raw("RTX_TRACE_OUT").filter(|s| !s.is_empty());
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            if args[i] == "--trace-out" {
                if let Some(path) = args.get(i + 1) {
                    trace_out = Some(path.clone());
                    i += 1;
                }
            } else if let Some(path) = args[i].strip_prefix("--trace-out=") {
                trace_out = Some(path.to_string());
            }
            i += 1;
        }
        ExpConfig {
            json: matches!(rtx_core::env::raw("RTX_EXP_JSON").as_deref(), Some("1")),
            trace_out,
        }
    }
}

/// Run an experiment body under the uniform harness (see the module
/// docs). Every `exp_*` binary's `main` is one call to this.
pub fn run(name: &str, body: impl FnOnce()) {
    let cfg = ExpConfig::resolve();
    // Raise the level as the knobs demand — never lower it: an
    // explicit RTX_TRACE=full still traces without --trace-out.
    let min_level = if cfg.trace_out.is_some() {
        TraceLevel::Full
    } else if cfg.json {
        TraceLevel::Counters
    } else {
        TraceLevel::Off
    };
    if trace::level() < min_level {
        trace::set_level(min_level);
    }
    let t0 = std::time::Instant::now();
    let ((), run_trace) = trace::capture_run(body);
    let elapsed = t0.elapsed();
    if let Some(path) = &cfg.trace_out {
        let doc = run_trace.to_chrome_json();
        match std::fs::write(path, &doc) {
            Ok(()) => println!("[{name}] trace: {} events → {path}", run_trace.events.len()),
            Err(e) => {
                eprintln!("[{name}] cannot write trace to {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if cfg.json {
        println!(
            "{{\"experiment\":{},\"elapsed_ms\":{},\"events\":{},\"registry\":{}}}",
            rtx_obs::json::quote(name),
            elapsed.as_millis(),
            run_trace.events.len(),
            run_trace.counters.to_json()
        );
    }
}

//! Shared helpers for the experiment binaries and benches.
//!
//! Each experiment binary regenerates one row/table of `EXPERIMENTS.md`;
//! run them all with `cargo run -p rtx-bench --bin exp_<name> --release`.

use rtx_net::{run, FifoRoundRobin, HorizontalPartition, Network, RunBudget, RunOutcome};
use rtx_relational::{fact, Instance, Schema};
use rtx_transducer::Transducer;

/// A minimal fixed-width table printer (keeps experiment output uniform).
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table; prints the header immediately.
    pub fn new(columns: &[(&str, usize)]) -> Self {
        let widths: Vec<usize> = columns.iter().map(|&(_, w)| w).collect();
        let total: usize = widths.iter().sum::<usize>() + widths.len();
        println!("{}", "-".repeat(total));
        let mut line = String::new();
        for ((name, _), w) in columns.iter().zip(&widths) {
            line.push_str(&format!("{name:<w$} "));
        }
        println!("{line}");
        println!("{}", "-".repeat(total));
        Table { widths }
    }

    /// Print one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{cell:<w$} "));
        }
        println!("{line}");
    }

    /// Print the footer rule.
    pub fn done(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + self.widths.len();
        println!("{}", "-".repeat(total));
    }
}

/// Build the unary-set input `S = {0, …, n−1}`.
pub fn set_input(n: usize) -> Instance {
    Instance::from_facts(
        Schema::new().with("S", 1),
        (0..n as i64).map(|i| fact!("S", i)).collect::<Vec<_>>(),
    )
    .expect("valid facts")
}

/// Build a chain edge instance `E = {(0,1), …, (n−1,n)}` under the given
/// relation name.
pub fn chain_input(rel: &str, n: usize) -> Instance {
    Instance::from_facts(
        Schema::new().with(rel, 2),
        (0..n as i64)
            .map(|i| {
                rtx_relational::Fact::new(
                    rel,
                    rtx_relational::Tuple::new(vec![
                        rtx_relational::Value::int(i),
                        rtx_relational::Value::int(i + 1),
                    ]),
                )
            })
            .collect::<Vec<_>>(),
    )
    .expect("valid facts")
}

/// Run to quiescence with a generous budget and a FIFO scheduler.
pub fn run_fifo(net: &Network, t: &Transducer, input: &Instance) -> RunOutcome {
    let p = HorizontalPartition::round_robin(net, input);
    run(
        net,
        t,
        &p,
        &mut FifoRoundRobin::new(),
        &RunBudget::steps(5_000_000),
    )
    .expect("run failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_inputs() {
        assert_eq!(set_input(4).fact_count(), 4);
        assert_eq!(chain_input("E", 3).fact_count(), 3);
    }
}
